//! # satiot — facade crate
//!
//! Re-exports every subsystem of the satellite-IoT measurement toolkit
//! under one roof, so examples and downstream users can depend on a single
//! crate:
//!
//! ```
//! use satiot::orbit::tle::Tle;
//! let _ = Tle::parse_lines(
//!     "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87",
//!     "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058",
//! ).unwrap();
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-reproduction index.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cli;

pub use satiot_channel as channel;
pub use satiot_core as core;
pub use satiot_econ as econ;
pub use satiot_energy as energy;
pub use satiot_measure as measure;
pub use satiot_obs as obs;
pub use satiot_orbit as orbit;
pub use satiot_phy as phy;
pub use satiot_scenarios as scenarios;
pub use satiot_sim as sim;
pub use satiot_terrestrial as terrestrial;
