//! The `satiot` command-line tool: pass planning, link budgets, campaign
//! summaries, and catalog export from one binary.
//!
//! ```text
//! satiot passes HK 2
//! satiot budget tianqi quarter rainy
//! satiot campaign active 7
//! satiot catalog > constellations.tle
//! ```

use satiot::cli::{parse, CampaignKind, Command, USAGE};
use satiot::core::prelude::*;
use satiot::measure::latency::LatencyBreakdown;
use satiot::measure::stats::Summary;
use satiot::orbit::pass::PassPredictor;
use satiot::phy::airtime::airtime_s;
use satiot::phy::params::LoRaConfig;
use satiot::phy::per::packet_success_probability;
use satiot::scenarios::constellations::{constellation_by_name, export_full_catalog};
use satiot::scenarios::sites::{campaign_epoch, measurement_sites};
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(cmd) => run(cmd),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

fn run(cmd: Command) {
    match cmd {
        Command::Help => unreachable!("handled in main"),
        Command::Catalog => print!("{}", export_full_catalog(campaign_epoch())),
        Command::Passes { site, days } => passes(&site, days),
        Command::Budget {
            constellation,
            antenna,
            weather,
        } => budget(&constellation, antenna, weather),
        Command::Campaign { kind, days } => campaign(kind, days),
        Command::Track {
            constellation,
            sat_id,
            hours,
        } => track(&constellation, sat_id, hours),
        Command::Coverage { site, hours } => coverage(&site, hours),
    }
}

fn coverage(site_code: &str, hours: u32) {
    let Some(site) = measurement_sites()
        .into_iter()
        .find(|s| s.code == site_code)
    else {
        eprintln!("unknown site {site_code:?} (expected HK/SYD/LDN/PGH/SH/GZ/NC/YC)");
        std::process::exit(2);
    };
    let observer = satiot::orbit::topo::Observer::new(site.geodetic());
    let start = campaign_epoch();
    let specs = satiot::scenarios::constellations::all_constellations();
    let sats: Vec<_> = specs
        .iter()
        .flat_map(|spec| {
            spec.catalog(start)
                .into_iter()
                .map(|s| (s.constellation, s.sgp4().unwrap()))
        })
        .collect();
    println!(
        "Satellites above the horizon at {} ({site_code}), hourly for {hours} h:
",
        site.name
    );
    println!("hour(UTC)  Tianqi  FOSSA  PICO  CSTP  total  bar");
    for h in 0..hours {
        let when = start.plus_seconds(h as f64 * 3_600.0);
        let mut counts = std::collections::BTreeMap::new();
        for (name, sgp4) in &sats {
            if let Ok(state) = sgp4.propagate_at(when) {
                if observer.look_at(&state, when).elevation_rad > 0.0 {
                    *counts.entry(*name).or_insert(0u32) += 1;
                }
            }
        }
        let g = |n: &str| counts.get(n).copied().unwrap_or(0);
        let total: u32 = counts.values().sum();
        println!(
            "{:>6}:00  {:>6}  {:>5}  {:>4}  {:>4}  {:>5}  {}",
            h % 24,
            g("Tianqi"),
            g("FOSSA"),
            g("PICO"),
            g("CSTP"),
            total,
            "#".repeat(total as usize),
        );
    }
    println!(
        "
This is the *theoretical* picture; the paper shows the effective one is"
    );
    println!("an order of magnitude sparser (run `satiot campaign passive`).");
}

fn track(constellation: &str, sat_id: u32, hours: f64) {
    use satiot::orbit::frames::ground_track;
    let spec = constellation_by_name(constellation).expect("validated by the parser");
    let Some(sat) = spec
        .catalog(campaign_epoch())
        .into_iter()
        .find(|s| s.sat_id == sat_id)
    else {
        eprintln!(
            "{} has no satellite {} (0..{})",
            spec.name,
            sat_id,
            spec.sat_count()
        );
        std::process::exit(2);
    };
    let start = campaign_epoch();
    let points = ground_track(
        &sat.sgp4().unwrap(),
        start,
        start.plus_seconds(hours * 3_600.0),
        60.0,
    );
    const COLS: usize = 90;
    const ROWS: usize = 30;
    let mut grid = vec![vec!['.'; COLS]; ROWS];
    for cell in grid[ROWS / 2].iter_mut() {
        *cell = '-';
    }
    for (_, g) in &points {
        let lon = g.lon_rad.to_degrees();
        let lat = g.lat_rad.to_degrees();
        let col = (((lon + 180.0) / 360.0) * (COLS as f64 - 1.0)).round() as usize;
        let row = (((90.0 - lat) / 180.0) * (ROWS as f64 - 1.0)).round() as usize;
        grid[row.min(ROWS - 1)][col.min(COLS - 1)] = '*';
    }
    println!(
        "Ground track of {}-{sat_id} over {hours} h ({} samples):
",
        spec.name,
        points.len()
    );
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }
}

fn passes(site_code: &str, days: f64) {
    let Some(site) = measurement_sites()
        .into_iter()
        .find(|s| s.code == site_code)
    else {
        eprintln!("unknown site {site_code:?} (expected HK/SYD/LDN/PGH/SH/GZ/NC/YC)");
        std::process::exit(2);
    };
    let start = campaign_epoch();
    println!(
        "Passes over {} ({site_code}) for {days} day(s):\n",
        site.name
    );
    println!("satellite   AOS(UTC)      dur(min)  max-el(deg)  freq(MHz)");
    let mut count = 0;
    for spec in satiot::scenarios::constellations::all_constellations() {
        for sat in spec.catalog(start) {
            let predictor = PassPredictor::new(sat.sgp4().unwrap(), site.geodetic(), 0.0);
            for pass in predictor.passes(start, start + days) {
                let (_, mo, d, h, m, _) = pass.aos.to_calendar();
                println!(
                    "{:11} {mo:02}-{d:02} {h:02}:{m:02}   {:>7.1}  {:>11.1}  {:>9.3}",
                    format!("{}-{:02}", sat.constellation, sat.sat_id),
                    pass.duration_min(),
                    pass.max_elevation_rad.to_degrees(),
                    sat.frequency_mhz,
                );
                count += 1;
            }
        }
    }
    println!("\n{count} passes total.");
}

fn budget(
    constellation: &str,
    antenna: satiot::channel::antenna::AntennaPattern,
    weather: satiot::channel::weather::Weather,
) {
    let spec = constellation_by_name(constellation).expect("validated by the parser");
    let shell = &spec.shells[0];
    let alt = 0.5 * (shell.alt_lo_km + shell.alt_hi_km);
    let mut link =
        satiot::channel::budget::LinkBudget::dts_downlink(spec.dts_frequency_mhz, antenna);
    link.tx_power_dbm = spec.tx_power_dbm;
    let cfg = LoRaConfig::dts_beacon();
    println!(
        "{} beacon budget @ {:.3} MHz, {:.0} km shell, {} antenna, {} sky",
        spec.name,
        spec.dts_frequency_mhz,
        alt,
        antenna.label(),
        weather.label()
    );
    println!(
        "beacon airtime {:.0} ms, noise floor {:.1} dBm\n",
        airtime_s(&cfg, 30) * 1e3,
        link.noise_floor_dbm()
    );
    println!("el(deg)  range(km)  RSSI(dBm)  SNR(dB)  P(decode)");
    let re = 6_378.0_f64;
    for el_deg in [2.0_f64, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0] {
        let el = el_deg.to_radians();
        let range = -re * el.sin() + ((re * el.sin()).powi(2) + alt * alt + 2.0 * re * alt).sqrt();
        let rssi = link.mean_rssi_dbm(range, el, weather);
        let snr = rssi - link.noise_floor_dbm();
        println!(
            "{el_deg:>6.1}  {range:>9.0}  {rssi:>9.1}  {snr:>7.1}  {:>8.3}",
            packet_success_probability(&cfg, 30, snr)
        );
    }
}

fn campaign(kind: CampaignKind, days: f64) {
    // `SATIOT_*` knobs (threads, batch kernels, ephemeris backend,
    // metrics) still steer the CLI, resolved in one place.
    let opts = RunOptions::from_env().apply();
    match kind {
        CampaignKind::Passive => {
            // The CLI goes through the scenario front door: either the
            // `SATIOT_SCENARIO` file or the compiled-in paper campaign,
            // with the CLI's day count filling an unset `max_days`.
            let scenario = match opts.scenario {
                Some(path) => ScenarioSpec::from_file(path).and_then(|s| s.build()),
                None => ScenarioSpec::paper_passive().build(),
            };
            let scenario = match scenario {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("satiot: scenario rejected: {e}");
                    std::process::exit(2);
                }
            };
            let mut cfg = PassiveConfig::from_scenario(&scenario);
            if scenario.max_days.is_none() {
                cfg.max_days = days;
            }
            let results = match PassiveCampaign::new(cfg).run(&opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("satiot: passive campaign rejected: {e}");
                    std::process::exit(2);
                }
            };
            println!("Passive campaign, {days} day(s) per site:");
            if !results.faults.is_clean() {
                println!("  degraded inputs survived ({})", results.faults);
            }
            println!("  traces: {}", results.traces.len());
            for c in results.traces.constellations() {
                let rssi = Summary::of(&results.traces.rssi_of(&c));
                println!(
                    "  {c:7} {:>7} traces, RSSI mean {:.1} dBm",
                    rssi.n, rssi.mean
                );
            }
            let stats = results.contact_stats("Tianqi", &[]);
            println!(
                "  Tianqi daily-duration shrink {:.1}%, interval expansion {:.1}x",
                stats.duration_shrink * 100.0,
                stats.interval_expansion()
            );
        }
        CampaignKind::Active => {
            let results = match ActiveCampaign::new(ActiveConfig::quick(days)).run(&opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("satiot: active campaign rejected: {e}");
                    std::process::exit(2);
                }
            };
            let b = LatencyBreakdown::compute(&results.timelines);
            println!("Active campaign (Yunnan farm), {days} day(s):");
            if !results.faults.is_clean() {
                println!("  degraded inputs survived ({})", results.faults);
            }
            println!(
                "  sent {} / delivered {} ({:.1}%)",
                results.sent.len(),
                results.delivered_seqs.len(),
                results.reliability() * 100.0
            );
            println!(
                "  latency wait/DtS/delivery/e2e = {:.1}/{:.1}/{:.1}/{:.1} min",
                b.wait_min.mean, b.dts_min.mean, b.delivery_min.mean, b.end_to_end_min.mean
            );
            println!(
                "  mean attempts {:.2}, server duplicate ratio {:.1}%",
                results.mean_attempts(),
                results.server.duplicate_ratio() * 100.0
            );
        }
        CampaignKind::Terrestrial => {
            let results = match TerrestrialCampaign::new(TerrestrialConfig {
                days,
                ..Default::default()
            })
            .run()
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("satiot: terrestrial campaign rejected: {e}");
                    std::process::exit(2);
                }
            };
            let b = LatencyBreakdown::compute(&results.timelines);
            println!("Terrestrial baseline, {days} day(s):");
            if !results.faults.is_clean() {
                println!("  degraded inputs survived ({})", results.faults);
            }
            println!(
                "  sent {} / delivered {} ({:.2}%)",
                results.sent.len(),
                results.delivered_seqs.len(),
                results.reliability() * 100.0
            );
            println!("  e2e latency {:.2} min mean", b.end_to_end_min.mean);
        }
    }
}
