//! Argument parsing for the `satiot` command-line tool.
//!
//! Hand-rolled (the workspace's dependency policy admits no CLI crate)
//! and kept in the library so the grammar is unit-testable; the binary
//! in `src/bin/satiot.rs` only dispatches.

use satiot_channel::antenna::AntennaPattern;
use satiot_channel::weather::Weather;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `passes <SITE> [days]` — pass timetable for a Table 1 site.
    Passes {
        /// Site code (HK, SYD, …).
        site: String,
        /// Days to plan.
        days: f64,
    },
    /// `budget <constellation> [antenna] [weather]` — link-budget table.
    Budget {
        /// Constellation label.
        constellation: String,
        /// Ground antenna.
        antenna: AntennaPattern,
        /// Sky condition.
        weather: Weather,
    },
    /// `campaign <passive|active|terrestrial> [days]` — run a campaign
    /// and print its summary.
    Campaign {
        /// Which campaign.
        kind: CampaignKind,
        /// Days to simulate.
        days: f64,
    },
    /// `catalog` — print the synthetic 39-satellite 3LE catalog.
    Catalog,
    /// `coverage <SITE> [hours]` — hourly satellites-in-view counts.
    Coverage {
        /// Site code.
        site: String,
        /// Hours to tabulate.
        hours: u32,
    },
    /// `track <CONSTELLATION> [SAT_ID] [hours]` — ASCII ground track.
    Track {
        /// Constellation label.
        constellation: String,
        /// Satellite index within the constellation.
        sat_id: u32,
        /// Hours of track.
        hours: f64,
    },
    /// `help` or no arguments.
    Help,
}

/// Campaign selector for `satiot campaign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// The 27-station passive campaign.
    Passive,
    /// The Yunnan-farm active campaign.
    Active,
    /// The LoRaWAN baseline.
    Terrestrial,
}

/// The usage text.
pub const USAGE: &str = "\
satiot — satellite-IoT measurement & simulation toolkit

USAGE:
    satiot passes <SITE> [DAYS]                     pass timetable (default 1 day)
    satiot budget <CONSTELLATION> [ANTENNA] [SKY]   DtS link budget vs elevation
    satiot campaign <passive|active|terrestrial> [DAYS]
    satiot catalog                                  print the 39-satellite 3LE catalog
    satiot track <CONSTELLATION> [SAT_ID] [HOURS]   ASCII ground track
    satiot coverage <SITE> [HOURS]                  satellites-in-view timeline
    satiot help

ARGS:
    SITE           HK SYD LDN PGH SH GZ NC YC
    CONSTELLATION  tianqi fossa pico cstp
    ANTENNA        quarter | five8          (default five8)
    SKY            sunny | cloudy | rainy   (default sunny)
";

/// Parse `args` (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("passes") => {
            let site = it
                .next()
                .ok_or_else(|| "passes: missing SITE".to_string())?
                .to_uppercase();
            let days = parse_days(it.next(), 1.0)?;
            Ok(Command::Passes { site, days })
        }
        Some("budget") => {
            let constellation = match it.next() {
                Some(c) => normalize_constellation(c)?,
                None => return Err("budget: missing CONSTELLATION".into()),
            };
            let antenna = match it.next() {
                None | Some("five8") => AntennaPattern::FiveEighthsWaveMonopole,
                Some("quarter") => AntennaPattern::QuarterWaveMonopole,
                Some(other) => return Err(format!("unknown antenna {other:?}")),
            };
            let weather = match it.next() {
                None | Some("sunny") => Weather::Sunny,
                Some("cloudy") => Weather::Cloudy,
                Some("rainy") => Weather::Rainy,
                Some(other) => return Err(format!("unknown sky {other:?}")),
            };
            Ok(Command::Budget {
                constellation,
                antenna,
                weather,
            })
        }
        Some("campaign") => {
            let kind = match it.next() {
                Some("passive") => CampaignKind::Passive,
                Some("active") => CampaignKind::Active,
                Some("terrestrial") => CampaignKind::Terrestrial,
                Some(other) => return Err(format!("unknown campaign {other:?}")),
                None => return Err("campaign: missing kind".into()),
            };
            let days = parse_days(it.next(), 7.0)?;
            Ok(Command::Campaign { kind, days })
        }
        Some("catalog") => Ok(Command::Catalog),
        Some("coverage") => {
            let site = it
                .next()
                .ok_or_else(|| "coverage: missing SITE".to_string())?
                .to_uppercase();
            let hours = match it.next() {
                None => 24,
                Some(s) => {
                    let h: u32 = s.parse().map_err(|_| format!("bad HOURS {s:?}"))?;
                    if !(1..=168).contains(&h) {
                        return Err(format!("HOURS must be 1..=168, got {h}"));
                    }
                    h
                }
            };
            Ok(Command::Coverage { site, hours })
        }
        Some("track") => {
            let constellation = match it.next() {
                Some(c) => normalize_constellation(c)?,
                None => return Err("track: missing CONSTELLATION".into()),
            };
            let sat_id = match it.next() {
                None => 0,
                Some(s) => s.parse().map_err(|_| format!("bad SAT_ID {s:?}"))?,
            };
            let hours = match it.next() {
                None => 3.0,
                Some(s) => {
                    let h: f64 = s.parse().map_err(|_| format!("bad HOURS {s:?}"))?;
                    if !(h > 0.0 && h <= 48.0) {
                        return Err(format!("HOURS must be in (0, 48], got {h}"));
                    }
                    h
                }
            };
            Ok(Command::Track {
                constellation,
                sat_id,
                hours,
            })
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn parse_days(arg: Option<&str>, default: f64) -> Result<f64, String> {
    match arg {
        None => Ok(default),
        Some(s) => {
            let d: f64 = s.parse().map_err(|_| format!("bad DAYS value {s:?}"))?;
            if !(d > 0.0 && d <= 365.0) {
                return Err(format!("DAYS must be in (0, 365], got {d}"));
            }
            Ok(d)
        }
    }
}

fn normalize_constellation(c: &str) -> Result<String, String> {
    match c.to_lowercase().as_str() {
        "tianqi" => Ok("Tianqi".into()),
        "fossa" => Ok("FOSSA".into()),
        "pico" => Ok("PICO".into()),
        "cstp" => Ok("CSTP".into()),
        other => Err(format!("unknown constellation {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn passes_defaults_and_overrides() {
        assert_eq!(
            parse(&args("passes hk")).unwrap(),
            Command::Passes {
                site: "HK".into(),
                days: 1.0
            }
        );
        assert_eq!(
            parse(&args("passes SYD 3.5")).unwrap(),
            Command::Passes {
                site: "SYD".into(),
                days: 3.5
            }
        );
        assert!(parse(&args("passes")).is_err());
        assert!(parse(&args("passes HK nonsense")).is_err());
        assert!(parse(&args("passes HK 0")).is_err());
        assert!(parse(&args("passes HK 9999")).is_err());
    }

    #[test]
    fn budget_grammar() {
        assert_eq!(
            parse(&args("budget tianqi")).unwrap(),
            Command::Budget {
                constellation: "Tianqi".into(),
                antenna: AntennaPattern::FiveEighthsWaveMonopole,
                weather: Weather::Sunny,
            }
        );
        assert_eq!(
            parse(&args("budget FOSSA quarter rainy")).unwrap(),
            Command::Budget {
                constellation: "FOSSA".into(),
                antenna: AntennaPattern::QuarterWaveMonopole,
                weather: Weather::Rainy,
            }
        );
        assert!(parse(&args("budget starlink")).is_err());
        assert!(parse(&args("budget tianqi yagi")).is_err());
        assert!(parse(&args("budget tianqi five8 hail")).is_err());
    }

    #[test]
    fn campaign_grammar() {
        assert_eq!(
            parse(&args("campaign active")).unwrap(),
            Command::Campaign {
                kind: CampaignKind::Active,
                days: 7.0
            }
        );
        assert_eq!(
            parse(&args("campaign terrestrial 2")).unwrap(),
            Command::Campaign {
                kind: CampaignKind::Terrestrial,
                days: 2.0
            }
        );
        assert!(parse(&args("campaign")).is_err());
        assert!(parse(&args("campaign orbital")).is_err());
    }

    #[test]
    fn coverage_grammar() {
        assert_eq!(
            parse(&args("coverage hk")).unwrap(),
            Command::Coverage {
                site: "HK".into(),
                hours: 24
            }
        );
        assert_eq!(
            parse(&args("coverage YC 48")).unwrap(),
            Command::Coverage {
                site: "YC".into(),
                hours: 48
            }
        );
        assert!(parse(&args("coverage")).is_err());
        assert!(parse(&args("coverage HK 0")).is_err());
        assert!(parse(&args("coverage HK 500")).is_err());
    }

    #[test]
    fn track_grammar() {
        assert_eq!(
            parse(&args("track pico")).unwrap(),
            Command::Track {
                constellation: "PICO".into(),
                sat_id: 0,
                hours: 3.0
            }
        );
        assert_eq!(
            parse(&args("track tianqi 7 12")).unwrap(),
            Command::Track {
                constellation: "Tianqi".into(),
                sat_id: 7,
                hours: 12.0
            }
        );
        assert!(parse(&args("track")).is_err());
        assert!(parse(&args("track tianqi x")).is_err());
        assert!(parse(&args("track tianqi 0 99")).is_err());
    }

    #[test]
    fn unknown_commands_show_usage() {
        let err = parse(&args("frobnicate")).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
