//! A dependency-free, std-only stand-in for the subset of the
//! [`bytes`](https://docs.rs/bytes) API this workspace uses. The build
//! environment has no crates.io access, so the real crate cannot be
//! fetched.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable view over shared
//! immutable storage (`Arc<[u8]>` plus a range); [`BytesMut`] is a
//! growable builder that freezes into [`Bytes`]. The [`Buf`]/[`BufMut`]
//! traits carry the big-endian cursor accessors the frame codecs use.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable shared view of an immutable byte sequence.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A view over a static slice (copied; the shim has no vtable trick).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte builder that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte sequence (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume and return one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Consume and return a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Consume and return a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Consume and return a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Consume and return a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Consume and return a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Consume and return a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write-side cursor (big-endian accessors).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_i16(-2);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_slice(&[9, 9]);
        let mut r = b.freeze();
        assert_eq!(r.len(), 19);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_i16(), -2);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(&r[..], &[9, 9]);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&b.slice(2..=4)[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let front = rest.split_to(2);
        assert_eq!(&front[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_ignores_storage_offsets() {
        let a = Bytes::from(vec![7, 8]);
        let b = Bytes::from(vec![0, 7, 8]).slice(1..);
        assert_eq!(a, b);
    }
}
