//! A dependency-free, std-only stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace's benches
//! use. The build environment has no crates.io access, so the real crate
//! cannot be fetched; this shim keeps `cargo bench` runnable offline with
//! wall-clock timing (median of several batches) instead of criterion's
//! statistical machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Number of timed batches per benchmark.
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(500),
            samples: 11,
        }
    }
}

impl Criterion {
    /// Run `f` as the benchmark named `name` and print its timing.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.measurement, self.samples, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (flat in this shim; the group name is a
/// prefix on each benchmark's printed id).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Reduce the number of timed batches (heavy campaign benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(2);
        self
    }

    /// Run `f` as `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_bench(&id, self.criterion.measurement, self.criterion.samples, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, measurement: Duration, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the per-batch iteration count on a single warm-up run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch_budget = measurement / samples.max(1) as u32;
    let iters = (batch_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{name:<40} {:>14} /iter (median of {samples} x {iters} iters)",
        fmt_ns(median)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
