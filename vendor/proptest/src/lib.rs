//! A dependency-free, std-only re-implementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored; this shim keeps the property tests (and the
//! committed `.proptest-regressions` seed files) runnable offline:
//!
//! * [`proptest!`] expands each `fn name(var in strategy, …) { body }`
//!   into a deterministic `#[test]` that runs `PROPTEST_CASES` random
//!   cases (default 64) seeded from the test name, printing the failing
//!   inputs before propagating any panic.
//! * Committed `<file>.proptest-regressions` entries are replayed *first*,
//!   exactly like upstream proptest. Upstream persists an opaque RNG seed
//!   plus a `# shrinks to var = value, …` comment; the shim replays the
//!   shrunk values from the comment for every test whose argument names
//!   match the recorded ones.
//! * Strategies cover ranges over the primitive numeric types, `Just`,
//!   `any::<T>()`, tuples, `prop_map`, weighted/unweighted [`prop_oneof!`],
//!   `proptest::collection::vec`, and simple `"[a-z]{1,12}"`-style string
//!   patterns.
//!
//! Shrinking is intentionally not implemented: failures print the exact
//! generated inputs, which the deterministic per-case seeding makes
//! reproducible.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod runner;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig};
}

/// Runner configuration (subset of the upstream struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A small, fast, deterministic RNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The RNG for one case of one named test: deterministic across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h ^ ((case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Clone + Debug + 'static {
    /// Draw an arbitrary value.
    fn arb_sample(rng: &mut TestRng) -> Self;

    /// Best-effort reconstruction from a recorded regression value.
    fn arb_from_f64(_v: f64) -> Option<Self> {
        None
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arb_sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn arb_from_f64(v: f64) -> Option<Self> {
                Some(v as $t)
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arb_sample(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn arb_from_f64(v: f64) -> Option<Self> {
        Some(v != 0.0)
    }
}

impl Arbitrary for f64 {
    fn arb_sample(rng: &mut TestRng) -> Self {
        // Spread mass across magnitudes without producing NaN/inf.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * 10f64.powi(exp)
    }
    fn arb_from_f64(v: f64) -> Option<Self> {
        Some(v)
    }
}

/// The strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arb_sample(rng)
    }
    fn from_f64(&self, v: f64) -> Option<T> {
        T::arb_from_f64(v)
    }
}

/// `any::<T>()` — a strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- Range strategies -------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
    fn from_f64(&self, v: f64) -> Option<f64> {
        Some(v)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
    fn from_f64(&self, v: f64) -> Option<f64> {
        Some(v)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                if span == 0 {
                    self.start
                } else {
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            fn from_f64(&self, v: f64) -> Option<$t> {
                Some(v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
            fn from_f64(&self, v: f64) -> Option<$t> {
                Some(v as $t)
            }
        }
    )+};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- String-pattern strategy ------------------------------------------

/// A parsed atom of the tiny pattern language: a set of candidate chars
/// plus a repetition range.
#[derive(Debug, Clone)]
struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            for d in it.by_ref() {
                match d {
                    ']' => break,
                    '-' => {
                        // Range: prev already pushed; the next char closes it.
                        prev = prev.or(Some('-'));
                    }
                    d => {
                        if let Some(p) = prev.take() {
                            if p != '-' && set.last() == Some(&p) {
                                // `p-d` range (p was pushed on its own turn).
                                for x in (p as u32 + 1)..=(d as u32) {
                                    if let Some(ch) = char::from_u32(x) {
                                        set.push(ch);
                                    }
                                }
                                continue;
                            }
                        }
                        set.push(d);
                        prev = Some(d);
                    }
                }
            }
            set
        } else {
            vec![c]
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                if atom.chars.is_empty() {
                    continue;
                }
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- Assertion macros --------------------------------------------------

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!("property failed: {:?} != {:?}", __a, __b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!($($fmt)+);
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!("property failed: {:?} == {:?}", __a, __b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!($($fmt)+);
        }
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// The main macro: expands property functions into deterministic tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($var:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __names: &[&'static str] = &[$(stringify!($var)),+];

            // 1. Replay committed regression seeds whose recorded variable
            //    names match this property's arguments.
            '__replay: for __entry in $crate::runner::regression_values(file!(), __names) {
                let mut __idx = 0usize;
                $(
                    let $var = {
                        let __v = __entry[__idx];
                        __idx += 1;
                        match $crate::Strategy::from_f64(&($strat), __v) {
                            Some(v) => v,
                            None => continue '__replay,
                        }
                    };
                )+
                let _ = &__idx;
                $crate::runner::run_case(
                    concat!(module_path!(), "::", stringify!($name), " [regression]"),
                    &format!(concat!($(stringify!($var), " = {:?}, "),+), $(&$var),+),
                    move || $body,
                );
            }

            // 2. Random cases, deterministically seeded by test name.
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), __case);
                $(
                    let $var = $crate::Strategy::sample(&($strat), &mut __rng);
                )+
                let _ = &__rng;
                $crate::runner::run_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    &format!(concat!($(stringify!($var), " = {:?}, "),+), $(&$var),+),
                    move || $body,
                );
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..100 {
            let s = crate::Strategy::sample(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10.0_f64..20.0, n in 3usize..7, b in any::<bool>()) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_and_oneof_work(
            v in collection::vec(any::<u8>(), 0..=5),
            w in prop_oneof![Just(1u32), Just(2u32)],
            s in prop_oneof![2 => Just("a"), 1 => Just("b")],
        ) {
            prop_assert!(v.len() <= 5);
            prop_assert!(w == 1 || w == 2);
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn map_and_tuple_work(p in (0u8..4, 0.0_f64..1.0).prop_map(|(a, f)| (a as f64) + f)) {
            prop_assert!((0.0..5.0).contains(&p));
        }
    }
}
