//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use std::fmt::Debug;

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Best-effort reconstruction of a value from the numeric literal a
    /// `.proptest-regressions` "shrinks to" comment recorded for it.
    /// `None` means this strategy cannot replay recorded values.
    #[allow(clippy::wrong_self_convention)]
    fn from_f64(&self, _v: f64) -> Option<Self::Value> {
        None
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T: Clone + Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
    fn from_f64(&self, v: f64) -> Option<T> {
        (**self).from_f64(v)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
    fn from_f64(&self, v: f64) -> Option<Self::Value> {
        (**self).from_f64(v)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
    fn from_f64(&self, v: f64) -> Option<O> {
        self.inner.from_f64(v).map(&self.f)
    }
}

/// Erase a strategy into a boxed trait object. Unlike an
/// `as Box<dyn Strategy<Value = _>>` cast (whose `_` is not inferred from
/// the cast source), this pins `Value = S::Value`, so [`crate::prop_oneof!`]
/// arms unify without annotations.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Weighted union of strategies — what [`crate::prop_oneof!`] builds.
pub struct Union<T: Clone + Debug> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T: Clone + Debug> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total_weight }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        self.arms
            .last()
            .expect("prop_oneof! needs at least one arm")
            .1
            .sample(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}
