//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let n = self.size.min + rng.below(span + 1) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)` — vectors of `element`
/// draws with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
