//! Case execution and `.proptest-regressions` replay.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Run one generated case; on panic, print the generated inputs (the
/// shim's substitute for shrinking — cases are deterministic, so the
/// printed values reproduce the failure directly) and re-raise.
pub fn run_case<F: FnOnce()>(test_name: &str, described_inputs: &str, body: F) {
    if let Err(e) = catch_unwind(AssertUnwindSafe(body)) {
        eprintln!("proptest case failed: {test_name} with {described_inputs}");
        resume_unwind(e);
    }
}

/// Locate `<source_file>.proptest-regressions` for a `file!()` path.
///
/// `file!()` paths are relative to the workspace root, while tests run
/// with the *package* directory as cwd, so probe the path against the
/// manifest directory and each of its ancestors.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let sibling = PathBuf::from(source_file).with_extension("proptest-regressions");
    if sibling.is_file() {
        return Some(sibling);
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let mut dir = PathBuf::from(manifest);
    loop {
        let candidate = dir.join(&sibling);
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parse the recorded shrunk values for every regression entry whose
/// variable names match `names` exactly (same names, same order).
///
/// Upstream proptest writes lines of the form:
///
/// ```text
/// cc <seed-hash> # shrinks to lat = 89.75, lon = 0.0, alt = 4.3
/// ```
///
/// The opaque seed hash only replays on upstream's RNG, but the shrunk
/// values pin the actual counterexample, so the shim replays those.
pub fn regression_values(source_file: &str, names: &[&str]) -> Vec<Vec<f64>> {
    let Some(path) = regression_path(source_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("cc ") {
            continue;
        }
        let Some((_, comment)) = line.split_once('#') else {
            continue;
        };
        let Some(rest) = comment.trim().strip_prefix("shrinks to") else {
            continue;
        };
        let mut values = Vec::with_capacity(names.len());
        let mut ok = true;
        let mut pairs = rest.split(',');
        for name in names {
            let Some(pair) = pairs.next() else {
                ok = false;
                break;
            };
            let Some((key, value)) = pair.split_once('=') else {
                ok = false;
                break;
            };
            if key.trim() != *name {
                ok = false;
                break;
            }
            let Ok(v) = value.trim().parse::<f64>() else {
                ok = false;
                break;
            };
            values.push(v);
        }
        if ok && pairs.next().is_none() {
            out.push(values);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matching_entries_only() {
        let dir = std::env::temp_dir().join("satiot-proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("sample.rs");
        let reg = dir.join("sample.proptest-regressions");
        std::fs::write(&src, "").unwrap();
        std::fs::write(
            &reg,
            "# comment\n\
             cc abc # shrinks to a = 1.5, b = 2\n\
             cc def # shrinks to x = 9\n",
        )
        .unwrap();
        let path = src.to_str().unwrap();
        assert_eq!(regression_values(path, &["a", "b"]), vec![vec![1.5, 2.0]]);
        assert_eq!(regression_values(path, &["x"]), vec![vec![9.0]]);
        assert!(regression_values(path, &["a"]).is_empty());
        assert!(regression_values(path, &["b", "a"]).is_empty());
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(regression_values("no/such/file.rs", &["a"]).is_empty());
    }
}
