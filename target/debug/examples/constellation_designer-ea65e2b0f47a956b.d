/root/repo/target/debug/examples/constellation_designer-ea65e2b0f47a956b.d: examples/constellation_designer.rs

/root/repo/target/debug/examples/constellation_designer-ea65e2b0f47a956b: examples/constellation_designer.rs

examples/constellation_designer.rs:
