/root/repo/target/debug/examples/quickstart-fa186d708bcbca28.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fa186d708bcbca28: examples/quickstart.rs

examples/quickstart.rs:
