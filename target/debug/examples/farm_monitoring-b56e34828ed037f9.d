/root/repo/target/debug/examples/farm_monitoring-b56e34828ed037f9.d: examples/farm_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libfarm_monitoring-b56e34828ed037f9.rmeta: examples/farm_monitoring.rs Cargo.toml

examples/farm_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
