/root/repo/target/debug/examples/link_budget_explorer-d34718797a02aaf8.d: examples/link_budget_explorer.rs Cargo.toml

/root/repo/target/debug/examples/liblink_budget_explorer-d34718797a02aaf8.rmeta: examples/link_budget_explorer.rs Cargo.toml

examples/link_budget_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
