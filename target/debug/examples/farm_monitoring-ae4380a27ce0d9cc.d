/root/repo/target/debug/examples/farm_monitoring-ae4380a27ce0d9cc.d: examples/farm_monitoring.rs

/root/repo/target/debug/examples/farm_monitoring-ae4380a27ce0d9cc: examples/farm_monitoring.rs

examples/farm_monitoring.rs:
