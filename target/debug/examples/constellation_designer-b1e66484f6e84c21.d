/root/repo/target/debug/examples/constellation_designer-b1e66484f6e84c21.d: examples/constellation_designer.rs

/root/repo/target/debug/examples/constellation_designer-b1e66484f6e84c21: examples/constellation_designer.rs

examples/constellation_designer.rs:
