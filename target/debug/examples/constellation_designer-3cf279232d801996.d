/root/repo/target/debug/examples/constellation_designer-3cf279232d801996.d: examples/constellation_designer.rs Cargo.toml

/root/repo/target/debug/examples/libconstellation_designer-3cf279232d801996.rmeta: examples/constellation_designer.rs Cargo.toml

examples/constellation_designer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
