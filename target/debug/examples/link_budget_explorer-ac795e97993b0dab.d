/root/repo/target/debug/examples/link_budget_explorer-ac795e97993b0dab.d: examples/link_budget_explorer.rs

/root/repo/target/debug/examples/link_budget_explorer-ac795e97993b0dab: examples/link_budget_explorer.rs

examples/link_budget_explorer.rs:
