/root/repo/target/debug/examples/trace_archive-230c897141dcce48.d: examples/trace_archive.rs

/root/repo/target/debug/examples/trace_archive-230c897141dcce48: examples/trace_archive.rs

examples/trace_archive.rs:
