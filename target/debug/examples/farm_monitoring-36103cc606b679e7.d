/root/repo/target/debug/examples/farm_monitoring-36103cc606b679e7.d: examples/farm_monitoring.rs

/root/repo/target/debug/examples/farm_monitoring-36103cc606b679e7: examples/farm_monitoring.rs

examples/farm_monitoring.rs:
