/root/repo/target/debug/examples/trace_archive-f76fbdf695551831.d: examples/trace_archive.rs

/root/repo/target/debug/examples/trace_archive-f76fbdf695551831: examples/trace_archive.rs

examples/trace_archive.rs:
