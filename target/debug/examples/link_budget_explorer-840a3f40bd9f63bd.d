/root/repo/target/debug/examples/link_budget_explorer-840a3f40bd9f63bd.d: examples/link_budget_explorer.rs

/root/repo/target/debug/examples/link_budget_explorer-840a3f40bd9f63bd: examples/link_budget_explorer.rs

examples/link_budget_explorer.rs:
