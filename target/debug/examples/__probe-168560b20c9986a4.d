/root/repo/target/debug/examples/__probe-168560b20c9986a4.d: examples/__probe.rs

/root/repo/target/debug/examples/__probe-168560b20c9986a4: examples/__probe.rs

examples/__probe.rs:
