/root/repo/target/debug/examples/quickstart-638a903b48515c42.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-638a903b48515c42: examples/quickstart.rs

examples/quickstart.rs:
