/root/repo/target/debug/examples/trace_archive-c61325182de5893e.d: examples/trace_archive.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_archive-c61325182de5893e.rmeta: examples/trace_archive.rs Cargo.toml

examples/trace_archive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
