/root/repo/target/debug/examples/ground_station_planner-cac81b1682fb385c.d: examples/ground_station_planner.rs

/root/repo/target/debug/examples/ground_station_planner-cac81b1682fb385c: examples/ground_station_planner.rs

examples/ground_station_planner.rs:
