/root/repo/target/debug/examples/ground_station_planner-1ac5c205a7493ca4.d: examples/ground_station_planner.rs

/root/repo/target/debug/examples/ground_station_planner-1ac5c205a7493ca4: examples/ground_station_planner.rs

examples/ground_station_planner.rs:
