/root/repo/target/debug/examples/ground_station_planner-f8d0e65fcb03c209.d: examples/ground_station_planner.rs Cargo.toml

/root/repo/target/debug/examples/libground_station_planner-f8d0e65fcb03c209.rmeta: examples/ground_station_planner.rs Cargo.toml

examples/ground_station_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
