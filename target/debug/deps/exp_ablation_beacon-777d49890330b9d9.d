/root/repo/target/debug/deps/exp_ablation_beacon-777d49890330b9d9.d: crates/bench/src/bin/exp_ablation_beacon.rs

/root/repo/target/debug/deps/exp_ablation_beacon-777d49890330b9d9: crates/bench/src/bin/exp_ablation_beacon.rs

crates/bench/src/bin/exp_ablation_beacon.rs:
