/root/repo/target/debug/deps/report_smoke-33bd72ebbe3465c8.d: tests/report_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libreport_smoke-33bd72ebbe3465c8.rmeta: tests/report_smoke.rs Cargo.toml

tests/report_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
