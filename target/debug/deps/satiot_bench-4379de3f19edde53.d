/root/repo/target/debug/deps/satiot_bench-4379de3f19edde53.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/satiot_bench-4379de3f19edde53: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
