/root/repo/target/debug/deps/exp_extension_mac-93f1e5446fcbbcfd.d: crates/bench/src/bin/exp_extension_mac.rs

/root/repo/target/debug/deps/exp_extension_mac-93f1e5446fcbbcfd: crates/bench/src/bin/exp_extension_mac.rs

crates/bench/src/bin/exp_extension_mac.rs:
