/root/repo/target/debug/deps/satiot_energy-e0a1bb74f2150169.d: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

/root/repo/target/debug/deps/satiot_energy-e0a1bb74f2150169: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

crates/energy/src/lib.rs:
crates/energy/src/accounting.rs:
crates/energy/src/battery.rs:
crates/energy/src/profile.rs:
crates/energy/src/solar.rs:
