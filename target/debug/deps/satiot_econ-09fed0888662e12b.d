/root/repo/target/debug/deps/satiot_econ-09fed0888662e12b.d: crates/econ/src/lib.rs

/root/repo/target/debug/deps/satiot_econ-09fed0888662e12b: crates/econ/src/lib.rs

crates/econ/src/lib.rs:
