/root/repo/target/debug/deps/exp_fig3d-3dd5f0cfce4a615f.d: crates/bench/src/bin/exp_fig3d.rs

/root/repo/target/debug/deps/exp_fig3d-3dd5f0cfce4a615f: crates/bench/src/bin/exp_fig3d.rs

crates/bench/src/bin/exp_fig3d.rs:
