/root/repo/target/debug/deps/determinism-e056815501da179b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-e056815501da179b: tests/determinism.rs

tests/determinism.rs:
