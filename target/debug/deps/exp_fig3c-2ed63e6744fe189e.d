/root/repo/target/debug/deps/exp_fig3c-2ed63e6744fe189e.d: crates/bench/src/bin/exp_fig3c.rs

/root/repo/target/debug/deps/exp_fig3c-2ed63e6744fe189e: crates/bench/src/bin/exp_fig3c.rs

crates/bench/src/bin/exp_fig3c.rs:
