/root/repo/target/debug/deps/exp_ablation_doppler-967be0a1c7ff62fd.d: crates/bench/src/bin/exp_ablation_doppler.rs

/root/repo/target/debug/deps/exp_ablation_doppler-967be0a1c7ff62fd: crates/bench/src/bin/exp_ablation_doppler.rs

crates/bench/src/bin/exp_ablation_doppler.rs:
