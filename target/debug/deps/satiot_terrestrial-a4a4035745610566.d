/root/repo/target/debug/deps/satiot_terrestrial-a4a4035745610566.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_terrestrial-a4a4035745610566.rmeta: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs Cargo.toml

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
