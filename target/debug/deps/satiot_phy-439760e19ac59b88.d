/root/repo/target/debug/deps/satiot_phy-439760e19ac59b88.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/libsatiot_phy-439760e19ac59b88.rlib: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/libsatiot_phy-439760e19ac59b88.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/doppler.rs:
crates/phy/src/frame.rs:
crates/phy/src/params.rs:
crates/phy/src/per.rs:
crates/phy/src/sensitivity.rs:
