/root/repo/target/debug/deps/exp_ablation_downlink-47ea681c102088e5.d: crates/bench/src/bin/exp_ablation_downlink.rs

/root/repo/target/debug/deps/exp_ablation_downlink-47ea681c102088e5: crates/bench/src/bin/exp_ablation_downlink.rs

crates/bench/src/bin/exp_ablation_downlink.rs:
