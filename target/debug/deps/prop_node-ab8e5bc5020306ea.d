/root/repo/target/debug/deps/prop_node-ab8e5bc5020306ea.d: crates/core/tests/prop_node.rs

/root/repo/target/debug/deps/prop_node-ab8e5bc5020306ea: crates/core/tests/prop_node.rs

crates/core/tests/prop_node.rs:
