/root/repo/target/debug/deps/prop_orbit-b113022cae9d568c.d: crates/orbit/tests/prop_orbit.rs

/root/repo/target/debug/deps/prop_orbit-b113022cae9d568c: crates/orbit/tests/prop_orbit.rs

crates/orbit/tests/prop_orbit.rs:
