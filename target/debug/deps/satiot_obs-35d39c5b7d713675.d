/root/repo/target/debug/deps/satiot_obs-35d39c5b7d713675.d: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_obs-35d39c5b7d713675.rmeta: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/invariants.rs:
crates/obs/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
