/root/repo/target/debug/deps/satiot_scenarios-a9b39c886d8904e8.d: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

/root/repo/target/debug/deps/libsatiot_scenarios-a9b39c886d8904e8.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

/root/repo/target/debug/deps/libsatiot_scenarios-a9b39c886d8904e8.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/constellations.rs:
crates/scenarios/src/sites.rs:
