/root/repo/target/debug/deps/paper_headlines-558a5a19c77ff0c7.d: tests/paper_headlines.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_headlines-558a5a19c77ff0c7.rmeta: tests/paper_headlines.rs Cargo.toml

tests/paper_headlines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
