/root/repo/target/debug/deps/satiot_bench-87111cb8368a02a7.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_bench-87111cb8368a02a7.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
