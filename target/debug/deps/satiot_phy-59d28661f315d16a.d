/root/repo/target/debug/deps/satiot_phy-59d28661f315d16a.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_phy-59d28661f315d16a.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs Cargo.toml

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/doppler.rs:
crates/phy/src/frame.rs:
crates/phy/src/params.rs:
crates/phy/src/per.rs:
crates/phy/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
