/root/repo/target/debug/deps/exp_table2-eafc1d20022552e5.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-eafc1d20022552e5: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
