/root/repo/target/debug/deps/exp_fig12a-e4ec238c31e6b44a.d: crates/bench/src/bin/exp_fig12a.rs

/root/repo/target/debug/deps/exp_fig12a-e4ec238c31e6b44a: crates/bench/src/bin/exp_fig12a.rs

crates/bench/src/bin/exp_fig12a.rs:
