/root/repo/target/debug/deps/satiot_core-162a5e75da276ef4.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buffer.rs crates/core/src/calib.rs crates/core/src/geometry.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/passive.rs crates/core/src/satellite.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/station.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_core-162a5e75da276ef4.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buffer.rs crates/core/src/calib.rs crates/core/src/geometry.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/passive.rs crates/core/src/satellite.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/station.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/buffer.rs:
crates/core/src/calib.rs:
crates/core/src/geometry.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
crates/core/src/passive.rs:
crates/core/src/satellite.rs:
crates/core/src/scheduler.rs:
crates/core/src/server.rs:
crates/core/src/station.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
