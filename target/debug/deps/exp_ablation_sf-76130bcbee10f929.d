/root/repo/target/debug/deps/exp_ablation_sf-76130bcbee10f929.d: crates/bench/src/bin/exp_ablation_sf.rs

/root/repo/target/debug/deps/exp_ablation_sf-76130bcbee10f929: crates/bench/src/bin/exp_ablation_sf.rs

crates/bench/src/bin/exp_ablation_sf.rs:
