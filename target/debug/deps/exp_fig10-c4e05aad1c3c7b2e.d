/root/repo/target/debug/deps/exp_fig10-c4e05aad1c3c7b2e.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/debug/deps/exp_fig10-c4e05aad1c3c7b2e: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
