/root/repo/target/debug/deps/exp_extension_gateways-0b4ac4203ed8d87b.d: crates/bench/src/bin/exp_extension_gateways.rs

/root/repo/target/debug/deps/exp_extension_gateways-0b4ac4203ed8d87b: crates/bench/src/bin/exp_extension_gateways.rs

crates/bench/src/bin/exp_extension_gateways.rs:
