/root/repo/target/debug/deps/satiot-e612692b86d48861.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/satiot-e612692b86d48861: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
