/root/repo/target/debug/deps/prop_sim-e90abe1449a25ed5.d: crates/sim/tests/prop_sim.rs

/root/repo/target/debug/deps/prop_sim-e90abe1449a25ed5: crates/sim/tests/prop_sim.rs

crates/sim/tests/prop_sim.rs:
