/root/repo/target/debug/deps/satiot_sim-27fb499bc90f5f41.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libsatiot_sim-27fb499bc90f5f41.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libsatiot_sim-27fb499bc90f5f41.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
