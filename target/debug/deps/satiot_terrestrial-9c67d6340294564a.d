/root/repo/target/debug/deps/satiot_terrestrial-9c67d6340294564a.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/debug/deps/libsatiot_terrestrial-9c67d6340294564a.rlib: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/debug/deps/libsatiot_terrestrial-9c67d6340294564a.rmeta: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
