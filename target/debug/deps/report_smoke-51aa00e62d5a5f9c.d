/root/repo/target/debug/deps/report_smoke-51aa00e62d5a5f9c.d: tests/report_smoke.rs

/root/repo/target/debug/deps/report_smoke-51aa00e62d5a5f9c: tests/report_smoke.rs

tests/report_smoke.rs:
