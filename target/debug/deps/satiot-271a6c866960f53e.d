/root/repo/target/debug/deps/satiot-271a6c866960f53e.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot-271a6c866960f53e.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
