/root/repo/target/debug/deps/satiot_scenarios-8953c87eb1620756.d: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_scenarios-8953c87eb1620756.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs Cargo.toml

crates/scenarios/src/lib.rs:
crates/scenarios/src/constellations.rs:
crates/scenarios/src/sites.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
