/root/repo/target/debug/deps/satiot-93df16904c90db78.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot-93df16904c90db78.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
