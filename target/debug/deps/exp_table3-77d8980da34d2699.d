/root/repo/target/debug/deps/exp_table3-77d8980da34d2699.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-77d8980da34d2699: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
