/root/repo/target/debug/deps/exp_fig4b-0880e37ee77e64df.d: crates/bench/src/bin/exp_fig4b.rs

/root/repo/target/debug/deps/exp_fig4b-0880e37ee77e64df: crates/bench/src/bin/exp_fig4b.rs

crates/bench/src/bin/exp_fig4b.rs:
