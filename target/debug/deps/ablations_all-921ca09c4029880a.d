/root/repo/target/debug/deps/ablations_all-921ca09c4029880a.d: crates/bench/src/bin/ablations_all.rs

/root/repo/target/debug/deps/ablations_all-921ca09c4029880a: crates/bench/src/bin/ablations_all.rs

crates/bench/src/bin/ablations_all.rs:
