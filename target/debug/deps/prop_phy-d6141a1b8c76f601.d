/root/repo/target/debug/deps/prop_phy-d6141a1b8c76f601.d: crates/phy/tests/prop_phy.rs

/root/repo/target/debug/deps/prop_phy-d6141a1b8c76f601: crates/phy/tests/prop_phy.rs

crates/phy/tests/prop_phy.rs:
