/root/repo/target/debug/deps/props-7a6c3423b45e244f.d: tests/props.rs

/root/repo/target/debug/deps/props-7a6c3423b45e244f: tests/props.rs

tests/props.rs:
