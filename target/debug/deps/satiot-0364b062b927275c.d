/root/repo/target/debug/deps/satiot-0364b062b927275c.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsatiot-0364b062b927275c.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsatiot-0364b062b927275c.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
