/root/repo/target/debug/deps/satiot_orbit-e939ac35f5d00ce5.d: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

/root/repo/target/debug/deps/libsatiot_orbit-e939ac35f5d00ce5.rlib: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

/root/repo/target/debug/deps/libsatiot_orbit-e939ac35f5d00ce5.rmeta: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

crates/orbit/src/lib.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/error.rs:
crates/orbit/src/frames.rs:
crates/orbit/src/pass.rs:
crates/orbit/src/sgp4.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/time.rs:
crates/orbit/src/tle.rs:
crates/orbit/src/topo.rs:
crates/orbit/src/vec3.rs:
