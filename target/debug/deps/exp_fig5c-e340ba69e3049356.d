/root/repo/target/debug/deps/exp_fig5c-e340ba69e3049356.d: crates/bench/src/bin/exp_fig5c.rs

/root/repo/target/debug/deps/exp_fig5c-e340ba69e3049356: crates/bench/src/bin/exp_fig5c.rs

crates/bench/src/bin/exp_fig5c.rs:
