/root/repo/target/debug/deps/satiot-7a96afb1810fe20b.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/satiot-7a96afb1810fe20b: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
