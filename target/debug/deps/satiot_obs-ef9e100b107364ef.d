/root/repo/target/debug/deps/satiot_obs-ef9e100b107364ef.d: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libsatiot_obs-ef9e100b107364ef.rlib: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libsatiot_obs-ef9e100b107364ef.rmeta: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/invariants.rs:
crates/obs/src/metrics.rs:
