/root/repo/target/debug/deps/reproduce_all-e33734cd14bfa42d.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-e33734cd14bfa42d: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
