/root/repo/target/debug/deps/report_smoke-1ae7d77538970187.d: tests/report_smoke.rs

/root/repo/target/debug/deps/report_smoke-1ae7d77538970187: tests/report_smoke.rs

tests/report_smoke.rs:
