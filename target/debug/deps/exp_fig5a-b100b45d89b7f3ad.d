/root/repo/target/debug/deps/exp_fig5a-b100b45d89b7f3ad.d: crates/bench/src/bin/exp_fig5a.rs

/root/repo/target/debug/deps/exp_fig5a-b100b45d89b7f3ad: crates/bench/src/bin/exp_fig5a.rs

crates/bench/src/bin/exp_fig5a.rs:
