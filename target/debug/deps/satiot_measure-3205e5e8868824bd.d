/root/repo/target/debug/deps/satiot_measure-3205e5e8868824bd.d: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_measure-3205e5e8868824bd.rmeta: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs Cargo.toml

crates/measure/src/lib.rs:
crates/measure/src/contact.rs:
crates/measure/src/csv.rs:
crates/measure/src/latency.rs:
crates/measure/src/reliability.rs:
crates/measure/src/stats.rs:
crates/measure/src/table.rs:
crates/measure/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
