/root/repo/target/debug/deps/exp_fig12b-3a8cf74e0bf0bfa0.d: crates/bench/src/bin/exp_fig12b.rs

/root/repo/target/debug/deps/exp_fig12b-3a8cf74e0bf0bfa0: crates/bench/src/bin/exp_fig12b.rs

crates/bench/src/bin/exp_fig12b.rs:
