/root/repo/target/debug/deps/satiot_energy-5126f3999d67cda5.d: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_energy-5126f3999d67cda5.rmeta: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/accounting.rs:
crates/energy/src/battery.rs:
crates/energy/src/profile.rs:
crates/energy/src/solar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
