/root/repo/target/debug/deps/satiot_terrestrial-99671635f3761751.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/debug/deps/libsatiot_terrestrial-99671635f3761751.rlib: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/debug/deps/libsatiot_terrestrial-99671635f3761751.rmeta: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
