/root/repo/target/debug/deps/satiot_channel-a5ea44344654643b.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/libsatiot_channel-a5ea44344654643b.rlib: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/libsatiot_channel-a5ea44344654643b.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fading.rs:
crates/channel/src/fspl.rs:
crates/channel/src/noise.rs:
crates/channel/src/weather.rs:
