/root/repo/target/debug/deps/exp_table1-290584a8e09fbd6e.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-290584a8e09fbd6e: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
