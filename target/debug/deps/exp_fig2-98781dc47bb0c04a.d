/root/repo/target/debug/deps/exp_fig2-98781dc47bb0c04a.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-98781dc47bb0c04a: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
