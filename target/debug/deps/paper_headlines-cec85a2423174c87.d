/root/repo/target/debug/deps/paper_headlines-cec85a2423174c87.d: tests/paper_headlines.rs

/root/repo/target/debug/deps/paper_headlines-cec85a2423174c87: tests/paper_headlines.rs

tests/paper_headlines.rs:
