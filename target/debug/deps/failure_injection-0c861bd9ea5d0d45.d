/root/repo/target/debug/deps/failure_injection-0c861bd9ea5d0d45.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-0c861bd9ea5d0d45: tests/failure_injection.rs

tests/failure_injection.rs:
