/root/repo/target/debug/deps/satiot_channel-d9ea11624a3b7b91.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/satiot_channel-d9ea11624a3b7b91: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fading.rs:
crates/channel/src/fspl.rs:
crates/channel/src/noise.rs:
crates/channel/src/weather.rs:
