/root/repo/target/debug/deps/satiot_bench-f03f554073905940.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libsatiot_bench-f03f554073905940.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libsatiot_bench-f03f554073905940.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
