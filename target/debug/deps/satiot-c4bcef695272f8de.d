/root/repo/target/debug/deps/satiot-c4bcef695272f8de.d: src/bin/satiot.rs

/root/repo/target/debug/deps/satiot-c4bcef695272f8de: src/bin/satiot.rs

src/bin/satiot.rs:
