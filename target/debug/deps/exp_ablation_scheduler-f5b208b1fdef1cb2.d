/root/repo/target/debug/deps/exp_ablation_scheduler-f5b208b1fdef1cb2.d: crates/bench/src/bin/exp_ablation_scheduler.rs

/root/repo/target/debug/deps/exp_ablation_scheduler-f5b208b1fdef1cb2: crates/bench/src/bin/exp_ablation_scheduler.rs

crates/bench/src/bin/exp_ablation_scheduler.rs:
