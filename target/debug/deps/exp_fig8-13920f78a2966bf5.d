/root/repo/target/debug/deps/exp_fig8-13920f78a2966bf5.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-13920f78a2966bf5: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
