/root/repo/target/debug/deps/exp_fig9-d1504c380777ecdd.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/debug/deps/exp_fig9-d1504c380777ecdd: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
