/root/repo/target/debug/deps/exp_fig4a-32cec858b64306a9.d: crates/bench/src/bin/exp_fig4a.rs

/root/repo/target/debug/deps/exp_fig4a-32cec858b64306a9: crates/bench/src/bin/exp_fig4a.rs

crates/bench/src/bin/exp_fig4a.rs:
