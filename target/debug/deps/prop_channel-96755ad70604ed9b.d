/root/repo/target/debug/deps/prop_channel-96755ad70604ed9b.d: crates/channel/tests/prop_channel.rs

/root/repo/target/debug/deps/prop_channel-96755ad70604ed9b: crates/channel/tests/prop_channel.rs

crates/channel/tests/prop_channel.rs:
