/root/repo/target/debug/deps/satiot_bench-c52dd56bd847bb68.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libsatiot_bench-c52dd56bd847bb68.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libsatiot_bench-c52dd56bd847bb68.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
