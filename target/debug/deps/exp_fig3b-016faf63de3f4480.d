/root/repo/target/debug/deps/exp_fig3b-016faf63de3f4480.d: crates/bench/src/bin/exp_fig3b.rs

/root/repo/target/debug/deps/exp_fig3b-016faf63de3f4480: crates/bench/src/bin/exp_fig3b.rs

crates/bench/src/bin/exp_fig3b.rs:
