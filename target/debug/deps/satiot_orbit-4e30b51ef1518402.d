/root/repo/target/debug/deps/satiot_orbit-4e30b51ef1518402.d: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_orbit-4e30b51ef1518402.rmeta: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs Cargo.toml

crates/orbit/src/lib.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/error.rs:
crates/orbit/src/frames.rs:
crates/orbit/src/pass.rs:
crates/orbit/src/sgp4.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/time.rs:
crates/orbit/src/tle.rs:
crates/orbit/src/topo.rs:
crates/orbit/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
