/root/repo/target/debug/deps/end_to_end-1b468b00c697e8a7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1b468b00c697e8a7: tests/end_to_end.rs

tests/end_to_end.rs:
