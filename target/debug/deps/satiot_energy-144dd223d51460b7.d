/root/repo/target/debug/deps/satiot_energy-144dd223d51460b7.d: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

/root/repo/target/debug/deps/libsatiot_energy-144dd223d51460b7.rlib: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

/root/repo/target/debug/deps/libsatiot_energy-144dd223d51460b7.rmeta: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

crates/energy/src/lib.rs:
crates/energy/src/accounting.rs:
crates/energy/src/battery.rs:
crates/energy/src/profile.rs:
crates/energy/src/solar.rs:
