/root/repo/target/debug/deps/satiot-7370e91b665f7b98.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsatiot-7370e91b665f7b98.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libsatiot-7370e91b665f7b98.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
