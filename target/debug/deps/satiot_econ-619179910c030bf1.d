/root/repo/target/debug/deps/satiot_econ-619179910c030bf1.d: crates/econ/src/lib.rs

/root/repo/target/debug/deps/libsatiot_econ-619179910c030bf1.rlib: crates/econ/src/lib.rs

/root/repo/target/debug/deps/libsatiot_econ-619179910c030bf1.rmeta: crates/econ/src/lib.rs

crates/econ/src/lib.rs:
