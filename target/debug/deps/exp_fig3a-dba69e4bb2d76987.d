/root/repo/target/debug/deps/exp_fig3a-dba69e4bb2d76987.d: crates/bench/src/bin/exp_fig3a.rs

/root/repo/target/debug/deps/exp_fig3a-dba69e4bb2d76987: crates/bench/src/bin/exp_fig3a.rs

crates/bench/src/bin/exp_fig3a.rs:
