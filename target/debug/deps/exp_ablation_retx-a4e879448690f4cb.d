/root/repo/target/debug/deps/exp_ablation_retx-a4e879448690f4cb.d: crates/bench/src/bin/exp_ablation_retx.rs

/root/repo/target/debug/deps/exp_ablation_retx-a4e879448690f4cb: crates/bench/src/bin/exp_ablation_retx.rs

crates/bench/src/bin/exp_ablation_retx.rs:
