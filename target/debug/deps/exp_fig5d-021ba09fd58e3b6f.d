/root/repo/target/debug/deps/exp_fig5d-021ba09fd58e3b6f.d: crates/bench/src/bin/exp_fig5d.rs

/root/repo/target/debug/deps/exp_fig5d-021ba09fd58e3b6f: crates/bench/src/bin/exp_fig5d.rs

crates/bench/src/bin/exp_fig5d.rs:
