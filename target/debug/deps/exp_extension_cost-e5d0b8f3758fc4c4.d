/root/repo/target/debug/deps/exp_extension_cost-e5d0b8f3758fc4c4.d: crates/bench/src/bin/exp_extension_cost.rs

/root/repo/target/debug/deps/exp_extension_cost-e5d0b8f3758fc4c4: crates/bench/src/bin/exp_extension_cost.rs

crates/bench/src/bin/exp_extension_cost.rs:
