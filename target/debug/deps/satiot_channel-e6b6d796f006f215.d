/root/repo/target/debug/deps/satiot_channel-e6b6d796f006f215.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_channel-e6b6d796f006f215.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fading.rs:
crates/channel/src/fspl.rs:
crates/channel/src/noise.rs:
crates/channel/src/weather.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
