/root/repo/target/debug/deps/satiot_measure-28bf6545a2fdca2f.d: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

/root/repo/target/debug/deps/libsatiot_measure-28bf6545a2fdca2f.rlib: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

/root/repo/target/debug/deps/libsatiot_measure-28bf6545a2fdca2f.rmeta: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

crates/measure/src/lib.rs:
crates/measure/src/contact.rs:
crates/measure/src/csv.rs:
crates/measure/src/latency.rs:
crates/measure/src/reliability.rs:
crates/measure/src/stats.rs:
crates/measure/src/table.rs:
crates/measure/src/trace.rs:
