/root/repo/target/debug/deps/end_to_end-7909b279cbccb96c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7909b279cbccb96c: tests/end_to_end.rs

tests/end_to_end.rs:
