/root/repo/target/debug/deps/satiot_phy-8ba646106aa4923d.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/debug/deps/satiot_phy-8ba646106aa4923d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/doppler.rs:
crates/phy/src/frame.rs:
crates/phy/src/params.rs:
crates/phy/src/per.rs:
crates/phy/src/sensitivity.rs:
