/root/repo/target/debug/deps/failure_injection-62c1e62cde7f4cc2.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-62c1e62cde7f4cc2: tests/failure_injection.rs

tests/failure_injection.rs:
