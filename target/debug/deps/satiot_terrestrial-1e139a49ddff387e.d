/root/repo/target/debug/deps/satiot_terrestrial-1e139a49ddff387e.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/debug/deps/satiot_terrestrial-1e139a49ddff387e: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
