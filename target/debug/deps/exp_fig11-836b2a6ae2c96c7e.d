/root/repo/target/debug/deps/exp_fig11-836b2a6ae2c96c7e.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-836b2a6ae2c96c7e: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
