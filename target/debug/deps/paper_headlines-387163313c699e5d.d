/root/repo/target/debug/deps/paper_headlines-387163313c699e5d.d: tests/paper_headlines.rs

/root/repo/target/debug/deps/paper_headlines-387163313c699e5d: tests/paper_headlines.rs

tests/paper_headlines.rs:
