/root/repo/target/debug/deps/satiot_obs-aa7f0062cb8964c6.d: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/satiot_obs-aa7f0062cb8964c6: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/invariants.rs:
crates/obs/src/metrics.rs:
