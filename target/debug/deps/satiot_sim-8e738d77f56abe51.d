/root/repo/target/debug/deps/satiot_sim-8e738d77f56abe51.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/satiot_sim-8e738d77f56abe51: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
