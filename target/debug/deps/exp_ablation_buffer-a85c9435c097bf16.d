/root/repo/target/debug/deps/exp_ablation_buffer-a85c9435c097bf16.d: crates/bench/src/bin/exp_ablation_buffer.rs

/root/repo/target/debug/deps/exp_ablation_buffer-a85c9435c097bf16: crates/bench/src/bin/exp_ablation_buffer.rs

crates/bench/src/bin/exp_ablation_buffer.rs:
