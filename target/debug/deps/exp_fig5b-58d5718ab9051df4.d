/root/repo/target/debug/deps/exp_fig5b-58d5718ab9051df4.d: crates/bench/src/bin/exp_fig5b.rs

/root/repo/target/debug/deps/exp_fig5b-58d5718ab9051df4: crates/bench/src/bin/exp_fig5b.rs

crates/bench/src/bin/exp_fig5b.rs:
