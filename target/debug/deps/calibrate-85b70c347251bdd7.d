/root/repo/target/debug/deps/calibrate-85b70c347251bdd7.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-85b70c347251bdd7: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
