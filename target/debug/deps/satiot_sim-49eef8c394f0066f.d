/root/repo/target/debug/deps/satiot_sim-49eef8c394f0066f.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_sim-49eef8c394f0066f.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
