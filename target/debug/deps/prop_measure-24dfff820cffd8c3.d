/root/repo/target/debug/deps/prop_measure-24dfff820cffd8c3.d: crates/measure/tests/prop_measure.rs

/root/repo/target/debug/deps/prop_measure-24dfff820cffd8c3: crates/measure/tests/prop_measure.rs

crates/measure/tests/prop_measure.rs:
