/root/repo/target/debug/deps/props-7a052005faf7de4f.d: tests/props.rs

/root/repo/target/debug/deps/props-7a052005faf7de4f: tests/props.rs

tests/props.rs:
