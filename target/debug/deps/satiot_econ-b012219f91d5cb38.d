/root/repo/target/debug/deps/satiot_econ-b012219f91d5cb38.d: crates/econ/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot_econ-b012219f91d5cb38.rmeta: crates/econ/src/lib.rs Cargo.toml

crates/econ/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
