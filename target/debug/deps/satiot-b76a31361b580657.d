/root/repo/target/debug/deps/satiot-b76a31361b580657.d: src/bin/satiot.rs

/root/repo/target/debug/deps/satiot-b76a31361b580657: src/bin/satiot.rs

src/bin/satiot.rs:
