/root/repo/target/debug/deps/determinism-5ccd1654d3ab6592.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5ccd1654d3ab6592: tests/determinism.rs

tests/determinism.rs:
