/root/repo/target/debug/deps/satiot-7d63a8fb2c3fc90e.d: src/bin/satiot.rs

/root/repo/target/debug/deps/satiot-7d63a8fb2c3fc90e: src/bin/satiot.rs

src/bin/satiot.rs:
