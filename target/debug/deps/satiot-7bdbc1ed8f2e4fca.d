/root/repo/target/debug/deps/satiot-7bdbc1ed8f2e4fca.d: src/bin/satiot.rs Cargo.toml

/root/repo/target/debug/deps/libsatiot-7bdbc1ed8f2e4fca.rmeta: src/bin/satiot.rs Cargo.toml

src/bin/satiot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
