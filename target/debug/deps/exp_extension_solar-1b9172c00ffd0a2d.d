/root/repo/target/debug/deps/exp_extension_solar-1b9172c00ffd0a2d.d: crates/bench/src/bin/exp_extension_solar.rs

/root/repo/target/debug/deps/exp_extension_solar-1b9172c00ffd0a2d: crates/bench/src/bin/exp_extension_solar.rs

crates/bench/src/bin/exp_extension_solar.rs:
