/root/repo/target/debug/deps/satiot_scenarios-b78d2aa2ea16f8e6.d: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

/root/repo/target/debug/deps/satiot_scenarios-b78d2aa2ea16f8e6: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/constellations.rs:
crates/scenarios/src/sites.rs:
