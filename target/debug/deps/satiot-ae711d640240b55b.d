/root/repo/target/debug/deps/satiot-ae711d640240b55b.d: src/bin/satiot.rs

/root/repo/target/debug/deps/satiot-ae711d640240b55b: src/bin/satiot.rs

src/bin/satiot.rs:
