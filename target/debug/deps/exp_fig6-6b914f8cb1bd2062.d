/root/repo/target/debug/deps/exp_fig6-6b914f8cb1bd2062.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-6b914f8cb1bd2062: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
