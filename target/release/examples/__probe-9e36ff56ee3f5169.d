/root/repo/target/release/examples/__probe-9e36ff56ee3f5169.d: examples/__probe.rs

/root/repo/target/release/examples/__probe-9e36ff56ee3f5169: examples/__probe.rs

examples/__probe.rs:
