/root/repo/target/release/deps/satiot_terrestrial-9d5d712b418a01e7.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/release/deps/libsatiot_terrestrial-9d5d712b418a01e7.rlib: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/release/deps/libsatiot_terrestrial-9d5d712b418a01e7.rmeta: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
