/root/repo/target/release/deps/exp_table1-78be584a296d5053.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-78be584a296d5053: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
