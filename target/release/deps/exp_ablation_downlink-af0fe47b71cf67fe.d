/root/repo/target/release/deps/exp_ablation_downlink-af0fe47b71cf67fe.d: crates/bench/src/bin/exp_ablation_downlink.rs

/root/repo/target/release/deps/exp_ablation_downlink-af0fe47b71cf67fe: crates/bench/src/bin/exp_ablation_downlink.rs

crates/bench/src/bin/exp_ablation_downlink.rs:
