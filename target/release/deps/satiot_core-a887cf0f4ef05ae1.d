/root/repo/target/release/deps/satiot_core-a887cf0f4ef05ae1.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buffer.rs crates/core/src/calib.rs crates/core/src/geometry.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/passive.rs crates/core/src/satellite.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/station.rs

/root/repo/target/release/deps/libsatiot_core-a887cf0f4ef05ae1.rlib: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buffer.rs crates/core/src/calib.rs crates/core/src/geometry.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/passive.rs crates/core/src/satellite.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/station.rs

/root/repo/target/release/deps/libsatiot_core-a887cf0f4ef05ae1.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/buffer.rs crates/core/src/calib.rs crates/core/src/geometry.rs crates/core/src/messages.rs crates/core/src/node.rs crates/core/src/passive.rs crates/core/src/satellite.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/station.rs

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/buffer.rs:
crates/core/src/calib.rs:
crates/core/src/geometry.rs:
crates/core/src/messages.rs:
crates/core/src/node.rs:
crates/core/src/passive.rs:
crates/core/src/satellite.rs:
crates/core/src/scheduler.rs:
crates/core/src/server.rs:
crates/core/src/station.rs:
