/root/repo/target/release/deps/satiot_phy-8f3c53530b3a317f.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libsatiot_phy-8f3c53530b3a317f.rlib: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libsatiot_phy-8f3c53530b3a317f.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/doppler.rs:
crates/phy/src/frame.rs:
crates/phy/src/params.rs:
crates/phy/src/per.rs:
crates/phy/src/sensitivity.rs:
