/root/repo/target/release/deps/satiot_energy-98e49b16e8966bd5.d: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

/root/repo/target/release/deps/libsatiot_energy-98e49b16e8966bd5.rlib: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

/root/repo/target/release/deps/libsatiot_energy-98e49b16e8966bd5.rmeta: crates/energy/src/lib.rs crates/energy/src/accounting.rs crates/energy/src/battery.rs crates/energy/src/profile.rs crates/energy/src/solar.rs

crates/energy/src/lib.rs:
crates/energy/src/accounting.rs:
crates/energy/src/battery.rs:
crates/energy/src/profile.rs:
crates/energy/src/solar.rs:
