/root/repo/target/release/deps/exp_fig4a-80165bd8a1bbe5f3.d: crates/bench/src/bin/exp_fig4a.rs

/root/repo/target/release/deps/exp_fig4a-80165bd8a1bbe5f3: crates/bench/src/bin/exp_fig4a.rs

crates/bench/src/bin/exp_fig4a.rs:
