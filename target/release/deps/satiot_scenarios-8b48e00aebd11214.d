/root/repo/target/release/deps/satiot_scenarios-8b48e00aebd11214.d: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

/root/repo/target/release/deps/libsatiot_scenarios-8b48e00aebd11214.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

/root/repo/target/release/deps/libsatiot_scenarios-8b48e00aebd11214.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/constellations.rs crates/scenarios/src/sites.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/constellations.rs:
crates/scenarios/src/sites.rs:
