/root/repo/target/release/deps/exp_table2-5d0dc0e189455f52.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-5d0dc0e189455f52: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
