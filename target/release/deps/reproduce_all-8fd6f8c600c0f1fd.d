/root/repo/target/release/deps/reproduce_all-8fd6f8c600c0f1fd.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-8fd6f8c600c0f1fd: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
