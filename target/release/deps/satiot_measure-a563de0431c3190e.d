/root/repo/target/release/deps/satiot_measure-a563de0431c3190e.d: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

/root/repo/target/release/deps/libsatiot_measure-a563de0431c3190e.rlib: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

/root/repo/target/release/deps/libsatiot_measure-a563de0431c3190e.rmeta: crates/measure/src/lib.rs crates/measure/src/contact.rs crates/measure/src/csv.rs crates/measure/src/latency.rs crates/measure/src/reliability.rs crates/measure/src/stats.rs crates/measure/src/table.rs crates/measure/src/trace.rs

crates/measure/src/lib.rs:
crates/measure/src/contact.rs:
crates/measure/src/csv.rs:
crates/measure/src/latency.rs:
crates/measure/src/reliability.rs:
crates/measure/src/stats.rs:
crates/measure/src/table.rs:
crates/measure/src/trace.rs:
