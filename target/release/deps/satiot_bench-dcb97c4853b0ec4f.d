/root/repo/target/release/deps/satiot_bench-dcb97c4853b0ec4f.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libsatiot_bench-dcb97c4853b0ec4f.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libsatiot_bench-dcb97c4853b0ec4f.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
