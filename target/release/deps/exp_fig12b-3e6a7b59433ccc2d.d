/root/repo/target/release/deps/exp_fig12b-3e6a7b59433ccc2d.d: crates/bench/src/bin/exp_fig12b.rs

/root/repo/target/release/deps/exp_fig12b-3e6a7b59433ccc2d: crates/bench/src/bin/exp_fig12b.rs

crates/bench/src/bin/exp_fig12b.rs:
