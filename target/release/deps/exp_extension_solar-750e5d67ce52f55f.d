/root/repo/target/release/deps/exp_extension_solar-750e5d67ce52f55f.d: crates/bench/src/bin/exp_extension_solar.rs

/root/repo/target/release/deps/exp_extension_solar-750e5d67ce52f55f: crates/bench/src/bin/exp_extension_solar.rs

crates/bench/src/bin/exp_extension_solar.rs:
