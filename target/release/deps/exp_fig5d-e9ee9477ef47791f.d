/root/repo/target/release/deps/exp_fig5d-e9ee9477ef47791f.d: crates/bench/src/bin/exp_fig5d.rs

/root/repo/target/release/deps/exp_fig5d-e9ee9477ef47791f: crates/bench/src/bin/exp_fig5d.rs

crates/bench/src/bin/exp_fig5d.rs:
