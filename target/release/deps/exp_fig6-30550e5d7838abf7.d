/root/repo/target/release/deps/exp_fig6-30550e5d7838abf7.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-30550e5d7838abf7: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
