/root/repo/target/release/deps/satiot_orbit-bd1a2a3117ed4675.d: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

/root/repo/target/release/deps/libsatiot_orbit-bd1a2a3117ed4675.rlib: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

/root/repo/target/release/deps/libsatiot_orbit-bd1a2a3117ed4675.rmeta: crates/orbit/src/lib.rs crates/orbit/src/elements.rs crates/orbit/src/error.rs crates/orbit/src/frames.rs crates/orbit/src/pass.rs crates/orbit/src/sgp4.rs crates/orbit/src/sun.rs crates/orbit/src/time.rs crates/orbit/src/tle.rs crates/orbit/src/topo.rs crates/orbit/src/vec3.rs

crates/orbit/src/lib.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/error.rs:
crates/orbit/src/frames.rs:
crates/orbit/src/pass.rs:
crates/orbit/src/sgp4.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/time.rs:
crates/orbit/src/tle.rs:
crates/orbit/src/topo.rs:
crates/orbit/src/vec3.rs:
