/root/repo/target/release/deps/satiot_phy-5211608a8c0cf627.d: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libsatiot_phy-5211608a8c0cf627.rlib: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

/root/repo/target/release/deps/libsatiot_phy-5211608a8c0cf627.rmeta: crates/phy/src/lib.rs crates/phy/src/airtime.rs crates/phy/src/collision.rs crates/phy/src/doppler.rs crates/phy/src/frame.rs crates/phy/src/params.rs crates/phy/src/per.rs crates/phy/src/sensitivity.rs

crates/phy/src/lib.rs:
crates/phy/src/airtime.rs:
crates/phy/src/collision.rs:
crates/phy/src/doppler.rs:
crates/phy/src/frame.rs:
crates/phy/src/params.rs:
crates/phy/src/per.rs:
crates/phy/src/sensitivity.rs:
