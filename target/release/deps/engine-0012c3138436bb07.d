/root/repo/target/release/deps/engine-0012c3138436bb07.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-0012c3138436bb07: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
