/root/repo/target/release/deps/exp_ablation_beacon-a466e3b914fd1910.d: crates/bench/src/bin/exp_ablation_beacon.rs

/root/repo/target/release/deps/exp_ablation_beacon-a466e3b914fd1910: crates/bench/src/bin/exp_ablation_beacon.rs

crates/bench/src/bin/exp_ablation_beacon.rs:
