/root/repo/target/release/deps/exp_fig3a-b87d0ae0f95dd22e.d: crates/bench/src/bin/exp_fig3a.rs

/root/repo/target/release/deps/exp_fig3a-b87d0ae0f95dd22e: crates/bench/src/bin/exp_fig3a.rs

crates/bench/src/bin/exp_fig3a.rs:
