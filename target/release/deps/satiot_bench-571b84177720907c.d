/root/repo/target/release/deps/satiot_bench-571b84177720907c.d: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libsatiot_bench-571b84177720907c.rlib: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libsatiot_bench-571b84177720907c.rmeta: crates/bench/src/lib.rs crates/bench/src/reports.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/reports.rs:
crates/bench/src/runners.rs:
