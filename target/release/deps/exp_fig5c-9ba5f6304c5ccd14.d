/root/repo/target/release/deps/exp_fig5c-9ba5f6304c5ccd14.d: crates/bench/src/bin/exp_fig5c.rs

/root/repo/target/release/deps/exp_fig5c-9ba5f6304c5ccd14: crates/bench/src/bin/exp_fig5c.rs

crates/bench/src/bin/exp_fig5c.rs:
