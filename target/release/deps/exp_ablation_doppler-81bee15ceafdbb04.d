/root/repo/target/release/deps/exp_ablation_doppler-81bee15ceafdbb04.d: crates/bench/src/bin/exp_ablation_doppler.rs

/root/repo/target/release/deps/exp_ablation_doppler-81bee15ceafdbb04: crates/bench/src/bin/exp_ablation_doppler.rs

crates/bench/src/bin/exp_ablation_doppler.rs:
