/root/repo/target/release/deps/exp_extension_mac-87f804bb38d536ff.d: crates/bench/src/bin/exp_extension_mac.rs

/root/repo/target/release/deps/exp_extension_mac-87f804bb38d536ff: crates/bench/src/bin/exp_extension_mac.rs

crates/bench/src/bin/exp_extension_mac.rs:
