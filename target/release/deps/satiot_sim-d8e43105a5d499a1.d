/root/repo/target/release/deps/satiot_sim-d8e43105a5d499a1.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libsatiot_sim-d8e43105a5d499a1.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libsatiot_sim-d8e43105a5d499a1.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
