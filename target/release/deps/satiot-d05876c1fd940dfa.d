/root/repo/target/release/deps/satiot-d05876c1fd940dfa.d: src/bin/satiot.rs

/root/repo/target/release/deps/satiot-d05876c1fd940dfa: src/bin/satiot.rs

src/bin/satiot.rs:
