/root/repo/target/release/deps/satiot_obs-0d3d71d29d5cdada.d: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libsatiot_obs-0d3d71d29d5cdada.rlib: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libsatiot_obs-0d3d71d29d5cdada.rmeta: crates/obs/src/lib.rs crates/obs/src/invariants.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/invariants.rs:
crates/obs/src/metrics.rs:
