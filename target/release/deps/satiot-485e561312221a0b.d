/root/repo/target/release/deps/satiot-485e561312221a0b.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsatiot-485e561312221a0b.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsatiot-485e561312221a0b.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
