/root/repo/target/release/deps/exp_fig10-0baaf89267dedd19.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/release/deps/exp_fig10-0baaf89267dedd19: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
