/root/repo/target/release/deps/ablations_all-fcb7334ea9858382.d: crates/bench/src/bin/ablations_all.rs

/root/repo/target/release/deps/ablations_all-fcb7334ea9858382: crates/bench/src/bin/ablations_all.rs

crates/bench/src/bin/ablations_all.rs:
