/root/repo/target/release/deps/exp_extension_cost-3ab129100e0af33c.d: crates/bench/src/bin/exp_extension_cost.rs

/root/repo/target/release/deps/exp_extension_cost-3ab129100e0af33c: crates/bench/src/bin/exp_extension_cost.rs

crates/bench/src/bin/exp_extension_cost.rs:
