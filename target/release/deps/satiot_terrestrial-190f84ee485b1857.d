/root/repo/target/release/deps/satiot_terrestrial-190f84ee485b1857.d: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/release/deps/libsatiot_terrestrial-190f84ee485b1857.rlib: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

/root/repo/target/release/deps/libsatiot_terrestrial-190f84ee485b1857.rmeta: crates/terrestrial/src/lib.rs crates/terrestrial/src/adr.rs crates/terrestrial/src/backhaul.rs crates/terrestrial/src/campaign.rs crates/terrestrial/src/node.rs

crates/terrestrial/src/lib.rs:
crates/terrestrial/src/adr.rs:
crates/terrestrial/src/backhaul.rs:
crates/terrestrial/src/campaign.rs:
crates/terrestrial/src/node.rs:
