/root/repo/target/release/deps/exp_ablation_buffer-022c83a56a837c76.d: crates/bench/src/bin/exp_ablation_buffer.rs

/root/repo/target/release/deps/exp_ablation_buffer-022c83a56a837c76: crates/bench/src/bin/exp_ablation_buffer.rs

crates/bench/src/bin/exp_ablation_buffer.rs:
