/root/repo/target/release/deps/exp_ablation_sf-169489c576013c74.d: crates/bench/src/bin/exp_ablation_sf.rs

/root/repo/target/release/deps/exp_ablation_sf-169489c576013c74: crates/bench/src/bin/exp_ablation_sf.rs

crates/bench/src/bin/exp_ablation_sf.rs:
