/root/repo/target/release/deps/exp_fig3d-6a091ec6bccd1086.d: crates/bench/src/bin/exp_fig3d.rs

/root/repo/target/release/deps/exp_fig3d-6a091ec6bccd1086: crates/bench/src/bin/exp_fig3d.rs

crates/bench/src/bin/exp_fig3d.rs:
