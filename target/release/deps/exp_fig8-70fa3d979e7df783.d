/root/repo/target/release/deps/exp_fig8-70fa3d979e7df783.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-70fa3d979e7df783: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
