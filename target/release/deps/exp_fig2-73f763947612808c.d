/root/repo/target/release/deps/exp_fig2-73f763947612808c.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/release/deps/exp_fig2-73f763947612808c: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
