/root/repo/target/release/deps/exp_ablation_retx-b7fe4c46e1e48899.d: crates/bench/src/bin/exp_ablation_retx.rs

/root/repo/target/release/deps/exp_ablation_retx-b7fe4c46e1e48899: crates/bench/src/bin/exp_ablation_retx.rs

crates/bench/src/bin/exp_ablation_retx.rs:
