/root/repo/target/release/deps/exp_fig3c-1e2cc16642ec96fd.d: crates/bench/src/bin/exp_fig3c.rs

/root/repo/target/release/deps/exp_fig3c-1e2cc16642ec96fd: crates/bench/src/bin/exp_fig3c.rs

crates/bench/src/bin/exp_fig3c.rs:
