/root/repo/target/release/deps/satiot_channel-2f65e8f81803a03a.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

/root/repo/target/release/deps/libsatiot_channel-2f65e8f81803a03a.rlib: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

/root/repo/target/release/deps/libsatiot_channel-2f65e8f81803a03a.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fading.rs crates/channel/src/fspl.rs crates/channel/src/noise.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fading.rs:
crates/channel/src/fspl.rs:
crates/channel/src/noise.rs:
crates/channel/src/weather.rs:
