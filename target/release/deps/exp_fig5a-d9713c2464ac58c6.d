/root/repo/target/release/deps/exp_fig5a-d9713c2464ac58c6.d: crates/bench/src/bin/exp_fig5a.rs

/root/repo/target/release/deps/exp_fig5a-d9713c2464ac58c6: crates/bench/src/bin/exp_fig5a.rs

crates/bench/src/bin/exp_fig5a.rs:
