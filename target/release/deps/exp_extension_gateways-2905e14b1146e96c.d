/root/repo/target/release/deps/exp_extension_gateways-2905e14b1146e96c.d: crates/bench/src/bin/exp_extension_gateways.rs

/root/repo/target/release/deps/exp_extension_gateways-2905e14b1146e96c: crates/bench/src/bin/exp_extension_gateways.rs

crates/bench/src/bin/exp_extension_gateways.rs:
