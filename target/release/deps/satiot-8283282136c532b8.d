/root/repo/target/release/deps/satiot-8283282136c532b8.d: src/bin/satiot.rs

/root/repo/target/release/deps/satiot-8283282136c532b8: src/bin/satiot.rs

src/bin/satiot.rs:
