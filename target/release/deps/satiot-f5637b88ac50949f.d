/root/repo/target/release/deps/satiot-f5637b88ac50949f.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsatiot-f5637b88ac50949f.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libsatiot-f5637b88ac50949f.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
