/root/repo/target/release/deps/exp_fig3b-39af1cd3179f0b91.d: crates/bench/src/bin/exp_fig3b.rs

/root/repo/target/release/deps/exp_fig3b-39af1cd3179f0b91: crates/bench/src/bin/exp_fig3b.rs

crates/bench/src/bin/exp_fig3b.rs:
