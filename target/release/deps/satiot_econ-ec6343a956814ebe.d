/root/repo/target/release/deps/satiot_econ-ec6343a956814ebe.d: crates/econ/src/lib.rs

/root/repo/target/release/deps/libsatiot_econ-ec6343a956814ebe.rlib: crates/econ/src/lib.rs

/root/repo/target/release/deps/libsatiot_econ-ec6343a956814ebe.rmeta: crates/econ/src/lib.rs

crates/econ/src/lib.rs:
