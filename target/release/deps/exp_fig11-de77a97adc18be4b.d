/root/repo/target/release/deps/exp_fig11-de77a97adc18be4b.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/release/deps/exp_fig11-de77a97adc18be4b: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
