/root/repo/target/release/deps/exp_table3-d62b7de651068c93.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-d62b7de651068c93: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
