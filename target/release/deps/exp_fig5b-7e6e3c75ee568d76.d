/root/repo/target/release/deps/exp_fig5b-7e6e3c75ee568d76.d: crates/bench/src/bin/exp_fig5b.rs

/root/repo/target/release/deps/exp_fig5b-7e6e3c75ee568d76: crates/bench/src/bin/exp_fig5b.rs

crates/bench/src/bin/exp_fig5b.rs:
