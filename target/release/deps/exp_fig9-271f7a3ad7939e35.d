/root/repo/target/release/deps/exp_fig9-271f7a3ad7939e35.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/release/deps/exp_fig9-271f7a3ad7939e35: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
