/root/repo/target/release/deps/exp_fig4b-f61804be9b34ff2e.d: crates/bench/src/bin/exp_fig4b.rs

/root/repo/target/release/deps/exp_fig4b-f61804be9b34ff2e: crates/bench/src/bin/exp_fig4b.rs

crates/bench/src/bin/exp_fig4b.rs:
