/root/repo/target/release/deps/exp_fig12a-7b18c560819afbc6.d: crates/bench/src/bin/exp_fig12a.rs

/root/repo/target/release/deps/exp_fig12a-7b18c560819afbc6: crates/bench/src/bin/exp_fig12a.rs

crates/bench/src/bin/exp_fig12a.rs:
