/root/repo/target/release/deps/calibrate-7e9db6cbee62cee0.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-7e9db6cbee62cee0: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
