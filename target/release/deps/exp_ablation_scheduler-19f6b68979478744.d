/root/repo/target/release/deps/exp_ablation_scheduler-19f6b68979478744.d: crates/bench/src/bin/exp_ablation_scheduler.rs

/root/repo/target/release/deps/exp_ablation_scheduler-19f6b68979478744: crates/bench/src/bin/exp_ablation_scheduler.rs

crates/bench/src/bin/exp_ablation_scheduler.rs:
