//! Smoke test for the full reporting surface: every table/figure
//! formatter must render from miniature campaign results without
//! panicking and must carry its headline fields — the safety net that
//! keeps `reproduce_all` runnable.

use satiot::core::active::{ActiveCampaign, ActiveConfig};
use satiot::core::passive::{PassiveCampaign, PassiveConfig};
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

use satiot::core::RunOptions;

/// Hermetic run options: batched kernels, ephemeris grids, no env reads.
fn opts() -> RunOptions {
    RunOptions::default()
}
use satiot_bench::reports;

#[test]
fn every_report_renders_from_a_one_day_campaign() {
    #[allow(deprecated)] // test pins the literal constructor
    let mut pcfg = PassiveConfig::quick(1.5);
    pcfg.sites.retain(|s| {
        matches!(
            s.code,
            "HK" | "SYD" | "LDN" | "PGH" | "SH" | "GZ" | "NC" | "YC"
        )
    });
    let passive = PassiveCampaign::new(pcfg).run(&opts()).unwrap();
    let active = ActiveCampaign::new(ActiveConfig::quick(1.0))
        .run(&opts())
        .unwrap();
    let terrestrial = TerrestrialCampaign::new(TerrestrialConfig {
        days: 1.0,
        ..Default::default()
    })
    .run()
    .unwrap();

    let sections = [
        ("Table 1", reports::table1(&passive)),
        ("Table 2", reports::table2()),
        ("Table 3", reports::table3(&passive)),
        ("Fig 3a", reports::fig3a(1)),
        ("Fig 3b", reports::fig3b(&passive)),
        ("Fig 3c", reports::fig3c(&passive)),
        ("Fig 3d", reports::fig3d(&passive)),
        ("Fig 4a", reports::fig4a(&passive)),
        ("Fig 4b", reports::fig4b(&passive)),
        ("Fig 5a", reports::fig5a(&terrestrial, &active, &active)),
        ("Fig 5b", reports::fig5b(&[("one", &active)])),
        ("Fig 5c", reports::fig5c(&terrestrial, &active)),
        ("Fig 5d", reports::fig5d(&active)),
        ("Fig 6", reports::fig6(&active, &terrestrial)),
        ("Fig 8", reports::fig8(&passive)),
        ("Fig 9", reports::fig9(&passive)),
        ("Fig 10", reports::fig10()),
        ("Fig 11", reports::fig11(&terrestrial)),
        ("Fig 12a", reports::fig12a(&[(20, &active)])),
        ("Fig 12b", reports::fig12b(&[(3, &active)])),
    ];
    for (name, body) in &sections {
        assert!(!body.is_empty(), "{name} rendered empty");
        assert!(body.len() > 60, "{name} suspiciously short: {body:?}");
    }

    // Spot-check load-bearing content.
    assert!(sections[0].1.contains("TOTAL"));
    assert!(sections[1].1.contains("$23.76"));
    assert!(sections[2].1.contains("Tianqi"));
    assert!(sections[9].1.contains("Terrestrial LoRaWAN"));
    assert!(sections[16].1.contains("1630.0"));
}
