//! Reproducibility: identical seeds must replay identical campaigns —
//! across the passive, active, and terrestrial drivers, and regardless
//! of site-level parallelism.

use satiot::core::active::{ActiveCampaign, ActiveConfig};
use satiot::core::passive::{PassiveCampaign, PassiveConfig};
use satiot::scenarios::constellations::pico;
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

use satiot::core::RunOptions;

/// Hermetic run options: batched kernels, ephemeris grids, no env reads.
fn opts() -> RunOptions {
    RunOptions::default()
}

#[test]
fn passive_is_bit_identical_across_runs_and_threading() {
    #[allow(deprecated)] // test pins the literal constructor
    let mut cfg = PassiveConfig::quick(2.0);
    cfg.sites.retain(|s| matches!(s.code, "HK" | "SYD" | "GZ"));
    cfg.constellations = vec![pico()];
    cfg.parallel = false;
    let serial = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
    let serial2 = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
    cfg.parallel = true;
    let parallel = PassiveCampaign::new(cfg).run(&opts()).unwrap();

    assert_eq!(serial.traces.traces, serial2.traces.traces);
    assert_eq!(serial.traces.traces, parallel.traces.traces);
    assert_eq!(serial.passes.len(), parallel.passes.len());
    for (a, b) in serial.passes.iter().zip(&parallel.passes) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.weather, b.weather);
    }
}

#[test]
fn active_replays_per_seed_and_diverges_across_seeds() {
    let mut cfg = ActiveConfig::quick(2.0);
    cfg.seed = 1234;
    let a = ActiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
    let b = ActiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
    assert_eq!(a.delivered_seqs, b.delivered_seqs);
    assert_eq!(a.counters.uplinks_tx, b.counters.uplinks_tx);
    assert_eq!(a.counters.acks_ok, b.counters.acks_ok);
    for (x, y) in a.timelines.iter().zip(&b.timelines) {
        assert_eq!(x, y);
    }

    cfg.seed = 4321;
    let c = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    // Same workload, different channel randomness.
    assert_eq!(a.sent.len(), c.sent.len());
    assert_ne!(
        a.counters.uplinks_tx, c.counters.uplinks_tx,
        "different seeds should perturb the protocol trace"
    );
}

#[test]
fn terrestrial_replays_per_seed() {
    let cfg = TerrestrialConfig {
        days: 2.0,
        ..Default::default()
    };
    let a = TerrestrialCampaign::new(cfg.clone()).run().unwrap();
    let b = TerrestrialCampaign::new(cfg).run().unwrap();
    assert_eq!(a.delivered_seqs, b.delivered_seqs);
    assert_eq!(a.timelines, b.timelines);
}

#[test]
fn config_knobs_change_outcomes_not_workload() {
    // Sweeping a protocol knob keeps the generated workload identical
    // (same seq space) while changing protocol behaviour.
    let mut one = ActiveConfig::quick(2.0);
    one.max_attempts = 1;
    let mut many = ActiveConfig::quick(2.0);
    many.max_attempts = 6;
    let r1 = ActiveCampaign::new(one).run(&opts()).unwrap();
    let r6 = ActiveCampaign::new(many).run(&opts()).unwrap();
    assert_eq!(r1.sent.len(), r6.sent.len());
    for (a, b) in r1.sent.iter().zip(&r6.sent) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.node, b.node);
        assert!((a.sent_s - b.sent_s).abs() < 1e-9);
    }
    assert!(r6.mean_attempts() >= r1.mean_attempts());
}
