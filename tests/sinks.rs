//! The trace-sink contract, end to end: spill archives round-trip the
//! full-trace `TraceSet`, the aggregating sink is bounded and
//! driver-independent, and sketch quantiles stay inside the documented
//! error band of the exact order statistics.

use satiot::core::passive::{PassiveCampaign, PassiveConfig};
use satiot::core::{RunOptions, SinkMode};
use satiot::measure::csv::{read_traces, read_traces_jsonl, write_traces, write_traces_jsonl};
use satiot::measure::stats::nearest_rank_sorted;
use satiot::scenarios::constellations::pico;

/// A small deterministic campaign with two sites, so per-site spill
/// parts and sketch shard merges are both exercised.
fn small_config() -> PassiveConfig {
    #[allow(deprecated)] // test pins the literal constructor
    let mut cfg = PassiveConfig::quick(1.0);
    cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ"));
    cfg.constellations = vec![pico()];
    cfg.parallel = false;
    cfg
}

fn leak_temp_path(name: &str) -> &'static str {
    let path = std::env::temp_dir().join(format!("satiot-sinks-{}-{name}", std::process::id()));
    Box::leak(path.to_string_lossy().into_owned().into_boxed_str())
}

#[test]
fn spill_archives_equal_the_full_trace_set() {
    let cfg = small_config();
    let full = PassiveCampaign::new(cfg.clone())
        .run(&RunOptions::default())
        .unwrap();
    assert!(
        !full.traces.traces.is_empty(),
        "baseline campaign must decode traces"
    );

    let csv_path = leak_temp_path("spill.csv");
    let spilled = PassiveCampaign::new(cfg.clone())
        .run(&RunOptions::default().with_sink(SinkMode::SpillCsv { path: csv_path }))
        .unwrap();
    assert!(spilled.traces.traces.is_empty(), "spill retains no traces");
    assert_eq!(spilled.sink.retained, 0);
    assert_eq!(spilled.sink.spilled, full.traces.traces.len() as u64);
    assert_eq!(spilled.faults.sink_io_errors, 0);
    // The streamed archive is byte-identical to archiving the full
    // run's TraceSet after the fact, and parses back losslessly.
    let mut expected = Vec::new();
    write_traces(&full.traces, &mut expected).unwrap();
    let archive = std::fs::read(csv_path).expect("spill archive exists");
    assert_eq!(archive, expected, "CSV spill matches write_traces");
    let back = read_traces(&archive[..]).expect("spill archive parses");
    assert_eq!(back.traces.len(), full.traces.traces.len());
    std::fs::remove_file(csv_path).ok();

    let jsonl_path = leak_temp_path("spill.jsonl");
    let spilled = PassiveCampaign::new(cfg)
        .run(&RunOptions::default().with_sink(SinkMode::SpillJsonl { path: jsonl_path }))
        .unwrap();
    assert_eq!(spilled.sink.spilled, full.traces.traces.len() as u64);
    let mut expected = Vec::new();
    write_traces_jsonl(&full.traces, &mut expected).unwrap();
    let archive = std::fs::read(jsonl_path).expect("spill archive exists");
    assert_eq!(archive, expected, "JSONL spill matches write_traces_jsonl");
    let back = read_traces_jsonl(&archive[..]).expect("spill archive parses");
    assert_eq!(back.traces.len(), full.traces.traces.len());
    std::fs::remove_file(jsonl_path).ok();
}

#[test]
fn aggregate_sink_is_bounded_and_driver_independent() {
    let mut cfg = small_config();
    let opts = RunOptions::default().with_sink(SinkMode::Aggregate);
    let full = PassiveCampaign::new(cfg.clone())
        .run(&RunOptions::default())
        .unwrap();
    let serial = PassiveCampaign::new(cfg.clone()).run(&opts).unwrap();
    cfg.parallel = true;
    let pooled = PassiveCampaign::new(cfg).run(&opts).unwrap();

    // Bounded: nothing retained, every decode accounted for.
    assert!(serial.traces.traces.is_empty());
    assert_eq!(serial.sink.retained, 0);
    assert_eq!(serial.sink.emitted, full.traces.traces.len() as u64);

    // Driver-independent: serial and pooled aggregate runs, and the
    // full run's own sketch, are bit-identical.
    let sketch = serial.sketch.as_ref().expect("aggregate run sketches");
    assert_eq!(serial.sketch, pooled.sketch);
    assert_eq!(serial.sketch, full.sketch);
    assert_eq!(serial.sink, pooled.sink);

    // Accuracy: sketch quantiles stay within width/2 of the exact
    // nearest-rank statistics computed from the full run's raw traces.
    let group = &sketch.groups[0];
    let mut exact: Vec<f64> = full
        .traces
        .traces
        .iter()
        .filter(|t| t.constellation == group.constellation)
        .map(|t| t.rssi_dbm)
        .collect();
    exact.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(group.count, exact.len() as u64);
    let band = group.rssi_dbm.quantiles.width() / 2.0 + 1e-9;
    for p in [10.0, 50.0, 90.0] {
        let est = group.rssi_dbm.quantiles.quantile(p);
        let truth = nearest_rank_sorted(&exact, p);
        assert!(
            (est - truth).abs() <= band,
            "p{p}: sketch {est} vs exact {truth} (band {band})"
        );
    }
}

#[test]
fn null_sink_counts_and_keeps_nothing() {
    let cfg = small_config();
    let full = PassiveCampaign::new(cfg.clone())
        .run(&RunOptions::default())
        .unwrap();
    let null = PassiveCampaign::new(cfg)
        .run(&RunOptions::default().with_sink(SinkMode::Null))
        .unwrap();
    assert!(null.traces.traces.is_empty());
    assert!(null.sketch.is_none());
    assert_eq!(null.sink.emitted, full.traces.traces.len() as u64);
    assert_eq!(null.sink.retained, 0);
    assert_eq!(null.sink.spilled, 0);
    // The sink must not disturb the simulation itself.
    assert_eq!(null.passes.len(), full.passes.len());
    assert_eq!(null.faults, full.faults);
}
