//! Failure injection: push every subsystem into its degenerate corners
//! and assert graceful degradation — no panics, invariants intact, and
//! losses showing up where the design says they must.

use satiot::channel::antenna::AntennaPattern;
use satiot::channel::weather::Weather;
use satiot::core::active::{ActiveCampaign, ActiveConfig};
use satiot::core::error::SatIotError;
use satiot::core::passive::{PassiveCampaign, PassiveConfig};
use satiot::core::satellite::SatellitePayload;
use satiot::measure::latency::LatencyBreakdown;
use satiot::scenarios::constellations::fossa;

use satiot::core::RunOptions;

/// Hermetic run options: batched kernels, ephemeris grids, no env reads.
fn opts() -> RunOptions {
    RunOptions::default()
}

#[test]
fn tiny_node_buffer_loses_data_but_never_panics() {
    let mut cfg = ActiveConfig::quick(2.0);
    cfg.buffer_capacity = 1;
    let r = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    // Heavy loss, but the pipeline stays consistent.
    assert!(r.reliability() < 0.9);
    assert!(r.node_drop_ratio.iter().any(|d| *d > 0.1));
    for tl in &r.timelines {
        if let (Some(tx), Some(rx)) = (tl.first_tx_s, tl.sat_rx_s) {
            assert!(rx >= tx);
        }
    }
}

#[test]
fn zero_max_attempts_clamps_to_one() {
    let mut cfg = ActiveConfig::quick(1.0);
    cfg.max_attempts = 0; // NodeMachine clamps to ≥ 1; the clamp is counted.
    let r = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    assert!(r.sent.iter().all(|p| p.attempts <= 1));
    assert!(!r.delivered_seqs.is_empty());
    assert_eq!(r.faults.clamped_configs, 1);
}

#[test]
fn permanent_rain_degrades_but_does_not_kill_the_link() {
    let mut sunny = ActiveConfig::quick(3.0);
    sunny.weather_override = Some(Weather::Sunny);
    let mut rainy = sunny.clone();
    rainy.weather_override = Some(Weather::Rainy);
    let r_sunny = ActiveCampaign::new(sunny).run(&opts()).unwrap();
    let r_rainy = ActiveCampaign::new(rainy).run(&opts()).unwrap();
    assert!(r_rainy.mean_attempts() > r_sunny.mean_attempts());
    assert!(
        r_rainy.reliability() > 0.5,
        "rain should not sever the link"
    );
}

#[test]
fn congested_downlink_delays_but_preserves_ordering() {
    let mut cfg = ActiveConfig::quick(3.0);
    cfg.downlink_service_s = 900.0; // Far beyond per-contact capacity.
    let r = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    let b = LatencyBreakdown::compute(&r.timelines);
    // Severe delivery delays…
    assert!(
        b.delivery_min.mean > 100.0,
        "delivery {}",
        b.delivery_min.mean
    );
    // …but never time travel.
    for tl in &r.timelines {
        if let (Some(rx), Some(d)) = (tl.sat_rx_s, tl.delivered_s) {
            assert!(d >= rx);
        }
    }
}

#[test]
fn satellite_with_no_ground_segment_never_delivers() {
    let mut sat = SatellitePayload::new(0, vec![]);
    assert_eq!(sat.accept_uplink(0, 1, 100.0), Some(true));
    assert_eq!(sat.next_contact_s(0.0), None);
    assert_eq!(sat.schedule_downlink(100.0, 1.0), None);
}

#[test]
fn single_node_single_day_still_works() {
    let mut cfg = ActiveConfig::quick(1.0);
    cfg.nodes = 1;
    cfg.node_antenna = AntennaPattern::QuarterWaveMonopole;
    let r = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    assert_eq!(r.node_energy.len(), 1);
    assert!(r.sent.len() >= 48);
    assert!(r.counters.uplinks_collided <= r.counters.uplinks_tx);
}

#[test]
fn passive_with_no_sites_or_no_constellations_is_rejected() {
    // A campaign with nothing to observe is a configuration error, not an
    // empty success: the caller gets a typed rejection up front.
    #[allow(deprecated)] // test feeds deliberately invalid literal configs
    let mut cfg = PassiveConfig::quick(1.0);
    cfg.sites.clear();
    let err = PassiveCampaign::new(cfg).run(&opts()).unwrap_err();
    assert!(matches!(err, SatIotError::EmptyPassList { .. }), "{err}");

    #[allow(deprecated)] // test feeds deliberately invalid literal configs
    let mut cfg = PassiveConfig::quick(1.0);
    cfg.constellations.clear();
    cfg.sites.retain(|s| s.code == "HK");
    let err = PassiveCampaign::new(cfg).run(&opts()).unwrap_err();
    assert!(matches!(err, SatIotError::EmptyPassList { .. }), "{err}");
}

#[test]
fn passive_before_site_start_produces_nothing() {
    // LDN starts at day 153; capping the campaign at 1 day means LDN has
    // not come online yet in absolute time — but max_days applies from
    // each site's own start, so instead verify a zero-length cap.  A
    // zero-day window is degenerate per site, so it is skipped and
    // counted rather than scanned.
    #[allow(deprecated)] // test feeds deliberately invalid literal configs
    let mut cfg = PassiveConfig::quick(0.0);
    cfg.sites.retain(|s| s.code == "HK");
    cfg.constellations = vec![fossa()];
    let r = PassiveCampaign::new(cfg).run(&opts()).unwrap();
    assert!(r.traces.is_empty());
    assert_eq!(r.faults.skipped_sites, 1);
}

#[test]
fn giant_payload_still_fits_the_protocol() {
    let mut cfg = ActiveConfig::quick(1.0);
    cfg.payload_bytes = 200; // Above the 120 B billing cap, below LoRa max.
    let r = ActiveCampaign::new(cfg).run(&opts()).unwrap();
    // Airtime-scaled collisions bite hard, retries compensate partially.
    assert!(r.counters.uplinks_tx > 0);
    assert!(r.reliability() > 0.3);
}
