//! Cross-crate property-based tests (proptest): randomised orbital
//! elements, payloads, and link geometries exercised through multiple
//! crates at once.

use proptest::prelude::*;
use satiot::channel::antenna::AntennaPattern;
use satiot::channel::budget::LinkBudget;
use satiot::channel::weather::Weather;
use satiot::orbit::elements::Elements;
use satiot::orbit::frames::{ecef_to_geodetic, Geodetic};
use satiot::orbit::sgp4::EARTH_RADIUS_KM;
use satiot::orbit::time::JulianDate;
use satiot::orbit::tle::Tle;
use satiot::phy::airtime::airtime_s;
use satiot::phy::frame::LoRaFrame;
use satiot::phy::params::{CodingRate, LoRaConfig, SpreadingFactor};
use satiot::phy::per::packet_success_probability;

fn epoch() -> JulianDate {
    JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
}

proptest! {
    /// Any LEO element set must survive the full TLE text round trip and
    /// propagate to a radius consistent with its altitude for a day.
    #[test]
    fn random_leo_elements_roundtrip_and_propagate(
        alt in 300.0_f64..1_500.0,
        incl in 0.0_f64..180.0,
        raan in 0.0_f64..std::f64::consts::TAU,
        ma in 0.0_f64..std::f64::consts::TAU,
        t in 0.0_f64..1_440.0,
    ) {
        let mut e = Elements::circular(alt, incl, epoch());
        e.raan_rad = raan;
        e.mean_anomaly_rad = ma;
        let tle = e.to_tle(42_000, "PROP").unwrap();
        let (l1, l2) = tle.format_lines();
        let parsed = Tle::parse_lines(&l1, &l2).unwrap();
        prop_assert!((parsed.inclination_rad - e.inclination_rad).abs() < 1e-4);
        prop_assert!((parsed.mean_motion_rad_min - e.mean_motion_rad_min()).abs() < 1e-6);

        let sgp4 = e.to_sgp4().unwrap();
        let state = sgp4.propagate(t).unwrap();
        let r = state.position_km.norm();
        prop_assert!(
            (r - (EARTH_RADIUS_KM + alt)).abs() < 60.0,
            "alt {alt}: radius {r}"
        );
        // Speed matches the circular-orbit band.
        let v = state.velocity_km_s.norm();
        prop_assert!((6.9..8.0).contains(&v), "speed {v}");
    }

    /// Geodetic → ECEF → geodetic is the identity everywhere on Earth.
    #[test]
    fn geodetic_roundtrip_everywhere(
        lat in -89.9_f64..89.9,
        lon in -179.9_f64..179.9,
        alt in 0.0_f64..9.0,
    ) {
        let g = Geodetic::from_degrees(lat, lon, alt);
        let back = ecef_to_geodetic(g.to_ecef());
        prop_assert!((back.lat_rad - g.lat_rad).abs() < 1e-9);
        prop_assert!((back.lon_rad - g.lon_rad).abs() < 1e-9);
        prop_assert!((back.alt_km - g.alt_km).abs() < 1e-6);
    }

    /// The PHY frame codec round-trips arbitrary payloads and rejects any
    /// single-byte corruption.
    #[test]
    fn frame_codec_roundtrip_and_corruption(
        payload in proptest::collection::vec(any::<u8>(), 0..=200),
        flip_pos_frac in 0.0_f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let frame = LoRaFrame::new(payload.clone(), CodingRate::Cr4_8);
        let wire = frame.encode();
        let decoded = LoRaFrame::decode(wire.clone()).unwrap();
        prop_assert_eq!(&decoded.payload[..], &payload[..]);

        let mut corrupted = wire.to_vec();
        let pos = ((flip_pos_frac * corrupted.len() as f64) as usize).min(corrupted.len() - 1);
        corrupted[pos] ^= 1 << flip_bit;
        let result = LoRaFrame::decode(bytes::Bytes::from(corrupted));
        prop_assert!(
            result.is_err() || result.as_ref().unwrap() != &frame,
            "corruption at byte {pos} undetected"
        );
    }

    /// Airtime is monotone in payload length and spreading factor, and
    /// decode probability is monotone in SNR for any configuration.
    #[test]
    fn phy_monotonicities(
        len_a in 0usize..200,
        extra in 1usize..55,
        snr in -30.0_f64..5.0,
        sf_idx in 0usize..5,
    ) {
        let sf = SpreadingFactor::ALL[sf_idx];
        let sf_next = SpreadingFactor::ALL[sf_idx + 1];
        let cfg = LoRaConfig { sf, ..LoRaConfig::dts_beacon() };
        let cfg_next = LoRaConfig { sf: sf_next, ..cfg };
        // Payload symbols quantise in FEC blocks, so airtime is
        // non-decreasing byte-by-byte and strictly longer per ~32 B.
        prop_assert!(airtime_s(&cfg, len_a + extra) >= airtime_s(&cfg, len_a));
        prop_assert!(airtime_s(&cfg, len_a + 32) > airtime_s(&cfg, len_a));
        prop_assert!(airtime_s(&cfg_next, len_a) > airtime_s(&cfg, len_a));
        let p_lo = packet_success_probability(&cfg, len_a, snr);
        let p_hi = packet_success_probability(&cfg, len_a, snr + 1.0);
        prop_assert!(p_hi >= p_lo);
        prop_assert!((0.0..=1.0).contains(&p_lo));
    }

    /// The link budget degrades monotonically with distance at fixed
    /// geometry, under every weather and antenna.
    #[test]
    fn link_budget_monotone_in_distance(
        d in 500.0_f64..3_000.0,
        el_deg in 0.0_f64..90.0,
        wx_idx in 0usize..3,
        ant_idx in 0usize..2,
    ) {
        let weather = [Weather::Sunny, Weather::Cloudy, Weather::Rainy][wx_idx];
        let antenna = [
            AntennaPattern::QuarterWaveMonopole,
            AntennaPattern::FiveEighthsWaveMonopole,
        ][ant_idx];
        let budget = LinkBudget::dts_downlink(400.45, antenna);
        let el = el_deg.to_radians();
        let near = budget.mean_rssi_dbm(d, el, weather);
        let far = budget.mean_rssi_dbm(d * 1.5, el, weather);
        prop_assert!(near > far, "rssi {near} !> {far}");
        // SNR definition holds.
        prop_assert!((near - budget.noise_floor_dbm()) > (far - budget.noise_floor_dbm()));
    }
}
