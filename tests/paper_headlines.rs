//! The paper's headline findings as executable assertions.
//!
//! These run truncated campaigns, so thresholds are set at the *shape*
//! level (orderings and coarse ratios), not the paper's exact decimals —
//! `reproduce_all` at full scale produces the quantitative comparison.

use satiot::core::active::{ActiveCampaign, ActiveConfig};
use satiot::core::passive::{theoretical_daily_hours, PassiveCampaign, PassiveConfig};
use satiot::measure::latency::LatencyBreakdown;
use satiot::measure::stats::Histogram;
use satiot::scenarios::constellations::{fossa, tianqi};
use satiot::scenarios::sites::measurement_sites;
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

use satiot::core::RunOptions;

/// Hermetic run options: batched kernels, ephemeris grids, no env reads.
fn opts() -> RunOptions {
    RunOptions::default()
}

fn hk_passive(days: f64) -> PassiveConfig {
    #[allow(deprecated)] // test pins the literal constructor
    let mut cfg = PassiveConfig::quick(days);
    cfg.sites.retain(|s| s.code == "HK");
    cfg.parallel = false;
    cfg
}

#[test]
fn effective_windows_shrink_dramatically() {
    // §3.1: effective contact durations are 73.7–89.2 % shorter than the
    // TLE-predicted ones; daily aggregates shrink 85.7–92.2 %.
    let results = PassiveCampaign::new(hk_passive(5.0)).run(&opts()).unwrap();
    for c in ["Tianqi", "FOSSA"] {
        let covered = results.contact_stats_covered(c, &[]);
        assert!(
            covered.duration_shrink > 0.6,
            "{c}: per-window shrink only {:.2}",
            covered.duration_shrink
        );
        let all = results.contact_stats(c, &[]);
        assert!(
            all.duration_shrink > 0.8,
            "{c}: daily shrink only {:.2}",
            all.duration_shrink
        );
    }
}

#[test]
fn contact_intervals_expand() {
    // §3.1: measured inter-contact intervals are several times the
    // theoretical ones (paper: 6.1–44.9×).
    let results = PassiveCampaign::new(hk_passive(5.0)).run(&opts()).unwrap();
    let stats = results.contact_stats("Tianqi", &[]);
    assert!(
        stats.interval_expansion() > 2.0,
        "expansion {:.1}",
        stats.interval_expansion()
    );
}

#[test]
fn receptions_concentrate_mid_window() {
    // Appendix C: ~70 % of receptions inside the middle 30–70 % span.
    let results = PassiveCampaign::new(hk_passive(5.0)).run(&opts()).unwrap();
    let pos = results.reception_positions();
    assert!(pos.len() > 100, "too few receptions ({})", pos.len());
    let mut h = Histogram::new(0.0, 1.0, 10);
    for p in &pos {
        h.add(*p);
    }
    let mid = h.fraction_between(0.3, 0.7);
    assert!(
        (0.5..0.95).contains(&mid),
        "mid-window share {mid:.2} out of band"
    );
    // Edges carry far fewer receptions than the centre.
    assert!(h.fraction(0) + h.fraction(9) < 0.1);
}

#[test]
fn constellation_size_drives_availability() {
    // Fig 3a: Tianqi (22 sats) is available an order of magnitude longer
    // per day than FOSSA (3 sats).
    let hk = measurement_sites()
        .into_iter()
        .find(|s| s.code == "HK")
        .unwrap();
    let t: f64 = theoretical_daily_hours(&tianqi(), &hk, 3)
        .iter()
        .sum::<f64>()
        / 3.0;
    let f: f64 = theoretical_daily_hours(&fossa(), &hk, 3)
        .iter()
        .sum::<f64>()
        / 3.0;
    assert!((10.0..24.0).contains(&t), "Tianqi {t} h/day");
    assert!((0.3..5.0).contains(&f), "FOSSA {f} h/day");
}

#[test]
fn satellite_latency_is_hundreds_of_times_terrestrial() {
    // §3.2: 135.2 min vs 0.2 min (643.6×). At 4 simulated days we accept
    // any ratio above 100×.
    let sat = ActiveCampaign::new(ActiveConfig::quick(4.0))
        .run(&opts())
        .unwrap();
    let terr = TerrestrialCampaign::new(TerrestrialConfig {
        days: 4.0,
        ..Default::default()
    })
    .run()
    .unwrap();
    let sb = LatencyBreakdown::compute(&sat.timelines);
    let tb = LatencyBreakdown::compute(&terr.timelines);
    let ratio = sb.end_to_end_min.mean / tb.end_to_end_min.mean;
    assert!(ratio > 100.0, "latency ratio only {ratio:.0}x");
    // Terrestrial stays sub-minute; satellite is hour-scale.
    assert!(tb.end_to_end_min.mean < 1.0);
    assert!(sb.end_to_end_min.mean > 45.0);
}

#[test]
fn retransmissions_lift_reliability_above_no_retx() {
    // Fig 5a: 91 % without retransmissions → 96 % with ≤5.
    let mut none = ActiveConfig::quick(4.0);
    none.max_attempts = 1;
    let r_none = ActiveCampaign::new(none).run(&opts()).unwrap();
    let r_retx = ActiveCampaign::new(ActiveConfig::quick(4.0))
        .run(&opts())
        .unwrap();
    assert!(
        r_none.reliability() > 0.75,
        "no-retx {:.2}",
        r_none.reliability()
    );
    assert!(r_retx.reliability() > r_none.reliability());
    assert!(
        r_retx.reliability() > 0.9,
        "retx {:.2}",
        r_retx.reliability()
    );
}

#[test]
fn ack_loss_inflates_retransmissions() {
    // §3.2's "contradicting results": ~half of packets retransmit even
    // though >90 % of first uplinks are received — visible as duplicates.
    let r = ActiveCampaign::new(ActiveConfig::quick(4.0))
        .run(&opts())
        .unwrap();
    let retx_share = 1.0
        - r.sent.iter().filter(|p| p.attempts == 1).count() as f64
            / r.sent.iter().filter(|p| p.attempts > 0).count().max(1) as f64;
    assert!(
        (0.2..0.8).contains(&retx_share),
        "retransmission share {retx_share:.2}"
    );
    assert!(r.counters.duplicates > 0);
    assert!(r.counters.acks_ok < r.counters.acks_tx);
}

#[test]
fn energy_gap_favors_terrestrial_by_an_order_of_magnitude() {
    use satiot::energy::battery::Battery;
    use satiot::energy::profile::{SatNodeDeploymentProfile, TerrestrialDeploymentProfile};
    let sat = ActiveCampaign::new(ActiveConfig::quick(3.0))
        .run(&opts())
        .unwrap();
    let terr = TerrestrialCampaign::new(TerrestrialConfig {
        days: 3.0,
        ..Default::default()
    })
    .run()
    .unwrap();
    let b = Battery::paper_5ah();
    let sat_days = b.lifetime_days(
        sat.node_energy[0]
            .re_profile(&SatNodeDeploymentProfile)
            .average_power_mw(),
    );
    let terr_days = b.lifetime_days(
        terr.node_energy[0]
            .re_profile(&TerrestrialDeploymentProfile)
            .average_power_mw(),
    );
    let gap = terr_days / sat_days;
    assert!(gap > 5.0, "battery gap only {gap:.1}x");
    assert!(sat_days < 60.0, "satellite node {sat_days:.0} days");
    assert!(terr_days > 250.0, "terrestrial node {terr_days:.0} days");
}
