//! Cross-crate integration: the full passive and active pipelines driven
//! through the facade crate, with invariants checked across module
//! boundaries (orbit → channel → phy → core → measure).

use satiot::core::active::{ActiveCampaign, ActiveConfig};
use satiot::core::passive::{PassiveCampaign, PassiveConfig};
use satiot::measure::latency::LatencyBreakdown;
use satiot::scenarios::constellations::{fossa, tianqi};
use satiot::scenarios::sites::measurement_sites;
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

use satiot::core::RunOptions;

/// Hermetic run options: batched kernels, ephemeris grids, no env reads.
fn opts() -> RunOptions {
    RunOptions::default()
}

fn small_passive() -> PassiveConfig {
    #[allow(deprecated)] // test pins the literal constructor
    let mut cfg = PassiveConfig::quick(3.0);
    cfg.sites.retain(|s| s.code == "HK");
    cfg.constellations = vec![tianqi(), fossa()];
    cfg.parallel = false;
    cfg
}

#[test]
fn passive_traces_respect_physical_bounds() {
    let results = PassiveCampaign::new(small_passive()).run(&opts()).unwrap();
    assert!(!results.traces.is_empty());
    for t in &results.traces.traces {
        // RSSI of a *decoded* LoRa packet must sit above raw noise-margin
        // oblivion and below any plausible near-field level.
        assert!(
            (-150.0..=-90.0).contains(&t.rssi_dbm),
            "rssi {}",
            t.rssi_dbm
        );
        // SNR of decoded packets clusters around the SF10 threshold.
        assert!((-25.0..=20.0).contains(&t.snr_db), "snr {}", t.snr_db);
        // Slant ranges are bounded by geometry: not below the orbit
        // altitude, not beyond the horizon distance.
        assert!(
            (400.0..=3_700.0).contains(&t.distance_km),
            "distance {}",
            t.distance_km
        );
        // Decodes only happen above (or marginally at) the horizon.
        assert!(t.elevation_deg > -1.0, "elevation {}", t.elevation_deg);
        // LEO Doppler at 400 MHz stays within ±11 kHz.
        assert!(t.doppler_hz.abs() < 11_000.0, "doppler {}", t.doppler_hz);
        assert_eq!(t.site, "HK");
    }
}

#[test]
fn passive_windows_contain_their_receptions() {
    let results = PassiveCampaign::new(small_passive()).run(&opts()).unwrap();
    for pass in results.covered_passes() {
        let w = &pass.window;
        assert!(w.theoretical.duration_s() > 0.0);
        if let (Some(first), Some(last)) = (w.first_rx_s, w.last_rx_s) {
            assert!(first <= last);
            assert!(first >= w.theoretical.start_s - 1e-6);
            assert!(last <= w.theoretical.end_s + 1e-6);
            assert!(w.received > 0);
            assert!(w.received <= w.transmitted);
        } else {
            assert_eq!(w.received, 0);
        }
        for p in &pass.reception_positions {
            assert!((0.0..=1.0).contains(p));
        }
    }
}

#[test]
fn active_pipeline_timelines_are_ordered() {
    let results = ActiveCampaign::new(ActiveConfig::quick(2.0))
        .run(&opts())
        .unwrap();
    for tl in &results.timelines {
        if let Some(tx) = tl.first_tx_s {
            assert!(tx >= tl.generated_s, "tx before generation");
        }
        if let (Some(tx), Some(rx)) = (tl.first_tx_s, tl.sat_rx_s) {
            assert!(rx >= tx, "satellite rx before first tx");
        }
        if let (Some(rx), Some(d)) = (tl.sat_rx_s, tl.delivered_s) {
            assert!(d >= rx, "delivery before satellite rx");
        }
        // A delivered packet must have been accepted on orbit first.
        if tl.delivered_s.is_some() {
            assert!(tl.sat_rx_s.is_some());
            assert!(tl.first_tx_s.is_some());
        }
    }
}

#[test]
fn server_log_agrees_with_delivered_set() {
    let r = ActiveCampaign::new(ActiveConfig::quick(3.0))
        .run(&opts())
        .unwrap();
    // Every delivered seq (within the horizon) is in the server log; the
    // log may additionally hold deliveries landing past the horizon.
    let log_seqs = r.server.delivered_seqs();
    for seq in &r.delivered_seqs {
        assert!(log_seqs.contains(seq), "seq {seq} missing from server log");
    }
    assert!(r.server.arrivals >= r.server.delivered() as u64);
    assert!((0.0..=1.0).contains(&r.server.duplicate_ratio()));
}

#[test]
fn active_counters_are_consistent() {
    let r = ActiveCampaign::new(ActiveConfig::quick(2.0))
        .run(&opts())
        .unwrap();
    let c = &r.counters;
    assert!(c.beacons_heard <= c.beacons_tx);
    assert!(c.uplinks_ok <= c.uplinks_tx);
    assert!(c.acks_ok <= c.acks_tx);
    // Every ACK corresponds to a decoded uplink.
    assert!(c.acks_tx <= c.uplinks_ok);
    // Delivered set cannot exceed what was sent.
    assert!(r.delivered_seqs.len() <= r.sent.len());
    // Energy residencies cover the horizon for every node.
    for acc in &r.node_energy {
        assert!((acc.total_time_s() - r.horizon_s).abs() < 1.0);
    }
}

#[test]
fn satellite_beats_terrestrial_on_nothing_but_coverage() {
    // The paper's comparison table, as an executable assertion.
    let sat = ActiveCampaign::new(ActiveConfig::quick(3.0))
        .run(&opts())
        .unwrap();
    let terr = TerrestrialCampaign::new(TerrestrialConfig {
        days: 3.0,
        ..Default::default()
    })
    .run()
    .unwrap();
    let sb = LatencyBreakdown::compute(&sat.timelines);
    let tb = LatencyBreakdown::compute(&terr.timelines);
    assert!(terr.reliability() > sat.reliability());
    assert!(sb.end_to_end_min.mean > 50.0 * tb.end_to_end_min.mean);
    let sat_power = sat.node_energy[0].average_power_mw();
    let terr_power = terr.node_energy[0].average_power_mw();
    assert!(sat_power > terr_power);
}

#[test]
fn all_sites_produce_data_at_full_breadth() {
    // Every Table 1 site yields traces once its deployment window opens.
    #[allow(deprecated)] // test pins the literal constructor
    let mut cfg = PassiveConfig::quick(2.0);
    cfg.constellations = vec![tianqi()];
    let results = PassiveCampaign::new(cfg).run(&opts()).unwrap();
    for site in measurement_sites() {
        let n = results.traces.by_site(site.code).count();
        assert!(n > 0, "site {} produced no traces", site.code);
    }
}
