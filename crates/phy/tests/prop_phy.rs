//! Property-based tests for the PHY layer.

use proptest::prelude::*;
use satiot_phy::airtime::{airtime_s, payload_symbols};
use satiot_phy::collision::{captures, interference_dbm, sinr_db, Overlap};
use satiot_phy::doppler::{drift_penalty_db, offset_penalty_db, total_penalty_db};
use satiot_phy::frame::crc16_ccitt;
use satiot_phy::params::{Bandwidth, CodingRate, LoRaConfig, SpreadingFactor};
use satiot_phy::sensitivity::{demod_threshold_db, sensitivity_dbm};

fn any_config() -> impl Strategy<Value = LoRaConfig> {
    (
        0usize..6,
        prop_oneof![Just(Bandwidth::Khz125), Just(Bandwidth::Khz250)],
        prop_oneof![
            Just(CodingRate::Cr4_5),
            Just(CodingRate::Cr4_6),
            Just(CodingRate::Cr4_7),
            Just(CodingRate::Cr4_8)
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(sf, bw, cr, hdr, crc)| LoRaConfig {
            sf: SpreadingFactor::ALL[sf],
            bw,
            cr,
            preamble_symbols: 8,
            explicit_header: hdr,
            crc_on: crc,
        })
}

proptest! {
    /// Airtime equals (preamble + payload symbols) × symbol time exactly,
    /// for every configuration.
    #[test]
    fn airtime_is_symbol_accounting(cfg in any_config(), len in 0usize..255) {
        let t_sym = cfg.symbol_time_s();
        let expected = (cfg.preamble_symbols as f64 + 4.25
            + payload_symbols(&cfg, len) as f64) * t_sym;
        prop_assert!((airtime_s(&cfg, len) - expected).abs() < 1e-12);
        prop_assert!(payload_symbols(&cfg, len) >= 8);
    }

    /// CRC-16 detects any single-bit flip in any message.
    #[test]
    fn crc16_detects_single_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..100),
        byte_frac in 0.0_f64..1.0,
        bit in 0u8..8,
    ) {
        let original = crc16_ccitt(&data);
        let mut flipped = data.clone();
        let pos = ((byte_frac * flipped.len() as f64) as usize).min(flipped.len() - 1);
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(crc16_ccitt(&flipped), original);
    }

    /// Sensitivity decomposes into floor + threshold; lower thresholds
    /// (higher SF) always mean better sensitivity.
    #[test]
    fn sensitivity_decomposition(nf in 0.0_f64..10.0, sf_idx in 0usize..5) {
        let sf = SpreadingFactor::ALL[sf_idx];
        let next = SpreadingFactor::ALL[sf_idx + 1];
        let s = sensitivity_dbm(sf, Bandwidth::Khz125, nf);
        let s_next = sensitivity_dbm(next, Bandwidth::Khz125, nf);
        prop_assert!(s_next < s);
        let floor = -174.0 + 10.0 * 125_000.0_f64.log10() + nf;
        prop_assert!((s - floor - demod_threshold_db(sf)).abs() < 1e-9);
    }

    /// Capture and SINR are mutually consistent: a captured packet always
    /// has SINR above the interference-free SNR minus the capture margin.
    #[test]
    fn capture_and_sinr_agree(
        target in -140.0_f64..-100.0,
        others in proptest::collection::vec(-145.0_f64..-100.0, 0..6),
    ) {
        let sf = SpreadingFactor::Sf10;
        let overlaps: Vec<Overlap> = others
            .iter()
            .map(|&rssi_dbm| Overlap { rssi_dbm, sf })
            .collect();
        let noise = -117.0;
        let sinr = sinr_db(target, sf, &overlaps, noise);
        let snr_clean = target - noise;
        prop_assert!(sinr <= snr_clean + 1e-9, "interference improved SINR");
        if captures(target, sf, &overlaps) {
            if let Some(i) = interference_dbm(sf, &overlaps) {
                prop_assert!(target - i >= 6.0 - 1e-9);
            }
        }
        // Adding an interferer never raises the aggregate.
        if !overlaps.is_empty() {
            let fewer = &overlaps[..overlaps.len() - 1];
            let i_all = interference_dbm(sf, &overlaps).unwrap();
            if let Some(i_fewer) = interference_dbm(sf, fewer) {
                prop_assert!(i_all >= i_fewer - 1e-9);
            }
        }
    }

    /// Doppler penalties are non-negative, monotone in |rate|, and the
    /// total splits into its components.
    #[test]
    fn doppler_penalties_behave(
        offset in -35_000.0_f64..35_000.0,
        rate in -400.0_f64..400.0,
        len in 1usize..200,
    ) {
        let cfg = LoRaConfig::dts_beacon();
        let d = drift_penalty_db(&cfg, len, rate);
        prop_assert!((0.0..=12.0).contains(&d));
        prop_assert!(drift_penalty_db(&cfg, len, rate * 2.0) >= d - 1e-12);
        match (offset_penalty_db(offset, cfg.bw.hz()), total_penalty_db(&cfg, len, offset, rate)) {
            (Some(o), Some(t)) => prop_assert!((t - o - d).abs() < 1e-12),
            (None, None) => {}
            (a, b) => prop_assert!(false, "inconsistent: {a:?} vs {b:?}"),
        }
    }
}
