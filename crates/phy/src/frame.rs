//! The logical wire image of a LoRa PHY frame.
//!
//! Real LoRa is chirp-spread on air; what matters to a packet-level
//! simulator and to the application stack is the byte layout the modem
//! exposes: sync word, explicit header (length, coding rate, CRC flag),
//! payload, and the CRC-16 trailer. This codec gives the protocol layers
//! of `satiot-core` a concrete, checkable serialisation — corrupting any
//! byte breaks the CRC, exactly like on hardware.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! +--------+--------+---------+------------+----------+---------+
//! | sync   | hdr:len| hdr:cr  | hdr:flags  | payload  | crc16   |
//! | 1 B    | 1 B    | 1 B     | 1 B        | 0–255 B  | 2 B     |
//! +--------+--------+---------+------------+----------+---------+
//! ```

use crate::params::CodingRate;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Public LoRa sync word used by the measured DtS constellations (the
/// "public network" value).
pub const PUBLIC_SYNC_WORD: u8 = 0x34;

/// Frame flags: CRC present.
const FLAG_CRC: u8 = 0b0000_0001;

/// Errors decoding a frame image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header requires.
    Truncated,
    /// Sync word mismatch (foreign network).
    BadSyncWord {
        /// The sync word found.
        found: u8,
    },
    /// Header length field disagrees with the buffer.
    LengthMismatch,
    /// CRC-16 check failed.
    BadCrc,
    /// Reserved coding-rate encoding.
    BadCodingRate,
    /// Reserved flag bits were set.
    BadFlags,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadSyncWord { found } => write!(f, "bad sync word {found:#04x}"),
            FrameError::LengthMismatch => write!(f, "header length disagrees with buffer"),
            FrameError::BadCrc => write!(f, "payload CRC mismatch"),
            FrameError::BadCodingRate => write!(f, "reserved coding rate"),
            FrameError::BadFlags => write!(f, "reserved flag bits set"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded LoRa frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoRaFrame {
    /// Sync word (network discriminator).
    pub sync_word: u8,
    /// Coding rate from the explicit header.
    pub coding_rate: CodingRate,
    /// Whether the CRC trailer is present (always true for uplink data).
    pub crc_on: bool,
    /// Application payload.
    pub payload: Bytes,
}

impl LoRaFrame {
    /// Build a frame around `payload` with the public sync word and CRC.
    pub fn new(payload: impl Into<Bytes>, coding_rate: CodingRate) -> Self {
        LoRaFrame {
            sync_word: PUBLIC_SYNC_WORD,
            coding_rate,
            crc_on: true,
            payload: payload.into(),
        }
    }

    /// Serialise into the wire image.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(6 + self.payload.len());
        buf.put_u8(self.sync_word);
        buf.put_u8(self.payload.len() as u8);
        buf.put_u8(self.coding_rate.cr_value() as u8);
        buf.put_u8(if self.crc_on { FLAG_CRC } else { 0 });
        buf.put_slice(&self.payload);
        if self.crc_on {
            buf.put_u16(crc16_ccitt(&self.payload));
        }
        buf.freeze()
    }

    /// Parse and validate a wire image.
    pub fn decode(mut buf: Bytes) -> Result<LoRaFrame, FrameError> {
        if buf.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let sync_word = buf.get_u8();
        if sync_word != PUBLIC_SYNC_WORD {
            return Err(FrameError::BadSyncWord { found: sync_word });
        }
        let len = buf.get_u8() as usize;
        let cr_raw = buf.get_u8();
        let coding_rate = match cr_raw {
            1 => CodingRate::Cr4_5,
            2 => CodingRate::Cr4_6,
            3 => CodingRate::Cr4_7,
            4 => CodingRate::Cr4_8,
            _ => return Err(FrameError::BadCodingRate),
        };
        let flags = buf.get_u8();
        if flags & !FLAG_CRC != 0 {
            // Reserved flag bits must be zero: strict parsing makes every
            // single-bit corruption of the header detectable.
            return Err(FrameError::BadFlags);
        }
        let crc_on = flags & FLAG_CRC != 0;
        let expected = len + if crc_on { 2 } else { 0 };
        if buf.len() != expected {
            return Err(FrameError::LengthMismatch);
        }
        let payload = buf.split_to(len);
        if crc_on {
            let stated = buf.get_u16();
            if stated != crc16_ccitt(&payload) {
                return Err(FrameError::BadCrc);
            }
        }
        Ok(LoRaFrame {
            sync_word,
            coding_rate,
            crc_on,
            payload,
        })
    }

    /// Total on-air byte count of the image (what airtime should be
    /// computed over at the PHY payload level).
    pub fn wire_len(&self) -> usize {
        4 + self.payload.len() + if self.crc_on { 2 } else { 0 }
    }
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the CRC LoRa uses for
/// its payload check.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = LoRaFrame::new(&b"hello satellite"[..], CodingRate::Cr4_8);
        let wire = frame.encode();
        assert_eq!(wire.len(), frame.wire_len());
        let back = LoRaFrame::decode(wire).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = LoRaFrame::new(Bytes::new(), CodingRate::Cr4_5);
        let back = LoRaFrame::decode(frame.encode()).unwrap();
        assert!(back.payload.is_empty());
    }

    #[test]
    fn corrupting_any_byte_is_detected() {
        let frame = LoRaFrame::new(&b"20-byte sensor data."[..], CodingRate::Cr4_5);
        let wire = frame.encode();
        for i in 0..wire.len() {
            let mut corrupted = wire.to_vec();
            corrupted[i] ^= 0x40;
            let result = LoRaFrame::decode(Bytes::from(corrupted));
            assert!(
                result.is_err() || result.as_ref().unwrap() != &frame,
                "byte {i}: corruption not detected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let frame = LoRaFrame::new(&b"payload"[..], CodingRate::Cr4_5);
        let wire = frame.encode();
        for cut in 0..wire.len() {
            assert!(LoRaFrame::decode(wire.slice(..cut)).is_err(), "cut {cut}");
        }
        assert!(matches!(
            LoRaFrame::decode(wire.slice(..2)),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn foreign_sync_word_is_rejected() {
        let frame = LoRaFrame::new(&b"x"[..], CodingRate::Cr4_5);
        let mut wire = frame.encode().to_vec();
        wire[0] = 0x12; // Private-network sync word.
        assert_eq!(
            LoRaFrame::decode(Bytes::from(wire)),
            Err(FrameError::BadSyncWord { found: 0x12 })
        );
    }

    #[test]
    fn bad_crc_is_rejected_specifically() {
        let frame = LoRaFrame::new(&b"data"[..], CodingRate::Cr4_5);
        let mut wire = frame.encode().to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert_eq!(
            LoRaFrame::decode(Bytes::from(wire)),
            Err(FrameError::BadCrc)
        );
    }

    #[test]
    fn reserved_coding_rate_is_rejected() {
        let frame = LoRaFrame::new(&b"x"[..], CodingRate::Cr4_5);
        let mut wire = frame.encode().to_vec();
        wire[2] = 7;
        assert_eq!(
            LoRaFrame::decode(Bytes::from(wire)),
            Err(FrameError::BadCodingRate)
        );
    }

    #[test]
    fn max_payload_round_trips() {
        let payload: Vec<u8> = (0..255).map(|i| i as u8).collect();
        let frame = LoRaFrame::new(payload, CodingRate::Cr4_6);
        let back = LoRaFrame::decode(frame.encode()).unwrap();
        assert_eq!(back.payload.len(), 255);
        assert_eq!(back.coding_rate, CodingRate::Cr4_6);
    }
}
