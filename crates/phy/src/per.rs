//! Packet error rate as a function of SNR.
//!
//! LoRa's PER-vs-SNR curve is a steep waterfall: a couple of dB around the
//! demodulation threshold separates near-certain loss from near-certain
//! success. We model success probability with a logistic curve centred
//! slightly above the threshold, shifted further for long packets (more
//! symbols ⇒ more chances for a symbol error to slip past the FEC). The
//! shape constants were chosen so that:
//!
//! * +3 dB of margin gives ≳ 97 % packet success,
//! * −3 dB gives ≲ 3 %, and
//! * a 120-byte packet needs ≈ 1 dB more SNR than a 10-byte packet for
//!   the same PER — which reproduces the payload-size reliability
//!   ordering of the paper's Figure 12a.

use crate::airtime::payload_symbols;
use crate::params::LoRaConfig;
use crate::sensitivity::demod_threshold_db;
use satiot_sim::Rng;

/// Logistic slope, dB. Smaller = steeper waterfall.
const SLOPE_DB: f64 = 0.85;

/// Per-symbol length penalty scale, dB per doubling beyond the reference.
const LENGTH_PENALTY_DB_PER_DOUBLING: f64 = 0.55;

/// Reference payload symbol count for the length penalty.
const REFERENCE_SYMBOLS: f64 = 30.0;

/// The SNR (dB) at which packet success probability is 50 %.
pub fn snr_50_db(cfg: &LoRaConfig, payload_len: usize) -> f64 {
    let n_sym = payload_symbols(cfg, payload_len) as f64;
    let length_penalty =
        LENGTH_PENALTY_DB_PER_DOUBLING * (n_sym.max(1.0) / REFERENCE_SYMBOLS).log2().max(-1.0);
    demod_threshold_db(cfg.sf) + 0.5 + length_penalty
}

/// Probability that a packet of `payload_len` bytes decodes at `snr_db`.
pub fn packet_success_probability(cfg: &LoRaConfig, payload_len: usize, snr_db: f64) -> f64 {
    let x = (snr_db - snr_50_db(cfg, payload_len)) / SLOPE_DB;
    let p = 1.0 / (1.0 + (-x).exp());
    satiot_obs::invariants::check_probability("per::packet_success_probability", p);
    p
}

/// Bernoulli draw: does this packet decode?
pub fn packet_decodes(cfg: &LoRaConfig, payload_len: usize, snr_db: f64, rng: &mut Rng) -> bool {
    rng.chance(packet_success_probability(cfg, payload_len, snr_db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SpreadingFactor;

    #[test]
    fn waterfall_shape() {
        let cfg = LoRaConfig::dts_beacon();
        let mid = snr_50_db(&cfg, 20);
        assert!(
            (packet_success_probability(&cfg, 20, mid) - 0.5).abs() < 1e-9,
            "midpoint"
        );
        assert!(packet_success_probability(&cfg, 20, mid + 3.0) > 0.97);
        assert!(packet_success_probability(&cfg, 20, mid - 3.0) < 0.03);
        assert!(packet_success_probability(&cfg, 20, mid + 10.0) > 0.999_99);
        assert!(packet_success_probability(&cfg, 20, mid - 10.0) < 1e-4);
    }

    #[test]
    fn success_is_monotone_in_snr() {
        let cfg = LoRaConfig::dts_beacon();
        let mut prev = 0.0;
        for snr10 in -300..0 {
            let p = packet_success_probability(&cfg, 20, snr10 as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn longer_packets_need_more_snr() {
        let cfg = LoRaConfig::dts_uplink();
        let s10 = snr_50_db(&cfg, 10);
        let s60 = snr_50_db(&cfg, 60);
        let s120 = snr_50_db(&cfg, 120);
        assert!(s10 < s60 && s60 < s120, "{s10} {s60} {s120}");
        // The 10 → 120 byte gap is on the order of 1 dB.
        assert!((0.5..2.5).contains(&(s120 - s10)), "gap {}", s120 - s10);
    }

    #[test]
    fn higher_sf_decodes_weaker_signals() {
        let sf10 = LoRaConfig::dts_beacon();
        let sf12 = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..sf10
        };
        let snr = -17.0;
        assert!(
            packet_success_probability(&sf12, 20, snr) > packet_success_probability(&sf10, 20, snr)
        );
    }

    #[test]
    fn fifty_percent_point_sits_above_threshold() {
        let cfg = LoRaConfig::dts_beacon();
        let mid = snr_50_db(&cfg, 20);
        let thresh = demod_threshold_db(cfg.sf);
        assert!(mid > thresh, "{mid} !> {thresh}");
        assert!(mid - thresh < 2.5, "offset {}", mid - thresh);
    }

    /// Pinned from `tests/props.proptest-regressions` (seed `ad3be80f…`):
    /// the SNR-monotonicity half of the PHY regression at SF7, 9 bytes.
    #[test]
    fn regression_snr_monotonicity_seed() {
        let (len_a, snr) = (9usize, 0.0f64);
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf7,
            ..LoRaConfig::dts_beacon()
        };
        let p_lo = packet_success_probability(&cfg, len_a, snr);
        let p_hi = packet_success_probability(&cfg, len_a, snr + 1.0);
        assert!(p_hi >= p_lo, "{p_hi} < {p_lo}");
        assert!((0.0..=1.0).contains(&p_lo));
    }

    #[test]
    fn draws_match_probability() {
        let cfg = LoRaConfig::dts_beacon();
        let snr = snr_50_db(&cfg, 20) + 1.0;
        let p = packet_success_probability(&cfg, 20, snr);
        let mut rng = Rng::from_seed(42);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| packet_decodes(&cfg, 20, snr, &mut rng))
            .count() as f64
            / n as f64;
        assert!((hits - p).abs() < 0.01, "rate {hits} vs p {p}");
    }
}
