//! LoRa time-on-air (the Semtech AN1200.13 formula).

use crate::params::LoRaConfig;

/// Number of payload symbols for `payload_len` bytes under `cfg`.
pub fn payload_symbols(cfg: &LoRaConfig, payload_len: usize) -> u32 {
    let pl = payload_len as i64;
    let sf = cfg.sf.value() as i64;
    let ih = if cfg.explicit_header { 0 } else { 1 };
    let crc = if cfg.crc_on { 1 } else { 0 };
    let de = if cfg.low_data_rate_optimization() {
        1
    } else {
        0
    };
    let cr = cfg.cr.cr_value() as i64;

    let numerator = 8 * pl - 4 * sf + 28 + 16 * crc - 20 * ih;
    let denominator = 4 * (sf - 2 * de);
    let ceil = if numerator > 0 {
        (numerator + denominator - 1) / denominator
    } else {
        0
    };
    (8 + ceil.max(0) * (cr + 4)) as u32
}

/// Time on air (seconds) of a packet with `payload_len` payload bytes.
pub fn airtime_s(cfg: &LoRaConfig, payload_len: usize) -> f64 {
    let t_sym = cfg.symbol_time_s();
    let t_preamble = (cfg.preamble_symbols as f64 + 4.25) * t_sym;
    let t_payload = payload_symbols(cfg, payload_len) as f64 * t_sym;
    let t = t_preamble + t_payload;
    satiot_obs::invariants::check_non_negative("airtime::airtime_s", t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodingRate, LoRaConfig, SpreadingFactor};

    #[test]
    fn known_airtime_sf10_20_bytes() {
        // SF10/125 kHz/4-5, explicit header, CRC, 8-sym preamble, 20 B:
        // n_payload = 8 + ceil((160-40+28+16)/40)·5 = 8 + ceil(164/40)·5
        //           = 8 + 5·5 = 33 symbols.
        // T = (12.25 + 33) · 8.192 ms = 370.7 ms.
        let cfg = LoRaConfig::dts_beacon();
        assert_eq!(payload_symbols(&cfg, 20), 33);
        let t = airtime_s(&cfg, 20);
        assert!((t - 0.370_688).abs() < 1e-6, "airtime {t}");
    }

    #[test]
    fn known_airtime_sf7_small() {
        // SF7/125/4-5, 10 B: n = 8 + ceil((80-28+28+16)/28)·5 = 8 + ceil(96/28)·5
        //                      = 8 + 4·5 = 28; T = (12.25+28)·1.024 ms = 41.2 ms.
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf7,
            ..LoRaConfig::dts_beacon()
        };
        assert_eq!(payload_symbols(&cfg, 10), 28);
        assert!((airtime_s(&cfg, 10) - 0.041_216).abs() < 1e-6);
    }

    #[test]
    fn airtime_grows_with_payload() {
        let cfg = LoRaConfig::dts_beacon();
        let mut prev = 0.0;
        for len in [0, 10, 20, 60, 120, 255] {
            let t = airtime_s(&cfg, len);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn airtime_grows_with_sf() {
        let mut prev = 0.0;
        for sf in SpreadingFactor::ALL {
            let cfg = LoRaConfig {
                sf,
                ..LoRaConfig::dts_beacon()
            };
            let t = airtime_s(&cfg, 20);
            assert!(t > prev, "sf {sf:?}");
            prev = t;
        }
        // A 20-byte SF12 packet lasts over a second — the "hundreds to
        // thousands of ms" the paper cites for DtS transmissions.
        let sf12 = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..LoRaConfig::dts_beacon()
        };
        assert!(airtime_s(&sf12, 20) > 1.0);
    }

    #[test]
    fn stronger_fec_lengthens_packets() {
        let base = LoRaConfig::dts_beacon();
        let fec = LoRaConfig {
            cr: CodingRate::Cr4_8,
            ..base
        };
        assert!(airtime_s(&fec, 60) > airtime_s(&base, 60));
    }

    #[test]
    fn wider_bandwidth_shortens_packets() {
        let narrow = LoRaConfig::dts_beacon();
        let wide = LoRaConfig {
            bw: Bandwidth::Khz250,
            ..narrow
        };
        assert!((airtime_s(&narrow, 20) / airtime_s(&wide, 20) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ldro_changes_symbol_count() {
        let sf11 = LoRaConfig {
            sf: SpreadingFactor::Sf11,
            ..LoRaConfig::dts_beacon()
        };
        assert!(sf11.low_data_rate_optimization());
        // DE=1: denominator 4(11−2)=36 instead of 44.
        // n = 8 + ceil((8·20−44+28+16)/36)·5 = 8 + ceil(160/36)·5 = 33.
        assert_eq!(payload_symbols(&sf11, 20), 33);
    }

    #[test]
    fn implicit_header_and_no_crc_shorten() {
        let base = LoRaConfig::dts_beacon();
        let bare = LoRaConfig {
            explicit_header: false,
            crc_on: false,
            ..base
        };
        assert!(payload_symbols(&bare, 20) < payload_symbols(&base, 20));
    }

    /// Pinned from `tests/props.proptest-regressions` (seed `ad3be80f…`):
    /// airtime monotonicity at SF7 across the FEC-block ceil boundary
    /// around a 9 → 10 byte payload.
    #[test]
    fn regression_monotonicity_across_ceil_boundary_seed() {
        let (len_a, extra, sf_idx) = (9usize, 1usize, 0usize);
        let cfg = LoRaConfig {
            sf: SpreadingFactor::ALL[sf_idx],
            ..LoRaConfig::dts_beacon()
        };
        let cfg_next = LoRaConfig {
            sf: SpreadingFactor::ALL[sf_idx + 1],
            ..cfg
        };
        assert!(airtime_s(&cfg, len_a + extra) >= airtime_s(&cfg, len_a));
        assert!(airtime_s(&cfg, len_a + 32) > airtime_s(&cfg, len_a));
        assert!(airtime_s(&cfg_next, len_a) > airtime_s(&cfg, len_a));
    }

    /// Exhaustive audit of the ceil boundary: `payload_symbols` must be
    /// non-decreasing byte-by-byte for every SF/CR/header/CRC combination
    /// over the whole 0–255 byte payload range.
    #[test]
    fn payload_symbols_never_decrease() {
        for sf in SpreadingFactor::ALL {
            for cr in [
                CodingRate::Cr4_5,
                CodingRate::Cr4_6,
                CodingRate::Cr4_7,
                CodingRate::Cr4_8,
            ] {
                for (explicit_header, crc_on) in
                    [(true, true), (true, false), (false, true), (false, false)]
                {
                    let cfg = LoRaConfig {
                        sf,
                        cr,
                        explicit_header,
                        crc_on,
                        ..LoRaConfig::dts_beacon()
                    };
                    let mut prev = payload_symbols(&cfg, 0);
                    for len in 1..=255usize {
                        let n = payload_symbols(&cfg, len);
                        assert!(
                            n >= prev,
                            "symbols decreased at sf={sf:?} cr={cr:?} len={len}: {n} < {prev}"
                        );
                        prev = n;
                    }
                }
            }
        }
    }

    #[test]
    fn empty_payload_still_has_header_symbols() {
        let cfg = LoRaConfig::dts_beacon();
        assert!(payload_symbols(&cfg, 0) >= 8);
        assert!(airtime_s(&cfg, 0) > 0.0);
    }
}
