//! LoRa modulation parameters.

/// LoRa spreading factor (chips per symbol = 2^SF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpreadingFactor {
    /// SF7 — fastest, least sensitive.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10 — the workhorse for DtS beacons.
    Sf10,
    /// SF11 (low-data-rate optimisation kicks in at 125 kHz).
    Sf11,
    /// SF12 — slowest, most sensitive.
    Sf12,
}

impl SpreadingFactor {
    /// All factors, ascending.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// Numeric SF value (7–12).
    pub fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Chips per symbol.
    pub fn chips(self) -> u32 {
        1 << self.value()
    }
}

/// LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 62.5 kHz.
    Khz62,
    /// 125 kHz — what the measured DtS constellations use.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// Bandwidth in Hz.
    pub fn hz(self) -> f64 {
        match self {
            Bandwidth::Khz62 => 62_500.0,
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }
}

/// LoRa forward-error-correction coding rate (4/(4+n)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodingRate {
    /// 4/5.
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7.
    Cr4_7,
    /// 4/8 — strongest FEC, often used on noisy DtS links.
    Cr4_8,
}

impl CodingRate {
    /// The `CR` value in the airtime formula (1–4).
    pub fn cr_value(self) -> u32 {
        match self {
            CodingRate::Cr4_5 => 1,
            CodingRate::Cr4_6 => 2,
            CodingRate::Cr4_7 => 3,
            CodingRate::Cr4_8 => 4,
        }
    }

    /// Code rate as a fraction.
    pub fn rate(self) -> f64 {
        4.0 / (4.0 + self.cr_value() as f64)
    }
}

/// A complete LoRa transmission configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoRaConfig {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Bandwidth.
    pub bw: Bandwidth,
    /// Coding rate.
    pub cr: CodingRate,
    /// Preamble length in symbols (typical: 8).
    pub preamble_symbols: u32,
    /// Explicit header present.
    pub explicit_header: bool,
    /// Payload CRC enabled.
    pub crc_on: bool,
}

impl LoRaConfig {
    /// The configuration the measured DtS beacons use: SF10/125 kHz/4-5,
    /// 8-symbol preamble, explicit header, CRC on.
    pub fn dts_beacon() -> Self {
        LoRaConfig {
            sf: SpreadingFactor::Sf10,
            bw: Bandwidth::Khz125,
            cr: CodingRate::Cr4_5,
            preamble_symbols: 8,
            explicit_header: true,
            crc_on: true,
        }
    }

    /// The uplink configuration of Tianqi-class IoT nodes (stronger FEC).
    pub fn dts_uplink() -> Self {
        LoRaConfig {
            cr: CodingRate::Cr4_8,
            ..Self::dts_beacon()
        }
    }

    /// A typical terrestrial LoRaWAN configuration. Rural deployments run
    /// their ADR floor at SF12 (gateways are km away at the cell edge),
    /// which is also what makes Tx the dominant energy consumer in the
    /// paper's Figure 11 despite its tiny time share.
    pub fn terrestrial() -> Self {
        LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..Self::dts_beacon()
        }
    }

    /// Symbol duration in seconds.
    pub fn symbol_time_s(&self) -> f64 {
        self.sf.chips() as f64 / self.bw.hz()
    }

    /// Whether low-data-rate optimisation is mandatory (symbol > 16 ms).
    pub fn low_data_rate_optimization(&self) -> bool {
        self.symbol_time_s() > 0.016
    }

    /// Raw physical bit rate (bits/s) before FEC.
    pub fn bit_rate_bps(&self) -> f64 {
        self.sf.value() as f64 * self.cr.rate() / self.symbol_time_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_values_and_chips() {
        assert_eq!(SpreadingFactor::Sf7.value(), 7);
        assert_eq!(SpreadingFactor::Sf12.chips(), 4096);
        assert_eq!(SpreadingFactor::ALL.len(), 6);
        // Ascending order.
        for w in SpreadingFactor::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn symbol_time_sf10_125khz_is_8_192_ms() {
        let cfg = LoRaConfig::dts_beacon();
        assert!((cfg.symbol_time_s() - 0.008_192).abs() < 1e-9);
        assert!(!cfg.low_data_rate_optimization());
    }

    #[test]
    fn ldro_kicks_in_at_sf11_125khz() {
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf11,
            ..LoRaConfig::dts_beacon()
        };
        assert!(cfg.low_data_rate_optimization());
        // SF12/125: 32.8 ms symbols.
        let cfg12 = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..cfg
        };
        assert!((cfg12.symbol_time_s() - 0.032_768).abs() < 1e-9);
    }

    #[test]
    fn coding_rates() {
        assert_eq!(CodingRate::Cr4_5.cr_value(), 1);
        assert!((CodingRate::Cr4_8.rate() - 0.5).abs() < 1e-12);
        assert!(CodingRate::Cr4_5.rate() > CodingRate::Cr4_8.rate());
    }

    #[test]
    fn bit_rate_sf10_is_about_980bps() {
        // SF10/125 kHz/4-5: 10 bits · 0.8 / 8.192 ms ≈ 976 bps.
        let rate = LoRaConfig::dts_beacon().bit_rate_bps();
        assert!((rate - 976.56).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn bandwidths() {
        assert_eq!(Bandwidth::Khz125.hz(), 125_000.0);
        assert_eq!(Bandwidth::Khz500.hz(), 500_000.0);
        assert!(Bandwidth::Khz62.hz() < Bandwidth::Khz125.hz());
    }
}
