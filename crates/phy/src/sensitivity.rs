//! Demodulation thresholds and receiver sensitivity.

use crate::params::{Bandwidth, SpreadingFactor};

/// Minimum SNR (dB, in the receiver bandwidth) at which the LoRa
/// demodulator achieves its rated sensitivity for a given spreading
/// factor (Semtech SX126x datasheet values).
pub fn demod_threshold_db(sf: SpreadingFactor) -> f64 {
    match sf {
        SpreadingFactor::Sf7 => -7.5,
        SpreadingFactor::Sf8 => -10.0,
        SpreadingFactor::Sf9 => -12.5,
        SpreadingFactor::Sf10 => -15.0,
        SpreadingFactor::Sf11 => -17.5,
        SpreadingFactor::Sf12 => -20.0,
    }
}

/// Receiver sensitivity (dBm): the RSSI at which the SNR equals the
/// demodulation threshold for a front-end with `noise_figure_db`.
pub fn sensitivity_dbm(sf: SpreadingFactor, bw: Bandwidth, noise_figure_db: f64) -> f64 {
    -174.0 + 10.0 * bw.hz().log10() + noise_figure_db + demod_threshold_db(sf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_decrease_2_5db_per_sf() {
        let mut prev = demod_threshold_db(SpreadingFactor::Sf7);
        for sf in &SpreadingFactor::ALL[1..] {
            let t = demod_threshold_db(*sf);
            assert!((prev - t - 2.5).abs() < 1e-12);
            prev = t;
        }
    }

    #[test]
    fn sf10_sensitivity_matches_datasheet_class() {
        // SX126x @ SF10/125 kHz is rated around −132 dBm.
        let s = sensitivity_dbm(SpreadingFactor::Sf10, Bandwidth::Khz125, 6.0);
        assert!((s - (-132.0)).abs() < 0.5, "sensitivity {s}");
    }

    #[test]
    fn sf12_sensitivity_is_about_minus_137() {
        let s = sensitivity_dbm(SpreadingFactor::Sf12, Bandwidth::Khz125, 6.0);
        assert!((s - (-137.0)).abs() < 0.5, "sensitivity {s}");
    }

    #[test]
    fn better_front_end_improves_sensitivity() {
        let a = sensitivity_dbm(SpreadingFactor::Sf10, Bandwidth::Khz125, 6.0);
        let b = sensitivity_dbm(SpreadingFactor::Sf10, Bandwidth::Khz125, 4.5);
        assert!(b < a);
    }
}
