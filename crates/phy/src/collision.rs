//! Collision arithmetic: SINR and the LoRa capture effect.
//!
//! When a satellite's footprint covers thousands of km², many ground
//! nodes can transmit in the same contact window (paper §3.1 and
//! Fig 12b). Overlapping same-SF transmissions are not automatically all
//! lost: LoRa exhibits a *capture effect* — the strongest signal decodes
//! if it exceeds the aggregate of the others by a threshold (≈ 6 dB
//! co-SF). Different SFs are quasi-orthogonal and interfere only as
//! broadband noise (rejection ≈ 16 dB).

use crate::params::SpreadingFactor;

/// Co-SF capture threshold, dB.
pub const CO_SF_CAPTURE_DB: f64 = 6.0;

/// Inter-SF rejection, dB (quasi-orthogonality of distinct SFs).
pub const INTER_SF_REJECTION_DB: f64 = 16.0;

/// One concurrent transmission as seen by a receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// Received power of this transmission, dBm.
    pub rssi_dbm: f64,
    /// Spreading factor of this transmission.
    pub sf: SpreadingFactor,
}

/// Convert dBm to milliwatts.
fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert milliwatts to dBm.
fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.max(1e-300).log10()
}

/// Aggregate interference power (dBm) experienced by a target at
/// `target_sf`, given the other overlapping transmissions. Inter-SF
/// interferers are attenuated by [`INTER_SF_REJECTION_DB`].
pub fn interference_dbm(target_sf: SpreadingFactor, others: &[Overlap]) -> Option<f64> {
    if others.is_empty() {
        return None;
    }
    let total_mw: f64 = others
        .iter()
        .map(|o| {
            let rejection = if o.sf == target_sf {
                0.0
            } else {
                INTER_SF_REJECTION_DB
            };
            dbm_to_mw(o.rssi_dbm - rejection)
        })
        .sum();
    Some(mw_to_dbm(total_mw))
}

/// Signal-to-(interference+noise) ratio (dB) for a target packet.
pub fn sinr_db(
    target_rssi_dbm: f64,
    target_sf: SpreadingFactor,
    others: &[Overlap],
    noise_floor_dbm: f64,
) -> f64 {
    let noise_mw = dbm_to_mw(noise_floor_dbm);
    let interference_mw = interference_dbm(target_sf, others)
        .map(dbm_to_mw)
        .unwrap_or(0.0);
    target_rssi_dbm - mw_to_dbm(noise_mw + interference_mw)
}

/// Does the target survive the collision via capture? True when the
/// target is at least [`CO_SF_CAPTURE_DB`] above the aggregate same-band
/// interference.
pub fn captures(target_rssi_dbm: f64, target_sf: SpreadingFactor, others: &[Overlap]) -> bool {
    match interference_dbm(target_sf, others) {
        None => true,
        Some(i) => target_rssi_dbm - i >= CO_SF_CAPTURE_DB,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SF: SpreadingFactor = SpreadingFactor::Sf10;

    #[test]
    fn lone_packet_always_captures() {
        assert!(captures(-130.0, SF, &[]));
        let s = sinr_db(-120.0, SF, &[], -117.0);
        assert!((s - (-3.0)).abs() < 1e-9);
    }

    #[test]
    fn strong_packet_captures_over_weak() {
        let others = [Overlap {
            rssi_dbm: -130.0,
            sf: SF,
        }];
        assert!(captures(-120.0, SF, &others));
        // And the weak one does not.
        let strong = [Overlap {
            rssi_dbm: -120.0,
            sf: SF,
        }];
        assert!(!captures(-130.0, SF, &strong));
    }

    #[test]
    fn near_equal_packets_destroy_each_other() {
        let a = [Overlap {
            rssi_dbm: -122.0,
            sf: SF,
        }];
        assert!(!captures(-120.0, SF, &a)); // Only 2 dB above.
        let b = [Overlap {
            rssi_dbm: -120.0,
            sf: SF,
        }];
        assert!(!captures(-122.0, SF, &b));
    }

    #[test]
    fn aggregate_interference_sums_in_linear_domain() {
        // Two equal interferers are 3 dB stronger than one.
        let one = interference_dbm(
            SF,
            &[Overlap {
                rssi_dbm: -125.0,
                sf: SF,
            }],
        )
        .unwrap();
        let two = interference_dbm(
            SF,
            &[
                Overlap {
                    rssi_dbm: -125.0,
                    sf: SF,
                },
                Overlap {
                    rssi_dbm: -125.0,
                    sf: SF,
                },
            ],
        )
        .unwrap();
        assert!((two - one - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn different_sf_barely_interferes() {
        let other_sf = [Overlap {
            rssi_dbm: -118.0,
            sf: SpreadingFactor::Sf7,
        }];
        // A same-power co-SF interferer would kill the packet; an SF7 one
        // is rejected by 16 dB and the packet captures.
        assert!(captures(-118.0, SF, &other_sf));
        let same_sf = [Overlap {
            rssi_dbm: -118.0,
            sf: SF,
        }];
        assert!(!captures(-118.0, SF, &same_sf));
    }

    #[test]
    fn sinr_degrades_with_interference() {
        let clean = sinr_db(-120.0, SF, &[], -117.0);
        let busy = sinr_db(
            -120.0,
            SF,
            &[Overlap {
                rssi_dbm: -121.0,
                sf: SF,
            }],
            -117.0,
        );
        assert!(busy < clean);
        // Noise −117 dBm (2.0 fW) + interferer −121 dBm (0.79 fW) sum to
        // −115.5 dBm, so SINR = −120 − (−115.5) ≈ −4.5 dB.
        assert!((busy - (-4.46)).abs() < 0.05, "busy {busy}");
    }

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-150.0, -117.0, -3.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }
}
