//! LEO Doppler penalties for LoRa demodulation.
//!
//! Two distinct effects (Appendix C of the paper lists Doppler as a major
//! beacon-loss factor):
//!
//! 1. **Static offset.** A LEO pass at 400 MHz sweeps roughly ±10 kHz.
//!    LoRa tolerates carrier offsets up to about ±25 % of the bandwidth
//!    (±31 kHz at 125 kHz), so a raw offset alone rarely kills a packet —
//!    but it erodes margin quadratically as it approaches the limit.
//! 2. **Drift rate.** Near closest approach the Doppler *rate* peaks
//!    (≈ 100–300 Hz/s). An SF10–SF12 packet lasts 0.4–1.5 s, during which
//!    the carrier slides across multiple FFT bins (bin width = BW/2^SF =
//!    122 Hz at SF10/125 kHz). Uncompensated, each bin crossed smears
//!    symbol energy and costs SNR. This is the LEO-specific mechanism
//!    that makes high SFs *worse* near zenith, where geometry is
//!    otherwise best.

use crate::airtime::airtime_s;
use crate::params::LoRaConfig;

/// Fraction of the bandwidth beyond which LoRa sync fails outright.
pub const MAX_OFFSET_FRACTION: f64 = 0.25;

/// SNR penalty (dB) per FFT bin crossed during one packet.
const DB_PER_BIN: f64 = 1.4;

/// Cap on the drift penalty — beyond this the packet is effectively gone
/// anyway (the logistic PER curve saturates).
const MAX_DRIFT_PENALTY_DB: f64 = 12.0;

/// Effective SNR penalty (dB) from a static carrier offset of
/// `offset_hz` on a link with bandwidth `bw_hz`. Returns `None` when the
/// offset exceeds the sync limit (packet cannot be received at all).
pub fn offset_penalty_db(offset_hz: f64, bw_hz: f64) -> Option<f64> {
    let frac = (offset_hz / bw_hz).abs();
    if frac > MAX_OFFSET_FRACTION {
        return None;
    }
    // Quadratic erosion: 0 dB at DC, ~2 dB at the sync limit.
    Some(2.0 * (frac / MAX_OFFSET_FRACTION).powi(2))
}

/// FFT bin width (Hz) of the LoRa demodulator for `cfg`.
pub fn bin_width_hz(cfg: &LoRaConfig) -> f64 {
    cfg.bw.hz() / cfg.sf.chips() as f64
}

/// SNR penalty (dB) from a Doppler drift of `rate_hz_s` over the airtime
/// of a `payload_len`-byte packet.
pub fn drift_penalty_db(cfg: &LoRaConfig, payload_len: usize, rate_hz_s: f64) -> f64 {
    let drift_hz = rate_hz_s.abs() * airtime_s(cfg, payload_len);
    let bins = drift_hz / bin_width_hz(cfg);
    // Less than half a bin of drift is absorbed by the demodulator.
    if bins <= 0.5 {
        0.0
    } else {
        ((bins - 0.5) * DB_PER_BIN).min(MAX_DRIFT_PENALTY_DB)
    }
}

/// Total Doppler SNR penalty for a packet; `None` = unreceivable offset.
pub fn total_penalty_db(
    cfg: &LoRaConfig,
    payload_len: usize,
    offset_hz: f64,
    rate_hz_s: f64,
) -> Option<f64> {
    let off = offset_penalty_db(offset_hz, cfg.bw.hz())?;
    Some(off + drift_penalty_db(cfg, payload_len, rate_hz_s))
}

/// Residual fraction of the Doppler left after TLE-based pre-compensation
/// (ephemeris and oscillator error).
pub const COMPENSATION_RESIDUAL: f64 = 0.08;

/// Total Doppler SNR penalty when the transmitter/receiver pre-compensates
/// using ephemeris knowledge (the optimisation the paper calls for): only
/// the residual offset and drift remain, so the sync-loss regime
/// disappears and high-SF packets stop paying the drift tax.
pub fn compensated_penalty_db(
    cfg: &LoRaConfig,
    payload_len: usize,
    offset_hz: f64,
    rate_hz_s: f64,
) -> Option<f64> {
    total_penalty_db(
        cfg,
        payload_len,
        offset_hz * COMPENSATION_RESIDUAL,
        rate_hz_s * COMPENSATION_RESIDUAL,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SpreadingFactor;

    #[test]
    fn leo_offsets_are_tolerated_at_125khz() {
        // ±10 kHz at 125 kHz BW: well inside the 25 % limit.
        let p = offset_penalty_db(10_000.0, 125_000.0).unwrap();
        assert!(p < 0.3, "penalty {p}");
        assert_eq!(offset_penalty_db(0.0, 125_000.0).unwrap(), 0.0);
    }

    #[test]
    fn excessive_offset_fails_sync() {
        assert!(offset_penalty_db(40_000.0, 125_000.0).is_none());
        assert!(offset_penalty_db(-40_000.0, 125_000.0).is_none());
        assert!(offset_penalty_db(31_000.0, 125_000.0).is_some());
    }

    #[test]
    fn bin_width_sf10_is_122hz() {
        let cfg = LoRaConfig::dts_beacon();
        assert!((bin_width_hz(&cfg) - 122.07).abs() < 0.1);
    }

    #[test]
    fn tca_drift_hurts_sf10_but_not_sf7() {
        // 150 Hz/s at closest approach.
        let sf10 = LoRaConfig::dts_beacon();
        let sf7 = LoRaConfig {
            sf: SpreadingFactor::Sf7,
            ..sf10
        };
        let p10 = drift_penalty_db(&sf10, 20, 150.0);
        let p7 = drift_penalty_db(&sf7, 20, 150.0);
        // SF10: 150 Hz/s · 0.37 s ≈ 55 Hz ≈ 0.45 bins → essentially free…
        assert!(p10 < 0.5, "sf10 {p10}");
        // …but SF12 (1.6 s airtime, 30.5 Hz bins) loses several dB.
        let sf12 = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..sf10
        };
        let p12 = drift_penalty_db(&sf12, 20, 150.0);
        assert!(p12 > 3.0, "sf12 {p12}");
        assert!(p7 <= p10 && p10 <= p12);
    }

    #[test]
    fn drift_penalty_is_capped() {
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..LoRaConfig::dts_beacon()
        };
        assert_eq!(drift_penalty_db(&cfg, 255, 5_000.0), MAX_DRIFT_PENALTY_DB);
    }

    #[test]
    fn zero_rate_is_free() {
        let cfg = LoRaConfig::dts_beacon();
        assert_eq!(drift_penalty_db(&cfg, 120, 0.0), 0.0);
    }

    #[test]
    fn total_combines_both() {
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf12,
            ..LoRaConfig::dts_beacon()
        };
        let total = total_penalty_db(&cfg, 20, 10_000.0, 150.0).unwrap();
        let off = offset_penalty_db(10_000.0, cfg.bw.hz()).unwrap();
        let drift = drift_penalty_db(&cfg, 20, 150.0);
        assert!((total - off - drift).abs() < 1e-12);
        assert!(total_penalty_db(&cfg, 20, 50_000.0, 0.0).is_none());
    }

    #[test]
    fn longer_packets_accumulate_more_drift() {
        let cfg = LoRaConfig {
            sf: SpreadingFactor::Sf11,
            ..LoRaConfig::dts_beacon()
        };
        assert!(drift_penalty_db(&cfg, 120, 200.0) > drift_penalty_db(&cfg, 10, 200.0));
    }
}
