//! # satiot-phy
//!
//! Packet-level LoRa PHY models for Direct-to-Satellite IoT links.
//!
//! The paper measures at packet granularity (beacons received or not,
//! uplinks ACKed or not), so this crate models the PHY at the same level:
//! no chirp DSP, but faithful airtime, demodulation thresholds, a
//! calibrated SNR→PER curve, LEO-specific Doppler penalties, and
//! capture-effect collision arithmetic.
//!
//! * [`params`] — spreading factors, bandwidths, coding rates, and the
//!   combined [`params::LoRaConfig`].
//! * [`airtime`] — the standard Semtech airtime formula (preamble +
//!   payload symbols, low-data-rate optimisation).
//! * [`sensitivity`] — per-SF demodulation SNR thresholds and receiver
//!   sensitivity.
//! * [`per`] — packet error rate as a function of SNR margin and packet
//!   length.
//! * [`doppler`] — static-offset and drift-rate penalties: at 400 MHz a
//!   LEO pass sweeps ±~10 kHz with rates that cross several FFT bins
//!   during a high-SF packet, a loss mechanism unique to satellite LoRa.
//! * [`frame`] — the logical wire image of a LoRa frame (header, payload,
//!   CRC-16), encoded/decoded via `bytes`.
//! * [`collision`] — SINR and capture-effect resolution among
//!   overlapping transmissions.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod airtime;
pub mod collision;
pub mod doppler;
pub mod frame;
pub mod params;
pub mod per;
pub mod sensitivity;

pub use airtime::airtime_s;
pub use frame::LoRaFrame;
pub use params::{Bandwidth, CodingRate, LoRaConfig, SpreadingFactor};
pub use per::packet_success_probability;
pub use sensitivity::{demod_threshold_db, sensitivity_dbm};
