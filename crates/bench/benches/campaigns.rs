//! End-to-end campaign throughput: how fast a simulated measurement day
//! runs. These are the numbers that bound full-scale `reproduce_all`.

use criterion::{criterion_group, criterion_main, Criterion};
use satiot_core::prelude::*;
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

fn bench_campaigns(c: &mut Criterion) {
    // Hermetic defaults: batched simulate kernels, ephemeris grids on.
    let opts = RunOptions::default();
    let mut group = c.benchmark_group("campaigns");
    group.sample_size(10);

    group.bench_function("passive_hk_1day", |b| {
        b.iter(|| {
            #[allow(deprecated)] // bench pins the literal constructor
            let mut cfg = PassiveConfig::quick(1.0);
            cfg.sites.retain(|s| s.code == "HK");
            cfg.parallel = false;
            PassiveCampaign::new(cfg).run(&opts).unwrap()
        })
    });

    // The sweep-pool payoff: the same three-site day, sharded one
    // *(site × satellite)* prediction task at a time across the work
    // queue versus the legacy one-thread-per-site driver. The cache is
    // cleared inside each iteration so both measure cold-cache sweeps.
    group.bench_function("passive_multisite_pool", |b| {
        b.iter(|| {
            satiot_core::sweep::clear();
            #[allow(deprecated)] // bench pins the literal constructor
            let mut cfg = PassiveConfig::quick(1.0);
            cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ" | "SH"));
            cfg.parallel = true;
            PassiveCampaign::new(cfg).run(&opts).unwrap()
        })
    });

    #[allow(deprecated)] // The legacy driver is the bench baseline.
    group.bench_function("passive_multisite_site_threads", |b| {
        b.iter(|| {
            satiot_core::sweep::clear();
            #[allow(deprecated)] // bench pins the literal constructor
            let mut cfg = PassiveConfig::quick(1.0);
            cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ" | "SH"));
            cfg.parallel = true;
            PassiveCampaign::new(cfg).run_with_site_threads()
        })
    });

    // Warm-cache repeat of the pooled sweep: what every campaign after
    // the first costs inside `reproduce_all` and the ablation binaries
    // (prediction amortised away; only simulation remains). The legacy
    // driver pays full prediction every run regardless of core count.
    group.bench_function("passive_multisite_pool_warm", |b| {
        b.iter(|| {
            #[allow(deprecated)] // bench pins the literal constructor
            let mut cfg = PassiveConfig::quick(1.0);
            cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ" | "SH"));
            cfg.parallel = true;
            PassiveCampaign::new(cfg).run(&opts).unwrap()
        })
    });

    // Same warm sweep with the SoA batch kernels disabled: the
    // simulate-phase speedup `BENCH_simulate.json` commits is the gap
    // between this and `passive_multisite_pool_warm`.
    group.bench_function("passive_multisite_pool_warm_scalar", |b| {
        b.iter(|| {
            #[allow(deprecated)] // bench pins the literal constructor
            let mut cfg = PassiveConfig::quick(1.0);
            cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ" | "SH"));
            cfg.parallel = true;
            PassiveCampaign::new(cfg)
                .run(&opts.with_batch(BatchMode::Off))
                .unwrap()
        })
    });

    group.bench_function("active_1day", |b| {
        b.iter(|| {
            ActiveCampaign::new(ActiveConfig::quick(1.0))
                .run(&opts)
                .unwrap()
        })
    });

    group.bench_function("terrestrial_30day", |b| {
        b.iter(|| {
            TerrestrialCampaign::new(TerrestrialConfig {
                days: 30.0,
                ..Default::default()
            })
            .run()
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
