//! Ephemeris-grid performance: build cost, interpolation vs direct
//! propagation, and the headline multi-site predict-phase speedup (one
//! shared grid serving all eight measurement sites).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use satiot_orbit::elements::Elements;
use satiot_orbit::ephemeris::EphemerisGrid;
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::PassPredictor;
use satiot_orbit::time::JulianDate;
use std::sync::Arc;

/// The eight measurement-site locations (Table 1 of the paper).
fn sites() -> Vec<Geodetic> {
    [
        (40.4406, -79.9959, 0.3),
        (51.5074, -0.1278, 0.02),
        (31.2304, 121.4737, 0.01),
        (23.1291, 113.2644, 0.02),
        (-33.8688, 151.2093, 0.02),
        (22.3193, 114.1694, 0.05),
        (28.6820, 115.8579, 0.03),
        (38.4872, 106.2309, 1.1),
    ]
    .iter()
    .map(|&(lat, lon, alt)| Geodetic::from_degrees(lat, lon, alt))
    .collect()
}

fn bench_ephemeris(c: &mut Criterion) {
    let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let leo = Elements::circular(860.0, 45.0, epoch).to_sgp4().unwrap();
    let sites = sites();
    let grid = Arc::new(EphemerisGrid::build(&leo, epoch, epoch + 1.0));

    c.bench_function("grid_build_1day", |b| {
        b.iter(|| EphemerisGrid::build(black_box(&leo), epoch, epoch + 1.0))
    });

    c.bench_function("grid_state_at", |b| {
        let mut k = 0u64;
        b.iter(|| {
            // Walk the window so every iteration hits a fresh segment.
            k = (k + 1) % 86_000;
            grid.state_at(black_box(epoch.plus_seconds(k as f64)))
        })
    });

    // The A/B the grid exists for: predicting one satellite's passes
    // over all eight sites, re-propagating per site vs interpolating
    // from one shared grid (grid build cost included via amortisation —
    // it is rebuilt every iteration to keep the comparison honest).
    c.bench_function("predict_8sites_direct", |b| {
        b.iter(|| {
            sites
                .iter()
                .map(|&s| {
                    PassPredictor::new(leo.clone(), s, 0.0)
                        .passes(black_box(epoch), epoch + 1.0)
                        .len()
                })
                .sum::<usize>()
        })
    });

    c.bench_function("predict_8sites_ephemeris", |b| {
        b.iter(|| {
            let grid = Arc::new(EphemerisGrid::build(&leo, epoch, epoch + 1.0));
            sites
                .iter()
                .map(|&s| {
                    PassPredictor::new(leo.clone(), s, 0.0)
                        .with_ephemeris(Arc::clone(&grid))
                        .passes(black_box(epoch), epoch + 1.0)
                        .len()
                })
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_ephemeris);
criterion_main!(benches);
