//! Performance of the packet-level PHY and channel models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::Weather;
use satiot_phy::airtime::airtime_s;
use satiot_phy::frame::LoRaFrame;
use satiot_phy::params::{CodingRate, LoRaConfig};
use satiot_phy::per::packet_success_probability;
use satiot_sim::Rng;

fn bench_phy(c: &mut Criterion) {
    let cfg = LoRaConfig::dts_beacon();
    let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);

    c.bench_function("airtime", |b| {
        b.iter(|| airtime_s(black_box(&cfg), black_box(30)))
    });

    c.bench_function("per_curve", |b| {
        b.iter(|| packet_success_probability(black_box(&cfg), black_box(30), black_box(-13.5)))
    });

    c.bench_function("link_budget_sample", |b| {
        let mut rng = Rng::from_seed(4);
        b.iter(|| {
            budget.sample(
                black_box(1_500.0),
                black_box(0.4),
                Weather::Sunny,
                black_box(-1.2),
                &mut rng,
            )
        })
    });

    c.bench_function("frame_encode_decode_30B", |b| {
        let payload = vec![0xA5u8; 30];
        b.iter(|| {
            let frame = LoRaFrame::new(payload.clone(), CodingRate::Cr4_5);
            let wire = frame.encode();
            LoRaFrame::decode(black_box(wire)).unwrap()
        })
    });
}

criterion_group!(benches, bench_phy);
criterion_main!(benches);
