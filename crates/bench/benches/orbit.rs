//! Performance of the orbital-mechanics substrate: SGP4 initialisation,
//! propagation, frame conversion, and pass prediction. Campaign cost is
//! dominated by these paths (millions of propagations per site-month).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use satiot_orbit::elements::Elements;
use satiot_orbit::frames::{teme_to_ecef, Geodetic};
use satiot_orbit::pass::PassPredictor;
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::tle::Tle;
use satiot_orbit::topo::Observer;

const L1: &str = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87";
const L2: &str = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058";

fn bench_orbit(c: &mut Criterion) {
    let tle = Tle::parse_lines(L1, L2).unwrap();
    let sgp4 = Sgp4::new(&tle).unwrap();
    let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let leo = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
    let hk = Geodetic::from_degrees(22.3193, 114.1694, 0.05);
    let observer = Observer::new(hk);

    c.bench_function("tle_parse", |b| {
        b.iter(|| Tle::parse_lines(black_box(L1), black_box(L2)).unwrap())
    });

    c.bench_function("sgp4_init", |b| {
        b.iter(|| Sgp4::new(black_box(&tle)).unwrap())
    });

    c.bench_function("sgp4_propagate", |b| {
        let mut t = 0.0;
        b.iter(|| {
            // Cycle within one day: this element set's drag makes it decay
            // after a few hundred days, which is not what we are timing.
            t = (t + 0.1) % 1_440.0;
            sgp4.propagate(black_box(t)).unwrap()
        })
    });

    c.bench_function("teme_to_ecef", |b| {
        let state = sgp4.propagate(42.0).unwrap();
        let when = epoch.plus_minutes(42.0);
        b.iter(|| teme_to_ecef(black_box(&state), black_box(when)))
    });

    c.bench_function("look_angles", |b| {
        let state = leo.propagate(17.0).unwrap();
        let when = epoch.plus_minutes(17.0);
        b.iter(|| observer.look_at(black_box(&state), black_box(when)))
    });

    c.bench_function("pass_prediction_1day", |b| {
        b.iter(|| {
            let predictor = PassPredictor::new(leo.clone(), hk, 0.0);
            predictor.passes(black_box(epoch), black_box(epoch + 1.0))
        })
    });
}

criterion_group!(benches, bench_orbit);
criterion_main!(benches);
