//! Performance of the discrete-event engine and RNG — the inner loop of
//! every campaign.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use satiot_sim::{Engine, EventQueue, Rng, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Rng::from_seed(1);
        b.iter(|| black_box(rng.next_u64()))
    });

    c.bench_function("rng_normal", |b| {
        let mut rng = Rng::from_seed(2);
        b.iter(|| black_box(rng.normal(0.0, 1.0)))
    });

    c.bench_function("rng_rician", |b| {
        let mut rng = Rng::from_seed(3);
        b.iter(|| black_box(rng.rician_power_gain(5.0)))
    });

    c.bench_function("queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u32 {
                // Reverse-ish order stresses the heap.
                q.push(SimTime::from_secs(((i * 7919) % 1_000) as f64), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e as u64;
            }
            black_box(sum)
        })
    });

    c.bench_function("engine_churn_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            engine.schedule_in(1.0, 0);
            let mut count = 0u32;
            engine.run_to_exhaustion(|eng, _, n| {
                count += 1;
                if n < 9_999 {
                    eng.schedule_in(1.0, n + 1);
                }
            });
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
