//! Campaign runners at the configured scale.

use satiot_core::active::{ActiveCampaign, ActiveConfig, ActiveResults};
use satiot_core::passive::{PassiveCampaign, PassiveConfig, PassiveResults};
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig, TerrestrialResults};

/// Campaign scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Truncated campaigns for smoke runs (CI, benches).
    Quick,
    /// The paper's full campaign dimensions.
    Full,
}

impl Scale {
    /// Read the scale from `SATIOT_SCALE` (default: full).
    pub fn from_env() -> Scale {
        match std::env::var("SATIOT_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Per-site cap on passive campaign days.
    pub fn passive_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => f64::INFINITY,
        }
    }

    /// Active campaign length, days (paper: one month).
    pub fn active_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => 30.0,
        }
    }

    /// Days used for the theoretical-availability analysis (Fig 3a).
    pub fn availability_days(self) -> u32 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 14,
        }
    }
}

/// Run the passive campaign at this scale.
///
/// The scaled defaults are always valid, so a rejected config is a bug;
/// abort with the typed error rather than returning a `Result` every
/// bench binary would immediately unwrap.
pub fn run_passive(scale: Scale) -> PassiveResults {
    let cfg = PassiveConfig {
        max_days: scale.passive_days(),
        ..Default::default()
    };
    PassiveCampaign::new(cfg)
        .run()
        .unwrap_or_else(|e| panic!("passive campaign rejected its scaled config: {e}"))
}

/// Run the default active campaign at this scale.
pub fn run_active(scale: Scale) -> ActiveResults {
    run_active_with(scale, |_| {})
}

/// Run an active campaign with config tweaks applied on top of the
/// scaled defaults.
pub fn run_active_with<F: FnOnce(&mut ActiveConfig)>(scale: Scale, tweak: F) -> ActiveResults {
    let mut cfg = ActiveConfig::quick(scale.active_days());
    tweak(&mut cfg);
    ActiveCampaign::new(cfg)
        .run()
        .unwrap_or_else(|e| panic!("active campaign rejected its scaled config: {e}"))
}

/// Run the terrestrial baseline at this scale.
pub fn run_terrestrial(scale: Scale) -> TerrestrialResults {
    run_terrestrial_with(scale, |_| {})
}

/// Run a terrestrial campaign with config tweaks.
pub fn run_terrestrial_with<F: FnOnce(&mut TerrestrialConfig)>(
    scale: Scale,
    tweak: F,
) -> TerrestrialResults {
    let mut cfg = TerrestrialConfig {
        days: scale.active_days(),
        ..Default::default()
    };
    tweak(&mut cfg);
    TerrestrialCampaign::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_dimensions() {
        assert_eq!(Scale::Quick.passive_days(), 5.0);
        assert_eq!(Scale::Quick.active_days(), 5.0);
        assert!(Scale::Full.passive_days().is_infinite());
        assert_eq!(Scale::Full.active_days(), 30.0);
        assert!(Scale::Full.availability_days() > Scale::Quick.availability_days());
    }

    #[test]
    fn tweaks_apply() {
        // A one-day campaign with a tweak reaches the tweak.
        let r = run_active_with(Scale::Quick, |c| {
            c.days = 0.5;
            c.nodes = 1;
        });
        // 1 node × 48/day × 0.5 day, inclusive of both endpoints = 25.
        assert_eq!(r.sent.len(), 25);
    }
}
