//! Campaign runners at the configured scale.
//!
//! The [`Scale`] type itself now lives in `satiot_core::options` (one
//! `SATIOT_*` parsing site for the whole workspace); it is re-exported
//! here so the experiment binaries keep their one-line imports. Every
//! runner resolves the rest of its options through
//! [`RunOptions::from_env`] and installs them process-wide with
//! [`RunOptions::apply`], so `SATIOT_THREADS` / `SATIOT_EPHEMERIS` /
//! `SATIOT_BATCH` / `SATIOT_METRICS` all keep working for the bench
//! fleet without any binary touching the environment directly.

pub use satiot_core::options::Scale;
use satiot_core::prelude::*;
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig, TerrestrialResults};

/// Run the passive campaign at this scale.
///
/// The scaled defaults are always valid, so a rejected config is a bug;
/// abort with the typed error rather than returning a `Result` every
/// bench binary would immediately unwrap.
pub fn run_passive(scale: Scale) -> PassiveResults {
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let cfg = PassiveConfig {
        max_days: scale.passive_days(),
        ..Default::default()
    };
    PassiveCampaign::new(cfg)
        .run(&opts)
        .unwrap_or_else(|e| panic!("passive campaign rejected its scaled config: {e}"))
}

/// Run the default active campaign at this scale.
pub fn run_active(scale: Scale) -> ActiveResults {
    run_active_with(scale, |_| {})
}

/// Run an active campaign with config tweaks applied on top of the
/// scaled defaults.
pub fn run_active_with<F: FnOnce(&mut ActiveConfig)>(scale: Scale, tweak: F) -> ActiveResults {
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let mut cfg = ActiveConfig::quick(scale.active_days());
    tweak(&mut cfg);
    ActiveCampaign::new(cfg)
        .run(&opts)
        .unwrap_or_else(|e| panic!("active campaign rejected its scaled config: {e}"))
}

/// Run the terrestrial baseline at this scale.
pub fn run_terrestrial(scale: Scale) -> TerrestrialResults {
    run_terrestrial_with(scale, |_| {})
}

/// Run a terrestrial campaign with config tweaks.
pub fn run_terrestrial_with<F: FnOnce(&mut TerrestrialConfig)>(
    scale: Scale,
    tweak: F,
) -> TerrestrialResults {
    let mut cfg = TerrestrialConfig {
        days: scale.active_days(),
        ..Default::default()
    };
    tweak(&mut cfg);
    TerrestrialCampaign::new(cfg)
        .run()
        .unwrap_or_else(|e| panic!("terrestrial campaign rejected its scaled config: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweaks_apply() {
        // A one-day campaign with a tweak reaches the tweak.
        let r = run_active_with(Scale::Quick, |c| {
            c.days = 0.5;
            c.nodes = 1;
        });
        // 1 node × 48/day × 0.5 day, inclusive of both endpoints = 25.
        assert_eq!(r.sent.len(), 25);
    }
}
