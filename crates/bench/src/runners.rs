//! Campaign runners at the configured scale.
//!
//! The [`Scale`] type itself now lives in `satiot_core::options` (one
//! `SATIOT_*` parsing site for the whole workspace); it is re-exported
//! here so the experiment binaries keep their one-line imports. Every
//! runner resolves the rest of its options through
//! [`RunOptions::from_env`] and installs them process-wide with
//! [`RunOptions::apply`], so `SATIOT_THREADS` / `SATIOT_EPHEMERIS` /
//! `SATIOT_BATCH` / `SATIOT_METRICS` all keep working for the bench
//! fleet without any binary touching the environment directly.
//!
//! ## Scenario files
//!
//! `SATIOT_SCENARIO=<path>` points every runner at a `.scenario.json`
//! file: the runner loads it through [`ScenarioSpec::from_file`],
//! resolves it with [`ScenarioSpec::build`], and derives its campaign
//! configuration from the resolved scenario instead of the compiled-in
//! defaults. Fields the scenario leaves unset (`max_days` in
//! particular) keep the scaled defaults, so `SATIOT_SCALE=quick` still
//! truncates a scenario-driven smoke run. A scenario that fails to
//! parse, validate, or resolve aborts the binary with the typed
//! [`ScenarioError`] — a mis-spelled scenario must never silently fall
//! back to the compiled-in campaign.

pub use satiot_core::options::Scale;
use satiot_core::prelude::*;
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig, TerrestrialResults};

/// Load and resolve the `SATIOT_SCENARIO` override, if any. Aborts on a
/// scenario error: a broken scenario file must not silently degrade to
/// the compiled-in campaign.
pub fn scenario_override(opts: &RunOptions) -> Option<ResolvedScenario> {
    opts.scenario.map(|path| {
        ScenarioSpec::from_file(path)
            .and_then(|spec| spec.build())
            .unwrap_or_else(|e| panic!("SATIOT_SCENARIO={path}: {e}"))
    })
}

/// Run the passive campaign at this scale.
///
/// The scaled defaults are always valid, so a rejected config is a bug;
/// abort with the typed error rather than returning a `Result` every
/// bench binary would immediately unwrap.
pub fn run_passive(scale: Scale) -> PassiveResults {
    let opts = RunOptions::from_env().with_scale(scale).apply();
    // The compiled-in default is itself a scenario — the paper's full
    // passive campaign — so every passive binary goes through
    // `ScenarioSpec::build()` whether or not `SATIOT_SCENARIO` is set.
    let scenario = scenario_override(&opts).unwrap_or_else(|| {
        ScenarioSpec::paper_passive()
            .build()
            .expect("builtin paper scenario resolves")
    });
    let mut cfg = PassiveConfig::from_scenario(&scenario);
    if scenario.max_days.is_none() {
        cfg.max_days = scale.passive_days();
    }
    PassiveCampaign::new(cfg)
        .run(&opts)
        .unwrap_or_else(|e| panic!("passive campaign rejected its scaled config: {e}"))
}

/// Run the default active campaign at this scale.
pub fn run_active(scale: Scale) -> ActiveResults {
    run_active_with(scale, |_| {})
}

/// Run an active campaign with config tweaks applied on top of the
/// scaled defaults (and on top of the `SATIOT_SCENARIO` override, when
/// one is set — the binary's tweaks win).
pub fn run_active_with<F: FnOnce(&mut ActiveConfig)>(scale: Scale, tweak: F) -> ActiveResults {
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let mut cfg = match scenario_override(&opts) {
        Some(scenario) => {
            let mut cfg = ActiveConfig::from_scenario(&scenario);
            if scenario.max_days.is_none() {
                cfg.days = scale.active_days();
            }
            cfg
        }
        None => ActiveConfig::quick(scale.active_days()),
    };
    tweak(&mut cfg);
    ActiveCampaign::new(cfg)
        .run(&opts)
        .unwrap_or_else(|e| panic!("active campaign rejected its scaled config: {e}"))
}

/// Run the terrestrial baseline at this scale.
pub fn run_terrestrial(scale: Scale) -> TerrestrialResults {
    run_terrestrial_with(scale, |_| {})
}

/// Run a terrestrial campaign with config tweaks (applied on top of the
/// `SATIOT_SCENARIO` override, when one is set).
pub fn run_terrestrial_with<F: FnOnce(&mut TerrestrialConfig)>(
    scale: Scale,
    tweak: F,
) -> TerrestrialResults {
    let opts = RunOptions::from_env().with_scale(scale);
    let mut cfg = match scenario_override(&opts) {
        Some(scenario) => {
            let mut cfg = TerrestrialConfig::from_scenario(&scenario);
            if scenario.max_days.is_none() {
                cfg.days = scale.active_days();
            }
            cfg
        }
        None => TerrestrialConfig {
            days: scale.active_days(),
            ..Default::default()
        },
    };
    tweak(&mut cfg);
    TerrestrialCampaign::new(cfg)
        .run()
        .unwrap_or_else(|e| panic!("terrestrial campaign rejected its scaled config: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweaks_apply() {
        // A one-day campaign with a tweak reaches the tweak.
        let r = run_active_with(Scale::Quick, |c| {
            c.days = 0.5;
            c.nodes = 1;
        });
        // 1 node × 48/day × 0.5 day, inclusive of both endpoints = 25.
        assert_eq!(r.sent.len(), 25);
    }
}
