//! Report formatters: one function per paper table/figure.
//!
//! Each function takes campaign results and renders the same rows or
//! series the paper reports, so a binary is just `run campaign → print
//! report`. All functions are pure formatting — no simulation here.

use satiot_core::active::ActiveResults;
use satiot_core::passive::{theoretical_daily_hours, PassiveResults};
use satiot_econ::{
    crossover_month, satellite_cost, terrestrial_cost, Deployment, SatellitePricing,
    TerrestrialPricing,
};
use satiot_energy::battery::Battery;
use satiot_energy::profile::{
    PowerProfile, SatNodeDeploymentProfile, SatNodeMode, SatNodeProfile,
    TerrestrialDeploymentProfile, TerrestrialMode, TerrestrialProfile,
};
use satiot_measure::latency::LatencyBreakdown;
use satiot_measure::reliability::{
    attempts_distribution, reliability_by, reliability_per_window, share_of_windows_above,
    Reliability,
};
use satiot_measure::stats::{cdf_points, Histogram, Summary};
use satiot_measure::table::{num, pct, render_series, Table};
use satiot_orbit::elements::footprint_area_km2;
use satiot_scenarios::constellations::all_constellations;
use satiot_scenarios::sites::{availability_sites, measurement_sites};
use satiot_terrestrial::campaign::TerrestrialResults;

/// The four constellation labels in the paper's order.
pub const CONSTELLATIONS: [&str; 4] = ["Tianqi", "FOSSA", "PICO", "CSTP"];

/// Table 1 — dataset overview: per-city station counts, start month, and
/// collected trace counts.
pub fn table1(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Table 1: Dataset overview (simulated campaign)",
        &[
            "City",
            "# GS",
            "Start",
            "# Traces (paper)",
            "# Traces (ours)",
        ],
    );
    let paper: &[(&str, &str, u32)] = &[
        ("PGH", "2025/02", 15_612),
        ("LDN", "2025/02", 799),
        ("SH", "2024/10", 2_731),
        ("GZ", "2024/09", 18_488),
        ("SYD", "2025/01", 15_258),
        ("HK", "2024/09", 31_330),
        ("NC", "2024/11", 328),
        ("YC", "2024/09", 37_198),
    ];
    let mut total_ours = 0usize;
    for site in measurement_sites() {
        let (_, start, paper_count) = paper
            .iter()
            .find(|(c, _, _)| *c == site.code)
            .expect("site in paper table");
        let ours = passive.traces.by_site(site.code).count();
        total_ours += ours;
        t.row(&[
            site.code.to_string(),
            site.station_count.to_string(),
            start.to_string(),
            paper_count.to_string(),
            ours.to_string(),
        ]);
    }
    t.row(&[
        "TOTAL".into(),
        "27".into(),
        String::new(),
        "121744".into(),
        total_ours.to_string(),
    ]);
    let mut out = t.render();
    // Extended cross-tab (not in the paper, derivable from its dataset):
    // where each constellation's traces come from.
    let mut xt = Table::new(
        "Table 1 (extended): traces by site x constellation",
        &["City", "Tianqi", "FOSSA", "PICO", "CSTP"],
    );
    for site in measurement_sites() {
        let mut cells = vec![site.code.to_string()];
        for c in CONSTELLATIONS {
            let n = passive
                .traces
                .by_site(site.code)
                .filter(|tr| tr.constellation == c)
                .count();
            cells.push(n.to_string());
        }
        xt.row(&cells);
    }
    out.push('\n');
    out.push_str(&xt.render());
    out
}

/// Table 2 — system expenditure comparison.
pub fn table2() -> String {
    let d = Deployment::paper_farm();
    let sat = satellite_cost(&SatellitePricing::default(), &d);
    let terr = terrestrial_cost(&TerrestrialPricing::default(), &d);
    let per_sensor_sat =
        satellite_cost(&SatellitePricing::default(), &Deployment { nodes: 1, ..d });
    let mut t = Table::new(
        "Table 2: System expenditure comparison (USD)",
        &[
            "Network",
            "Device cost",
            "Infrastructure",
            "Operational/month",
        ],
    );
    t.row_str(&[
        "Terrestrial IoT",
        "$35 per unit",
        "$219 per gateway",
        "$4.9 per month",
    ]);
    t.row(&[
        "Satellite IoT".into(),
        "$220 per unit".into(),
        "-".into(),
        format!("${} per month/sensor", num(per_sensor_sat.monthly_usd, 2)),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\nFarm deployment (3 nodes): satellite ${:.0} upfront + ${:.2}/mo, \
         terrestrial ${:.0} upfront + ${:.2}/mo\n",
        sat.device_usd + sat.infrastructure_usd,
        sat.monthly_usd,
        terr.device_usd + terr.infrastructure_usd,
        terr.monthly_usd,
    ));
    match crossover_month(&sat, &terr) {
        Some(m) => out.push_str(&format!(
            "Terrestrial TCO overtakes satellite after {:.1} months.\n",
            m
        )),
        None => out.push_str("No TCO crossover within the model.\n"),
    }
    out
}

/// Table 3 — constellation overview.
pub fn table3(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Table 3: Overview of measured constellations",
        &[
            "SNO",
            "Region",
            "# SATs",
            "Altitude (km)",
            "Footprint (km^2)",
            "Incl.",
            "DtS freq (MHz)",
            "Traces (paper)",
            "Traces (ours)",
        ],
    );
    let paper_traces = [
        ("Tianqi", 108_767),
        ("FOSSA", 2_715),
        ("PICO", 3_186),
        ("CSTP", 3_766),
    ];
    for spec in all_constellations() {
        for (i, shell) in spec.shells.iter().enumerate() {
            let mid_alt = 0.5 * (shell.alt_lo_km + shell.alt_hi_km);
            let footprint = footprint_area_km2(mid_alt, 0.0);
            let first = i == 0;
            let ours = passive.traces.by_constellation(spec.name).count();
            let paper = paper_traces
                .iter()
                .find(|(n, _)| *n == spec.name)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            t.row(&[
                if first {
                    spec.name.to_string()
                } else {
                    String::new()
                },
                if first {
                    spec.region.to_string()
                } else {
                    String::new()
                },
                shell.count.to_string(),
                format!("{:.1}-{:.1}", shell.alt_lo_km, shell.alt_hi_km),
                format!("{:.2e}", footprint),
                format!("{:.2}°", shell.inclination_deg),
                if first {
                    format!("{}", spec.dts_frequency_mhz)
                } else {
                    String::new()
                },
                if first {
                    paper.to_string()
                } else {
                    String::new()
                },
                if first {
                    ours.to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    t.render()
}

/// Figure 3a — theoretical daily presence duration per constellation
/// across the four availability cities.
pub fn fig3a(days: u32) -> String {
    let mut t = Table::new(
        "Fig 3a: Daily satellite presence (theoretical, hours/day)",
        &["Constellation", "HK", "SYD", "LDN", "PGH"],
    );
    let sites = availability_sites();
    for spec in all_constellations() {
        let mut cells = vec![format!("{} ({} sats)", spec.name, spec.sat_count())];
        for code in ["HK", "SYD", "LDN", "PGH"] {
            let site = sites.iter().find(|s| s.code == code).expect("site");
            let hours = theoretical_daily_hours(&spec, site, days);
            let mean = hours.iter().sum::<f64>() / hours.len().max(1) as f64;
            cells.push(num(mean, 1));
        }
        t.row(&cells);
    }
    let mut out = t.render();
    out.push_str("\nPaper: FOSSA (3 sats) 1.1-3.0 h, PICO (9) ~5.7 h, Tianqi 13.4-19.1 h/day.\n");
    out
}

/// Figure 3b — beacon RSSI distribution per constellation.
pub fn fig3b(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Fig 3b: Beacon signal strength per constellation",
        &[
            "Constellation",
            "n",
            "RSSI mean",
            "RSSI p10",
            "RSSI p90",
            "SNR mean (dB)",
            "SNR p90",
        ],
    );
    for c in CONSTELLATIONS {
        let rssi = passive.traces.rssi_of(c);
        let snr: Vec<f64> = passive
            .traces
            .by_constellation(c)
            .map(|tr| tr.snr_db)
            .collect();
        let s = Summary::of(&rssi);
        let sn = Summary::of(&snr);
        t.row(&[
            c.to_string(),
            s.n.to_string(),
            num(s.mean, 1),
            num(s.p10, 1),
            num(s.p90, 1),
            num(sn.mean, 1),
            num(sn.p90, 1),
        ]);
    }
    let mut out = t.render();
    out.push_str("\nPaper: signals typically arrive at -140 to -110 dBm.\n");
    out
}

/// Figure 3c — Tianqi RSSI vs. slant distance.
pub fn fig3c(passive: &PassiveResults) -> String {
    let bins: &[(f64, f64)] = &[
        (500.0, 1_000.0),
        (1_000.0, 1_500.0),
        (1_500.0, 2_000.0),
        (2_000.0, 2_500.0),
        (2_500.0, 3_500.0),
    ];
    let mut t = Table::new(
        "Fig 3c: Tianqi signal strength vs. distance",
        &["Distance (km)", "n", "RSSI mean (dBm)", "RSSI p90"],
    );
    for (lo, hi) in bins {
        let rssi: Vec<f64> = passive
            .traces
            .by_constellation("Tianqi")
            .filter(|tr| tr.distance_km >= *lo && tr.distance_km < *hi)
            .map(|tr| tr.rssi_dbm)
            .collect();
        let s = Summary::of(&rssi);
        t.row(&[
            format!("{lo:.0}-{hi:.0}"),
            s.n.to_string(),
            num(s.mean, 1),
            num(s.p90, 1),
        ]);
    }
    let mut out = t.render();
    out.push_str("\nPaper: RSSI decreases with distance (power fading over the slant path).\n");
    out
}

/// Figure 3d — per-contact beacon reception ratio by weather (Tianqi).
pub fn fig3d(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Fig 3d: Tianqi beacon reception per contact, by weather",
        &["Weather", "contacts", "mean ratio", "median", "p90"],
    );
    for (weather, ratios) in passive.reception_ratio_by_weather("Tianqi") {
        let s = Summary::of(&ratios);
        t.row(&[
            weather.to_string(),
            s.n.to_string(),
            pct(s.mean),
            pct(s.median),
            pct(s.p90),
        ]);
    }
    let mut out = t.render();
    let groups = passive.reception_ratio_by_weather("Tianqi");
    let find = |label: &str| -> Vec<f64> {
        groups
            .iter()
            .find(|(w, _)| *w == label)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let ks = satiot_measure::stats::ks_statistic(&find("sunny"), &find("rainy"));
    out.push_str(&format!(
        "\nKS distance sunny vs rainy: {ks:.3} (the weather split is a real\n\
         distributional shift, not sampling noise).\n"
    ));
    out.push_str("Paper: >50% of beacons are dropped even on sunny days; rain is worse.\n");
    out
}

/// Figure 4a — theoretical vs. effective contact durations.
pub fn fig4a(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Fig 4a: Contact-window durations, theoretical vs effective (min)",
        &[
            "Constellation",
            "windows",
            "theo mean",
            "eff mean",
            "shorter by",
            "paper",
        ],
    );
    for c in CONSTELLATIONS {
        let s = passive.contact_stats_covered(c, &[]);
        t.row(&[
            c.to_string(),
            s.total_windows.to_string(),
            num(s.theoretical_min.mean, 1),
            num(s.effective_min.mean, 1),
            pct(s.duration_shrink),
            "73.7-89.2%".to_string(),
        ]);
    }
    t.render()
}

/// Figure 4b — contact intervals and daily-duration shrink.
pub fn fig4b(passive: &PassiveResults) -> String {
    let mut t = Table::new(
        "Fig 4b: Inter-contact intervals, theoretical vs effective (min)",
        &[
            "Constellation",
            "theo gap",
            "eff gap",
            "expansion",
            "paper exp",
            "daily shrink",
            "paper shrink",
        ],
    );
    for c in CONSTELLATIONS {
        let s = passive.contact_stats(c, &[]);
        t.row(&[
            c.to_string(),
            num(s.theoretical_interval_min.mean, 1),
            num(s.effective_interval_min.mean, 1),
            format!("{:.1}x", s.interval_expansion()),
            "6.1-44.9x".to_string(),
            pct(s.duration_shrink),
            "85.7-92.2%".to_string(),
        ]);
    }
    let mut out = t.render();
    let tianqi = passive.contact_stats("Tianqi", &[]);
    out.push_str(&format!(
        "\nTianqi effective contact {:.1} min / interval {:.1} min (paper: 3.8 / 15.6 min).\n",
        passive
            .contact_stats_covered("Tianqi", &[])
            .effective_min
            .mean,
        tianqi.effective_interval_min.mean,
    ));
    out
}

/// Figure 5a — end-to-end reliability comparison.
pub fn fig5a(
    terrestrial: &TerrestrialResults,
    sat_no_retx: &ActiveResults,
    sat_retx: &ActiveResults,
) -> String {
    let mut t = Table::new(
        "Fig 5a: End-to-end reliability",
        &["System", "sent", "delivered", "reliability", "paper"],
    );
    let rows: [(&str, usize, usize, f64, &str); 3] = [
        (
            "Terrestrial LoRaWAN",
            terrestrial.sent.len(),
            terrestrial.delivered_seqs.len(),
            terrestrial.reliability(),
            "~100%",
        ),
        (
            "Tianqi (no retx)",
            sat_no_retx.sent.len(),
            sat_no_retx.delivered_seqs.len(),
            sat_no_retx.reliability(),
            "91%",
        ),
        (
            "Tianqi (<=5 retx)",
            sat_retx.sent.len(),
            sat_retx.delivered_seqs.len(),
            sat_retx.reliability(),
            "96%",
        ),
    ];
    for (name, sent, delivered, rel, paper) in rows {
        t.row(&[
            name.to_string(),
            sent.to_string(),
            delivered.to_string(),
            pct(rel),
            paper.to_string(),
        ]);
    }
    t.render()
}

/// Figure 5b — DtS retransmission distribution by weather × antenna.
/// `runs` pairs a label with the campaign run under that condition.
pub fn fig5b(runs: &[(&str, &ActiveResults)]) -> String {
    let mut t = Table::new(
        "Fig 5b: DtS transmissions per packet (share of packets)",
        &["Condition", "1 tx", "2", "3", "4", "5", "6", "mean"],
    );
    for (label, results) in runs {
        let transmitted: Vec<_> = results
            .sent
            .iter()
            .filter(|p| p.attempts > 0)
            .cloned()
            .collect();
        let dist = attempts_distribution(&transmitted, 6);
        let mut cells = vec![label.to_string()];
        cells.extend(dist.iter().map(|d| pct(*d)));
        cells.push(num(results.mean_attempts(), 2));
        t.row(&cells);
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper: ~50% of packets need no retransmission; 5/8-wave + sunny performs best,\n\
         1/4-wave + rainy worst. ACK loss inflates retransmissions.\n",
    );
    out
}

/// Figure 5c — end-to-end latency distributions.
pub fn fig5c(terrestrial: &TerrestrialResults, sat: &ActiveResults) -> String {
    let tb = LatencyBreakdown::compute(&terrestrial.timelines);
    let sb = LatencyBreakdown::compute(&sat.timelines);
    let mut out = String::new();
    let mut t = Table::new(
        "Fig 5c: End-to-end latency (min)",
        &["System", "mean", "median", "p90", "paper mean"],
    );
    t.row(&[
        "Terrestrial".into(),
        num(tb.end_to_end_min.mean, 2),
        num(tb.end_to_end_min.median, 2),
        num(tb.end_to_end_min.p90, 2),
        "0.2".into(),
    ]);
    t.row(&[
        "Tianqi".into(),
        num(sb.end_to_end_min.mean, 1),
        num(sb.end_to_end_min.median, 1),
        num(sb.end_to_end_min.p90, 1),
        "135.2".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nSatellite/terrestrial latency ratio: {:.0}x (paper: 643.6x)\n\n",
        sb.end_to_end_min.mean / tb.end_to_end_min.mean.max(1e-9)
    ));
    let sat_lat: Vec<f64> = sat
        .timelines
        .iter()
        .filter_map(|t| t.end_to_end_min())
        .collect();
    out.push_str(&render_series(
        "Tianqi end-to-end latency CDF",
        "latency(min)",
        "P",
        &cdf_points(&sat_lat, 10),
    ));
    out
}

/// Figure 5d — Tianqi latency decomposition.
pub fn fig5d(sat: &ActiveResults) -> String {
    let b = LatencyBreakdown::compute(&sat.timelines);
    let mut t = Table::new(
        "Fig 5d: Tianqi latency decomposition (min)",
        &["Segment", "mean", "median", "p90", "paper mean"],
    );
    t.row(&[
        "Wait for pass".into(),
        num(b.wait_min.mean, 1),
        num(b.wait_min.median, 1),
        num(b.wait_min.p90, 1),
        "55.2".into(),
    ]);
    t.row(&[
        "DtS (re)transmission".into(),
        num(b.dts_min.mean, 1),
        num(b.dts_min.median, 1),
        num(b.dts_min.p90, 1),
        "10.4".into(),
    ]);
    t.row(&[
        "Delivery (sat->GS->server)".into(),
        num(b.delivery_min.mean, 1),
        num(b.delivery_min.median, 1),
        num(b.delivery_min.p90, 1),
        "56.9".into(),
    ]);
    t.row(&[
        "End-to-end".into(),
        num(b.end_to_end_min.mean, 1),
        num(b.end_to_end_min.median, 1),
        num(b.end_to_end_min.p90, 1),
        "135.2".into(),
    ]);
    t.render()
}

/// Figure 6 — satellite-node energy: per-mode power, residency, battery
/// drain, and the lifetime projection (6d).
pub fn fig6(sat: &ActiveResults, terrestrial: &TerrestrialResults) -> String {
    let acc = &sat.node_energy[0];
    let mut out = String::new();
    let mut t = Table::new(
        "Fig 6a-c: Tianqi node power / time / battery drain by mode",
        &["Mode", "power (mW)", "time share", "energy share"],
    );
    for mode in SatNodeMode::ALL {
        t.row(&[
            mode.label().to_string(),
            num(SatNodeProfile.power_mw(mode), 1),
            pct(acc.time_fraction(mode)),
            pct(acc.energy_fraction(mode)),
        ]);
    }
    out.push_str(&t.render());

    let battery = Battery::paper_5ah();
    let sat_deploy = acc.re_profile(&SatNodeDeploymentProfile);
    let terr_acc = &terrestrial.node_energy[0];
    let terr_deploy = terr_acc.re_profile(&TerrestrialDeploymentProfile);
    let sat_days = battery.lifetime_days(sat_deploy.average_power_mw());
    let terr_days = battery.lifetime_days(terr_deploy.average_power_mw());
    let mut t = Table::new(
        "Fig 6d: Battery lifetime on a 5 Ah pack (deployment sleep profile)",
        &["Node", "avg power (mW)", "lifetime (days)", "paper (days)"],
    );
    t.row(&[
        "Tianqi node".into(),
        num(sat_deploy.average_power_mw(), 2),
        num(sat_days, 0),
        "48".into(),
    ]);
    t.row(&[
        "Terrestrial node".into(),
        num(terr_deploy.average_power_mw(), 2),
        num(terr_days, 0),
        "718".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nBattery-drain gap: {:.1}x (paper: 14.9x). Tx power gap: {:.1}x (paper: 2.2x).\n",
        terr_days / sat_days,
        SatNodeProfile.power_mw(SatNodeMode::McuTx)
            / TerrestrialProfile.power_mw(TerrestrialMode::Tx),
    ));
    out
}

/// Figure 8 — DtS slant-distance distribution of received beacons.
pub fn fig8(passive: &PassiveResults) -> String {
    let mut out = String::new();
    for c in CONSTELLATIONS {
        let d = passive.traces.distances_of(c);
        if d.is_empty() {
            continue;
        }
        let s = Summary::of(&d);
        out.push_str(&format!(
            "{c}: n={} p10={:.0} km  median={:.0} km  p90={:.0} km\n",
            s.n, s.p10, s.median, s.p90
        ));
    }
    let tianqi = passive.traces.distances_of("Tianqi");
    out.push_str(&render_series(
        "Fig 8: Tianqi DtS distance CDF",
        "distance(km)",
        "P",
        &cdf_points(&tianqi, 10),
    ));
    out.push_str(
        "\nPaper: 80% of links at 600-2000 km for the 500 km constellations;\n\
         Tianqi (higher orbits) 1100-3500 km.\n",
    );
    out
}

/// Figure 9 — beacon receptions vs. normalised window position.
pub fn fig9(passive: &PassiveResults) -> String {
    let pos = passive.reception_positions();
    let mut h = Histogram::new(0.0, 1.0, 10);
    for p in &pos {
        h.add(*p);
    }
    let mut t = Table::new(
        "Fig 9: Beacon receptions within a contact window",
        &["Window position", "share of receptions"],
    );
    for i in 0..10 {
        t.row(&[format!("{}-{}%", i * 10, (i + 1) * 10), pct(h.fraction(i))]);
    }
    let mid = h.fraction_between(0.3, 0.7);
    let mut out = t.render();
    out.push_str(&format!(
        "\nMiddle 30-70% of the window: {} of receptions (paper: 70.4%).\n",
        pct(mid)
    ));
    out
}

/// Figure 10 — terrestrial node per-mode power.
pub fn fig10() -> String {
    let mut t = Table::new(
        "Fig 10: Terrestrial LoRaWAN node power consumption",
        &["Mode", "power (mW)", "paper (mW)"],
    );
    let paper = [
        ("tx", 1_630.0),
        ("rx", 265.0),
        ("standby", 146.0),
        ("sleep", 19.1),
    ];
    for mode in [
        TerrestrialMode::Tx,
        TerrestrialMode::Rx,
        TerrestrialMode::Standby,
        TerrestrialMode::Sleep,
    ] {
        let p = paper.iter().find(|(l, _)| *l == mode.label()).unwrap().1;
        t.row(&[
            mode.label().to_string(),
            num(TerrestrialProfile.power_mw(mode), 1),
            num(p, 1),
        ]);
    }
    t.render()
}

/// Figure 11 — terrestrial node time/energy breakdown.
pub fn fig11(terrestrial: &TerrestrialResults) -> String {
    // Energy shares are costed under the deployment-grade profile (see
    // `satiot-energy`): the bench sleep draw of 19.1 mW would swamp every
    // other mode over a month and contradicts the paper's own Figure 11.
    let acc = terrestrial.node_energy[0].re_profile(&TerrestrialDeploymentProfile);
    let mut t = Table::new(
        "Fig 11: Terrestrial node operating time and energy by mode",
        &["Mode", "time share", "energy share"],
    );
    for mode in TerrestrialMode::ALL {
        t.row(&[
            mode.label().to_string(),
            pct(acc.time_fraction(mode)),
            pct(acc.energy_fraction(mode)),
        ]);
    }
    let sleepish =
        acc.time_fraction(TerrestrialMode::Sleep) + acc.time_fraction(TerrestrialMode::Standby);
    let radio = acc.energy_fraction(TerrestrialMode::Tx) + acc.energy_fraction(TerrestrialMode::Rx);
    let mut out = t.render();
    out.push_str(&format!(
        "\nSleep+standby time: {} (paper: 95%); Tx+Rx energy: {} (paper: >70%).\n",
        pct(sleepish),
        pct(radio)
    ));
    out
}

/// Figure 12a — reliability vs. payload size.
pub fn fig12a(runs: &[(usize, &ActiveResults)]) -> String {
    let mut t = Table::new(
        "Fig 12a: Tianqi reliability vs payload size",
        &[
            "Payload (B)",
            "sent",
            "delivered",
            "e2e reliability",
            "per-attempt uplink success",
            "mean attempts",
            "days >= 90% reliable",
        ],
    );
    for (payload, r) in runs {
        let attempt_success = if r.counters.uplinks_tx == 0 {
            0.0
        } else {
            r.counters.uplinks_ok as f64 / r.counters.uplinks_tx as f64
        };
        // The paper's Fig 12a metric: fraction of (daily) windows whose
        // end-to-end reliability reaches 90 %.
        let windowed = reliability_per_window(&r.sent, &r.delivered_seqs, 86_400.0);
        t.row(&[
            payload.to_string(),
            r.sent.len().to_string(),
            r.delivered_seqs.len().to_string(),
            pct(r.reliability()),
            pct(attempt_success),
            num(r.mean_attempts(), 2),
            pct(share_of_windows_above(&windowed, 0.9)),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nPaper: smaller payloads are more reliable (10 B best, 120 B worst). Longer\n\
         packets are exposed longer to footprint collisions and Doppler drift — the\n\
         per-attempt column shows the raw link effect; with <=5 retransmissions the\n\
         protocol recovers most of it, at the cost of extra attempts and latency.\n",
    );
    out
}

/// Figure 12b — reliability vs. concurrent senders.
pub fn fig12b(runs: &[(u32, &ActiveResults)]) -> String {
    let mut t = Table::new(
        "Fig 12b: Tianqi reliability vs concurrent nodes",
        &["Nodes", "sent", "delivered", "reliability", "paper"],
    );
    let paper = ["94%", "92%", "89%"];
    for (i, (nodes, r)) in runs.iter().enumerate() {
        t.row(&[
            nodes.to_string(),
            r.sent.len().to_string(),
            r.delivered_seqs.len().to_string(),
            pct(r.reliability()),
            paper.get(i).unwrap_or(&"").to_string(),
        ]);
    }
    t.render()
}

/// Per-node reliability split (used by several analyses).
pub fn per_node_reliability(results: &ActiveResults) -> String {
    let groups = reliability_by(&results.sent, &results.delivered_seqs, |p| {
        format!("node{}", p.node)
    });
    let mut t = Table::new("Per-node delivery", &["Node", "sent", "delivered", "ratio"]);
    for (node, r) in groups {
        t.row(&[
            node,
            r.sent.to_string(),
            r.delivered.to_string(),
            pct(r.ratio()),
        ]);
    }
    t.render()
}

/// Reliability from raw pieces (helper for sweeps).
pub fn reliability_of(results: &ActiveResults) -> Reliability {
    Reliability::compute(&results.sent, &results.delivered_seqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_core::active::ActiveCounters;
    use satiot_energy::accounting::EnergyAccount;
    use satiot_energy::profile::{SatNodeProfile, TerrestrialProfile};
    use satiot_measure::latency::PacketTimeline;
    use satiot_measure::reliability::SentPacket;
    use std::collections::HashSet;

    /// A miniature ActiveResults with 4 packets, 3 delivered.
    fn tiny_active() -> ActiveResults {
        let sent: Vec<SentPacket> = (0..4)
            .map(|i| SentPacket {
                seq: i,
                node: (i % 2) as u32,
                sent_s: i as f64 * 1_800.0,
                payload_bytes: 20,
                attempts: 1 + (i % 3) as u32,
                weather: "sunny",
            })
            .collect();
        let delivered_seqs: HashSet<u64> = [0, 1, 2].into_iter().collect();
        let timelines: Vec<PacketTimeline> = sent
            .iter()
            .map(|p| PacketTimeline {
                generated_s: p.sent_s,
                first_tx_s: Some(p.sent_s + 600.0),
                sat_rx_s: Some(p.sent_s + 700.0),
                delivered_s: if delivered_seqs.contains(&p.seq) {
                    Some(p.sent_s + 4_000.0)
                } else {
                    None
                },
            })
            .collect();
        let mut acc = EnergyAccount::new();
        acc.record(&SatNodeProfile, SatNodeMode::Sleep, 80_000.0);
        acc.record(&SatNodeProfile, SatNodeMode::McuRx, 6_000.0);
        acc.record(&SatNodeProfile, SatNodeMode::McuTx, 400.0);
        let mut latency_min =
            satiot_measure::sketch::MetricSketch::new(satiot_measure::sketch::LATENCY_WIDTH_MIN);
        for t in &timelines {
            if let Some(d) = t.delivered_s {
                latency_min.observe((d - t.generated_s) / 60.0);
            }
        }
        ActiveResults {
            timelines,
            latency_min,
            sent,
            delivered_seqs,
            node_energy: vec![acc],
            server: satiot_core::server::DeliveryLog::new(),
            counters: ActiveCounters {
                beacons_tx: 100,
                beacons_heard: 40,
                uplinks_tx: 8,
                uplinks_ok: 6,
                uplinks_collided: 1,
                acks_tx: 6,
                acks_ok: 4,
                duplicates: 1,
            },
            node_drop_ratio: vec![0.0],
            horizon_s: 86_400.0,
            faults: Default::default(),
        }
    }

    fn tiny_terrestrial() -> TerrestrialResults {
        let sent: Vec<SentPacket> = (0..4)
            .map(|i| SentPacket {
                seq: i,
                node: 0,
                sent_s: i as f64 * 1_800.0,
                payload_bytes: 20,
                attempts: 1,
                weather: "sunny",
            })
            .collect();
        let delivered_seqs: HashSet<u64> = (0..4).collect();
        let timelines = sent
            .iter()
            .map(|p| PacketTimeline {
                generated_s: p.sent_s,
                first_tx_s: Some(p.sent_s + 1.5),
                sat_rx_s: Some(p.sent_s + 1.7),
                delivered_s: Some(p.sent_s + 12.0),
            })
            .collect();
        let mut acc = EnergyAccount::new();
        acc.record(&TerrestrialProfile, TerrestrialMode::Sleep, 86_000.0);
        acc.record(&TerrestrialProfile, TerrestrialMode::Tx, 100.0);
        acc.record(&TerrestrialProfile, TerrestrialMode::Rx, 200.0);
        acc.record(&TerrestrialProfile, TerrestrialMode::Standby, 100.0);
        TerrestrialResults {
            timelines,
            sent,
            delivered_seqs,
            node_energy: vec![acc],
            horizon_s: 86_400.0,
            faults: Default::default(),
        }
    }

    #[test]
    fn table2_contains_paper_prices() {
        let out = table2();
        assert!(out.contains("$220 per unit"));
        assert!(out.contains("$23.76"));
        assert!(out.contains("$4.9 per month"));
        assert!(out.contains("overtakes satellite"));
    }

    #[test]
    fn fig3a_has_all_constellations_and_cities() {
        let out = fig3a(2);
        for name in [
            "Tianqi (22 sats)",
            "FOSSA (3 sats)",
            "PICO (9 sats)",
            "CSTP (5 sats)",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
        for city in ["HK", "SYD", "LDN", "PGH"] {
            assert!(out.contains(city));
        }
    }

    #[test]
    fn fig5a_reports_the_three_systems() {
        let terr = tiny_terrestrial();
        let a = tiny_active();
        let out = fig5a(&terr, &a, &a);
        assert!(out.contains("Terrestrial LoRaWAN"));
        assert!(out.contains("Tianqi (no retx)"));
        assert!(out.contains("75.0%")); // 3 of 4 delivered.
        assert!(out.contains("100.0%"));
    }

    #[test]
    fn fig5d_decomposition_sums() {
        let a = tiny_active();
        let out = fig5d(&a);
        // Wait 10 min, DtS 100 s ≈ 1.7 min, delivery 55 min, e2e 66.7 min.
        assert!(out.contains("Wait for pass"));
        assert!(out.contains("10.0"));
        assert!(out.contains("66.7"));
    }

    #[test]
    fn fig6_contains_mode_table_and_lifetimes() {
        let out = fig6(&tiny_active(), &tiny_terrestrial());
        assert!(out.contains("mcu+tx"));
        assert!(out.contains("3586.0"));
        assert!(out.contains("Battery-drain gap"));
        assert!(out.contains("2.2x"));
    }

    #[test]
    fn fig10_matches_paper_exactly() {
        let out = fig10();
        for v in ["1630.0", "265.0", "146.0", "19.1"] {
            assert!(out.contains(v), "missing {v}");
        }
    }

    #[test]
    fn fig12a_is_monotone_in_its_inputs() {
        let a = tiny_active();
        let out = fig12a(&[(10, &a), (120, &a)]);
        assert!(out.contains("10"));
        assert!(out.contains("120"));
        assert!(out.contains("per-attempt"));
    }

    #[test]
    fn fig5b_renders_distribution_rows() {
        let a = tiny_active();
        let out = fig5b(&[("5/8-wave, sunny", &a), ("1/4-wave, rainy", &a)]);
        assert!(out.contains("5/8-wave, sunny"));
        assert!(out.contains("1/4-wave, rainy"));
        assert!(out.contains("mean"));
    }

    #[test]
    fn per_node_reliability_groups() {
        let a = tiny_active();
        let out = per_node_reliability(&a);
        assert!(out.contains("node0"));
        assert!(out.contains("node1"));
        assert_eq!(reliability_of(&a).delivered, 3);
    }
}
