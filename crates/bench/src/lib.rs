//! Shared infrastructure for the satiot experiment binaries.
//!
//! Every `exp_*` binary reproduces one table or figure of the paper; the
//! campaign runners and report formatters live here so `reproduce_all`
//! can run each campaign once and emit every report from the same data.
//!
//! Scale control: set `SATIOT_SCALE=quick` for a fast sanity run
//! (truncated campaigns) or leave unset for full paper scale (passive:
//! every site from its Table 1 start date through 2025-03; active: one
//! month).

pub mod reports;
pub mod runners;

pub use runners::Scale;
