//! Ephemeris accuracy-contract check (CI gate).
//!
//! For every satellite of all four Table-3 constellations, over two
//! well-separated observers (Hong Kong and Sydney), this binary:
//!
//! 1. builds the satellite's [`EphemerisGrid`] and probes it against
//!    direct SGP4 ([`EphemerisGrid::validate`] — the position half of
//!    the contract, `MAX_POSITION_ERROR_KM`);
//! 2. predicts the full pass list with both backends and demands they
//!    agree pass-for-pass: AOS/LOS within the bisection refinement
//!    tolerance, culmination elevation within
//!    [`MAX_ELEVATION_ERROR_DEG`], and TCA within the flat-peak
//!    tolerance (a 0.01° elevation perturbation can slide the argmax of
//!    a grazing pass by ~seconds without moving its height);
//! 3. sweeps interpolated vs direct elevation pointwise across the
//!    whole window — the observer half of the contract.
//!
//! Any violation panics, so the CI step is just
//! `cargo run --release -p satiot-bench --bin ephemeris_check`.

use satiot_orbit::ephemeris::{EphemerisGrid, MAX_ELEVATION_ERROR_DEG};
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::time::JulianDate;
use satiot_scenarios::constellations::all_constellations;
use std::sync::Arc;

/// AOS/LOS agreement bound, seconds: two ~10 ms bisections plus the
/// crossing shift induced by the elevation-error contract.
const CROSSING_TOL_S: f64 = 0.05;
/// TCA agreement bound, seconds (flat-peaked grazing passes).
const TCA_TOL_S: f64 = 2.0;
/// Pointwise elevation probes per (satellite, observer) pair.
const PROBES: usize = 240;

fn check_pair(
    label: &str,
    direct: &PassPredictor,
    gridded: &PassPredictor,
    start: JulianDate,
    end: JulianDate,
) -> (usize, f64) {
    let d_passes = direct.passes(start, end);
    let g_passes = gridded.passes(start, end);
    assert_eq!(
        d_passes.len(),
        g_passes.len(),
        "{label}: backends disagree on pass count ({} direct vs {} gridded)",
        d_passes.len(),
        g_passes.len(),
    );
    for (d, g) in d_passes.iter().zip(&g_passes) {
        let pair = |a: &Pass, b: &Pass| {
            (
                a.aos.seconds_since(b.aos).abs(),
                a.los.seconds_since(b.los).abs(),
                a.tca.seconds_since(b.tca).abs(),
            )
        };
        let (d_aos, d_los, d_tca) = pair(d, g);
        assert!(
            d_aos < CROSSING_TOL_S && d_los < CROSSING_TOL_S,
            "{label}: AOS/LOS drift {d_aos:.3}/{d_los:.3} s exceeds {CROSSING_TOL_S} s"
        );
        assert!(
            d_tca < TCA_TOL_S,
            "{label}: TCA drift {d_tca:.3} s exceeds {TCA_TOL_S} s"
        );
        let d_el = (d.max_elevation_rad - g.max_elevation_rad)
            .to_degrees()
            .abs();
        assert!(
            d_el < MAX_ELEVATION_ERROR_DEG,
            "{label}: max-elevation drift {d_el:.5}° exceeds {MAX_ELEVATION_ERROR_DEG}°"
        );
    }

    // Pointwise contract sweep across the whole window, including both
    // edges (probe 0 lands on `start`, the last probe on `end`).
    let span_s = end.seconds_since(start);
    let mut worst = 0.0_f64;
    for k in 0..=PROBES {
        let t = start.plus_seconds(span_s * k as f64 / PROBES as f64);
        let (de, ge) = (direct.elevation_at(t), gridded.elevation_at(t));
        let err = (de - ge).to_degrees().abs();
        assert!(
            err < MAX_ELEVATION_ERROR_DEG,
            "{label}: elevation error {err:.5}° at probe {k} exceeds {MAX_ELEVATION_ERROR_DEG}°"
        );
        worst = worst.max(err);
    }
    (d_passes.len(), worst)
}

fn main() {
    let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let (start, end) = (epoch, epoch + 1.0);
    let observers = [
        ("HK", Geodetic::from_degrees(22.3193, 114.1694, 0.05)),
        ("SYD", Geodetic::from_degrees(-33.8688, 151.2093, 0.02)),
    ];

    let mut total_passes = 0usize;
    let mut worst_el = 0.0_f64;
    let mut worst_pos = 0.0_f64;
    for spec in all_constellations() {
        for sat in spec.catalog(epoch) {
            let sgp4 = sat.sgp4().expect("catalog elements propagate");
            let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
            let report = grid.validate(&sgp4, 512);
            assert!(
                report.within_contract(),
                "{}-{}: grid violates the position contract: {report:?}",
                spec.name,
                sat.sat_id,
            );
            worst_pos = worst_pos.max(report.max_position_error_km);
            for (site_name, site) in observers {
                let label = format!("{}-{} @ {site_name}", spec.name, sat.sat_id);
                let direct = PassPredictor::new(sgp4.clone(), site, 0.0);
                let gridded =
                    PassPredictor::new(sgp4.clone(), site, 0.0).with_ephemeris(Arc::clone(&grid));
                let (passes, worst) = check_pair(&label, &direct, &gridded, start, end);
                total_passes += passes;
                worst_el = worst_el.max(worst);
            }
        }
        println!("{}: OK ({} satellites)", spec.name, spec.sat_count());
    }
    println!(
        "ephemeris check: {total_passes} passes matched across 4 constellations × \
         {} observers; worst position error {:.2} m, worst elevation error {:.6}° \
         (contract: {MAX_ELEVATION_ERROR_DEG}°)",
        observers.len(),
        worst_pos * 1e3,
        worst_el,
    );
    println!("ephemeris check: OK");
}
