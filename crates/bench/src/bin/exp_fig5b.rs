//! Reproduces Figure 5b: DtS retransmissions under weather × antenna.

use satiot_bench::{reports, runners, Scale};
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::weather::Weather;

fn main() {
    let scale = Scale::from_env();
    let conditions: [(&str, AntennaPattern, Weather); 4] = [
        (
            "5/8-wave, sunny",
            AntennaPattern::FiveEighthsWaveMonopole,
            Weather::Sunny,
        ),
        (
            "5/8-wave, rainy",
            AntennaPattern::FiveEighthsWaveMonopole,
            Weather::Rainy,
        ),
        (
            "1/4-wave, sunny",
            AntennaPattern::QuarterWaveMonopole,
            Weather::Sunny,
        ),
        (
            "1/4-wave, rainy",
            AntennaPattern::QuarterWaveMonopole,
            Weather::Rainy,
        ),
    ];
    let results: Vec<_> = conditions
        .iter()
        .map(|(label, antenna, weather)| {
            let r = runners::run_active_with(scale, |c| {
                c.node_antenna = *antenna;
                c.weather_override = Some(*weather);
            });
            (*label, r)
        })
        .collect();
    let refs: Vec<(&str, &_)> = results.iter().map(|(l, r)| (*l, r)).collect();
    print!("{}", reports::fig5b(&refs));
}
