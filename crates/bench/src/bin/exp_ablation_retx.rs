//! Ablation A2: retransmission cap sweep — reliability vs. energy.

use satiot_bench::{runners, Scale};
use satiot_energy::profile::SatNodeMode;
use satiot_measure::table::{num, pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Ablation A2: retransmission cap vs reliability and energy",
        &[
            "Max attempts",
            "reliability",
            "mean attempts",
            "tx time/node (s)",
            "duplicates",
        ],
    );
    for max_attempts in [1u32, 2, 4, 6, 8] {
        let r = runners::run_active_with(scale, |c| c.max_attempts = max_attempts);
        t.row(&[
            max_attempts.to_string(),
            pct(r.reliability()),
            num(r.mean_attempts(), 2),
            num(r.node_energy[0].time_s(SatNodeMode::McuTx), 1),
            r.counters.duplicates.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nDiminishing returns past the paper's 5-retransmission cap; duplicates grow\nwith the cap because ACK loss keeps triggering unnecessary retransmissions.");
}
