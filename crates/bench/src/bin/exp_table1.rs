//! Reproduces Table 1: the passive campaign's dataset overview.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let passive = runners::run_passive(scale);
    print!("{}", reports::table1(&passive));
}
