//! Reproduces Figure 5c: end-to-end latency comparison.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let terrestrial = runners::run_terrestrial(scale);
    let sat = runners::run_active(scale);
    print!("{}", reports::fig5c(&terrestrial, &sat));
}
