//! CI chaos smoke: replay hundreds of seeded fault-injection scenarios
//! through the campaign pipeline and assert (a) zero panics anywhere and
//! (b) reproducible, driver-independent degradation accounting — the
//! serial and pooled passive drivers must report bit-identical
//! [`FaultLog`]s, and an active campaign replayed with the same damaged
//! config must degrade identically.
//!
//! Scenarios interleave five families:
//!
//! * passive configs perturbed (NaN day caps, emptied sites and
//!   constellations, poisoned site coordinates, zero-station sites,
//!   degenerate vanilla dwells), run serial *and* pooled;
//! * active configs perturbed (zero/NaN periods, out-of-range elevation
//!   masks, zero nodes/buffers/attempts), run twice for replay equality;
//! * terrestrial configs perturbed (zero/NaN periods and day counts,
//!   emptied or negative distance tables, out-of-range uptimes), run
//!   twice for replay equality of the clamp accounting;
//! * component-level damage fed straight to the scheduler, beacon
//!   sampler, and store-and-forward buffer;
//! * scenario-spec JSON perturbed (truncated mid-token, hostile keys
//!   injected, digits chewed, versions from the future): parsing must
//!   return a typed [`ScenarioError`] or a spec that round-trips and
//!   builds deterministically — and when the build yields a runnable
//!   campaign, serial and pooled replays must report bit-identical
//!   [`FaultLog`]s. Never a panic.
//!
//! A standing scenario also points the spill trace sink at an
//! unwritable path: the campaign must degrade (counted sink IO faults,
//! sketches intact) rather than panic.
//!
//! `SATIOT_CHAOS_SEED=<u64>` reseeds the batch. Every failure report
//! names the scenario index and the mutation labels its plan applied, so
//! `SATIOT_CHAOS_SEED=<seed> cargo run --release -p satiot-bench --bin
//! chaos_smoke` reproduces a failure exactly. The CI step is the plain
//! run, right next to `determinism_smoke`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use satiot_core::buffer::{DropPolicy, StoreAndForward};
use satiot_core::geometry::beacon_times;
use satiot_core::passive::sanitize_candidates;
use satiot_core::prelude::*;
use satiot_core::scheduler::{CandidatePass, PredictiveScheduler, Scheduler, VanillaScheduler};
use satiot_orbit::pass::Pass;
use satiot_orbit::time::JulianDate;
use satiot_scenarios::constellations::tianqi;
use satiot_scenarios::sites::measurement_sites;
use satiot_sim::chaos::{ChaosEngine, ChaosPlan};
use satiot_terrestrial::{TerrestrialCampaign, TerrestrialConfig};

/// Scenario count (the robustness contract asks for ≥ 200).
const SCENARIOS: u64 = 300;

/// How one scenario ended, short of a panic.
enum Verdict {
    /// Ran to completion with a clean fault log.
    Clean,
    /// Ran to completion, degradation counted in the fault log.
    Degraded,
    /// Rejected up front with a typed error (consistently across runs).
    Rejected,
    /// Drivers or replays disagreed — a determinism bug.
    Mismatch(String),
}

fn main() {
    let opts = RunOptions::from_env().apply();
    let seed = opts.chaos_seed;
    let engine = ChaosEngine::new(seed);
    println!("chaos smoke: {SCENARIOS} scenarios from seed {seed:#x}");

    // Spill-sink IO chaos: pointing the spill archive at an unwritable
    // path must degrade (counted in the fault log, sketches intact),
    // never panic the campaign.
    {
        #[allow(deprecated)] // chaos runs feed deliberately hostile literal configs
        let mut cfg = PassiveConfig::quick(0.5);
        cfg.constellations = vec![tianqi()];
        cfg.sites.truncate(2);
        let spill = SinkMode::SpillCsv {
            path: "/proc/satiot-no-such-dir/spill.csv",
        };
        let results = PassiveCampaign::new(cfg)
            .run(&opts.with_sink(spill))
            .expect("unwritable spill path must degrade, not abort");
        assert!(
            results.faults.sink_io_errors > 0,
            "spill failure was not counted as Fault::SinkIo"
        );
        assert!(
            results.traces.traces.is_empty(),
            "degraded spill shard must not silently retain traces"
        );
        let sketch = results.sketch.expect("sketches survive spill failure");
        assert_eq!(sketch.total, results.sink.emitted);
        println!(
            "spill chaos: degraded gracefully ({} sink IO faults, {} traces sketched)",
            results.faults.sink_io_errors, sketch.total
        );
    }

    // Expected-degenerate inputs only panic when the harness has found a
    // bug; silence the default hook so a failing batch prints structured
    // reports instead of interleaved backtraces.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (mut clean, mut degraded, mut rejected) = (0u64, 0u64, 0u64);
    let mut failures: Vec<String> = Vec::new();
    for index in 0..SCENARIOS {
        let mut plan = engine.scenario(index);
        let family = match index % 5 {
            0 => "passive",
            1 => "active",
            2 => "terrestrial",
            3 => "component",
            _ => "scenario-spec",
        };
        let verdict = catch_unwind(AssertUnwindSafe(|| match index % 5 {
            0 => passive_scenario(&mut plan, &opts),
            1 => active_scenario(&mut plan, &opts),
            2 => terrestrial_scenario(&mut plan),
            3 => component_scenario(&mut plan),
            _ => scenario_spec_scenario(&mut plan, &opts),
        }));
        match verdict {
            Ok(Verdict::Clean) => clean += 1,
            Ok(Verdict::Degraded) => degraded += 1,
            Ok(Verdict::Rejected) => rejected += 1,
            Ok(Verdict::Mismatch(why)) => failures.push(format!(
                "scenario {index} ({family}) mismatch: {why} — mutations {:?}",
                plan.applied()
            )),
            Err(_) => failures.push(format!(
                "scenario {index} ({family}) PANICKED — mutations {:?}",
                plan.applied()
            )),
        }
    }
    std::panic::set_hook(default_hook);

    println!(
        "chaos smoke: {clean} clean, {degraded} degraded, {rejected} rejected, \
         {} failures",
        failures.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        eprintln!("reproduce with SATIOT_CHAOS_SEED={seed}");
        std::process::exit(1);
    }
    // A batch that never exercises the degraded or rejected paths is not
    // testing the contract — fail loudly rather than rot silently.
    assert!(
        degraded > 0,
        "no scenario degraded — perturbations too weak"
    );
    assert!(
        rejected > 0,
        "no scenario was rejected — validation untested"
    );
    // With SATIOT_METRICS=1 the fault counters (`core.faults.*`,
    // `core.geometry.degenerate_passes`, `orbit.pass.non_finite_scans`)
    // have been accumulating across the whole batch; dump them.
    if satiot_obs::metrics::enabled() {
        eprintln!("\n{}", satiot_obs::metrics::report());
    }
    println!("chaos smoke: OK");
}

/// Family 0: a perturbed passive campaign must run (or be rejected)
/// identically under the serial and pooled drivers.
fn passive_scenario(plan: &mut ChaosPlan, opts: &RunOptions) -> Verdict {
    #[allow(deprecated)] // chaos runs feed deliberately hostile literal configs
    let mut cfg = PassiveConfig::quick(0.5);
    cfg.seed = plan.derived_seed();
    cfg.constellations = vec![tianqi()];

    let mut sites = measurement_sites();
    let mut site = sites.swap_remove(plan.index_in(sites.len()));
    if plan.chance(0.4) {
        // Only non-finite coordinate damage: the pass cache keys on the
        // site *code*, so a finite perturbation of a real site's
        // coordinates would poison cache entries shared with other
        // scenarios. Non-finite coordinates are skipped before
        // prediction, never cached.
        let lat = plan.corrupt_f64(site.lat_deg);
        if !lat.is_finite() {
            site.lat_deg = lat;
        }
    }
    if plan.chance(0.3) {
        site.station_count = plan.corrupt_count(site.station_count);
    }
    cfg.sites = vec![site];
    if plan.chance(0.1) {
        plan.note("sites=emptied");
        cfg.sites.clear();
    }
    if plan.chance(0.1) {
        plan.note("constellations=emptied");
        cfg.constellations.clear();
    }
    if plan.chance(0.5) {
        cfg.max_days = plan.corrupt_duration(cfg.max_days);
    }
    if plan.chance(0.25) {
        cfg.scheduler = SchedulerKind::Vanilla {
            dwell_s: plan.corrupt_duration(600.0),
        };
    }

    let mut serial_cfg = cfg.clone();
    serial_cfg.parallel = false;
    cfg.parallel = true;
    let serial = PassiveCampaign::new(serial_cfg).run(opts);
    let pooled = PassiveCampaign::new(cfg).run(opts);
    match (serial, pooled) {
        (Ok(a), Ok(b)) => {
            if a.faults != b.faults {
                return Verdict::Mismatch(format!(
                    "serial faults [{}] != pooled faults [{}]",
                    a.faults, b.faults
                ));
            }
            if a.traces.len() != b.traces.len() || a.passes.len() != b.passes.len() {
                return Verdict::Mismatch(format!(
                    "serial {}t/{}p != pooled {}t/{}p",
                    a.traces.len(),
                    a.passes.len(),
                    b.traces.len(),
                    b.passes.len()
                ));
            }
            if a.faults.is_clean() {
                Verdict::Clean
            } else {
                Verdict::Degraded
            }
        }
        (Err(a), Err(b)) => {
            // Typed errors may carry NaN payloads (never `==`), so
            // compare rendered messages.
            if a.to_string() == b.to_string() {
                Verdict::Rejected
            } else {
                Verdict::Mismatch(format!("serial rejected [{a}], pooled rejected [{b}]"))
            }
        }
        (a, b) => Verdict::Mismatch(format!(
            "drivers disagree on acceptance: serial {}, pooled {}",
            ok_or_err(&a),
            ok_or_err(&b)
        )),
    }
}

fn ok_or_err<T, E: std::fmt::Display>(r: &Result<T, E>) -> String {
    match r {
        Ok(_) => "Ok".into(),
        Err(e) => format!("Err({e})"),
    }
}

/// Family 1: a perturbed active campaign must either be rejected with a
/// typed error or run to completion — and a replay with the identical
/// config must degrade bit-identically.
fn active_scenario(plan: &mut ChaosPlan, opts: &RunOptions) -> Verdict {
    let mut cfg = ActiveConfig::quick(1.0);
    cfg.seed = plan.derived_seed();
    if plan.chance(0.5) {
        cfg.days = plan.corrupt_duration(cfg.days);
    }
    if plan.chance(0.4) {
        cfg.period_s = plan.corrupt_duration(cfg.period_s);
    }
    if plan.chance(0.4) {
        cfg.gs_mask_rad = plan.corrupt_elevation_rad(cfg.gs_mask_rad);
    }
    if plan.chance(0.3) {
        cfg.downlink_service_s = plan.corrupt_f64(cfg.downlink_service_s);
    }
    if plan.chance(0.3) {
        cfg.nodes = plan.corrupt_count(cfg.nodes);
    }
    if plan.chance(0.3) {
        cfg.buffer_capacity = plan.corrupt_count(cfg.buffer_capacity as u32) as usize;
    }
    if plan.chance(0.2) {
        cfg.max_attempts = plan.corrupt_count(cfg.max_attempts);
    }

    let first = ActiveCampaign::new(cfg.clone()).run(opts);
    let replay = ActiveCampaign::new(cfg).run(opts);
    match (first, replay) {
        (Ok(a), Ok(b)) => {
            if a.faults != b.faults {
                return Verdict::Mismatch(format!(
                    "replay faults [{}] != [{}]",
                    b.faults, a.faults
                ));
            }
            if a.sent.len() != b.sent.len() || a.delivered_seqs != b.delivered_seqs {
                return Verdict::Mismatch("replay diverged on sent/delivered".into());
            }
            if a.faults.is_clean() {
                Verdict::Clean
            } else {
                Verdict::Degraded
            }
        }
        (Err(a), Err(b)) => {
            if a.to_string() == b.to_string() {
                Verdict::Rejected
            } else {
                Verdict::Mismatch(format!("replay rejected differently: [{a}] vs [{b}]"))
            }
        }
        (a, b) => Verdict::Mismatch(format!(
            "replay disagrees on acceptance: {} vs {}",
            ok_or_err(&a),
            ok_or_err(&b)
        )),
    }
}

/// Family 2: a perturbed terrestrial baseline must either be rejected
/// with a typed error (never a panic, never an infinite loop) or run to
/// completion — and a replay with the identical config must report a
/// bit-identical clamp [`FaultLog`] and packet record set.
fn terrestrial_scenario(plan: &mut ChaosPlan) -> Verdict {
    let mut cfg = TerrestrialConfig {
        days: 1.0,
        seed: plan.derived_seed(),
        ..Default::default()
    };
    if plan.chance(0.4) {
        cfg.days = plan.corrupt_duration(cfg.days);
    }
    if plan.chance(0.4) {
        cfg.period_s = plan.corrupt_duration(cfg.period_s);
    }
    if plan.chance(0.4) {
        // Out-of-range uptimes (negative, above 1, non-finite) must be
        // clamped-and-counted or typed-rejected, mirroring the passive
        // campaign's ground-station masks.
        cfg.gateway_uptime = plan.corrupt_f64(cfg.gateway_uptime);
    }
    if plan.chance(0.35) {
        let slot = plan.index_in(cfg.gateway_distance_km.len());
        cfg.gateway_distance_km[slot] = plan.corrupt_f64(cfg.gateway_distance_km[slot]);
    }
    if plan.chance(0.25) {
        cfg.gateway_distance_km = vec![-plan.corrupt_duration(1.0)];
        plan.note("distances=negated");
    }
    if plan.chance(0.1) {
        plan.note("distances=emptied");
        cfg.gateway_distance_km.clear();
    }
    if plan.chance(0.25) {
        cfg.gateways = plan.corrupt_count(cfg.gateways);
    }
    if plan.chance(0.25) {
        cfg.nodes = plan.corrupt_count(cfg.nodes);
    }

    let first = TerrestrialCampaign::new(cfg.clone()).run();
    let replay = TerrestrialCampaign::new(cfg).run();
    match (first, replay) {
        (Ok(a), Ok(b)) => {
            if a.faults != b.faults {
                return Verdict::Mismatch(format!(
                    "replay faults [{}] != [{}]",
                    b.faults, a.faults
                ));
            }
            if a.sent.len() != b.sent.len() || a.delivered_seqs != b.delivered_seqs {
                return Verdict::Mismatch("replay diverged on sent/delivered".into());
            }
            if a.faults.is_clean() {
                Verdict::Clean
            } else {
                Verdict::Degraded
            }
        }
        (Err(a), Err(b)) => {
            if a.to_string() == b.to_string() {
                Verdict::Rejected
            } else {
                Verdict::Mismatch(format!("replay rejected differently: [{a}] vs [{b}]"))
            }
        }
        (a, b) => Verdict::Mismatch(format!(
            "replay disagrees on acceptance: {} vs {}",
            ok_or_err(&a),
            ok_or_err(&b)
        )),
    }
}

/// Family 4: scenario-spec JSON chaos. A builtin scenario's canonical
/// JSON is perturbed — truncated mid-token, hostile keys injected,
/// digits chewed, versions bumped into the future — and fed through
/// [`ScenarioSpec::from_json`]. Hostile text must yield a typed
/// [`ScenarioError`] (identically on replay); text that still parses
/// must round-trip to an identical spec with an identical fingerprint,
/// and a spec that builds into a runnable campaign must degrade with
/// bit-identical [`FaultLog`]s under the serial and pooled drivers.
fn scenario_spec_scenario(plan: &mut ChaosPlan, opts: &RunOptions) -> Verdict {
    let base = match plan.index_in(4) {
        0 => ScenarioSpec::tianqi_hk(),
        1 => ScenarioSpec::paper_passive(),
        2 => ScenarioSpec::disrupted_comms(),
        _ => ScenarioSpec::maritime_tracker(),
    };
    let mut text = base.to_json();
    if plan.chance(0.3) {
        // Truncate at an arbitrary char boundary — mid-token, mid-string.
        let mut cut = plan.index_in(text.len().max(1));
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        plan.note("json=truncated");
    }
    if plan.chance(0.3) {
        if let Some(brace) = text.find('{') {
            text.insert_str(brace + 1, "\n  \"__hostile\": \"key\",");
            plan.note("json=hostile-key");
        }
    }
    if plan.chance(0.3) {
        // Chew one digit into a letter: breaks a number token, or turns
        // a quoted name into a different (unknown) one.
        let at = plan.index_in(text.len().max(1));
        if let Some((pos, c)) = text
            .char_indices()
            .skip(at.min(text.chars().count().saturating_sub(1)))
            .find(|(_, c)| c.is_ascii_digit())
        {
            text.replace_range(pos..pos + c.len_utf8(), "x");
            plan.note("json=digit-chewed");
        }
    }
    if plan.chance(0.2) {
        text = text.replacen("\"version\": 1", "\"version\": 99", 1);
        plan.note("json=future-version");
    }
    if plan.chance(0.2) {
        text = text.replacen(
            "\"scheduler\": \"predictive\"",
            "\"scheduler\": \"psychic\"",
            1,
        );
    }

    let first = ScenarioSpec::from_json(&text);
    let replay = ScenarioSpec::from_json(&text);
    match (first, replay) {
        (Err(a), Err(b)) => {
            if a.to_string() == b.to_string() {
                Verdict::Rejected
            } else {
                Verdict::Mismatch(format!("parse replay differs: [{a}] vs [{b}]"))
            }
        }
        (Ok(a), Ok(b)) => {
            if a != b || a.fingerprint() != b.fingerprint() {
                return Verdict::Mismatch("parse replay produced a different spec".into());
            }
            // Whatever survived the mutation must round-trip bitwise.
            match ScenarioSpec::from_json(&a.to_json()) {
                Ok(rt) if rt == a => {}
                Ok(_) => return Verdict::Mismatch("round-trip changed the spec".into()),
                Err(e) => return Verdict::Mismatch(format!("canonical JSON rejected: {e}")),
            }
            let resolved = match (a.build(), b.build()) {
                (Ok(x), Ok(y)) if x.fingerprint == y.fingerprint => x,
                (Err(x), Err(y)) if x.to_string() == y.to_string() => {
                    return Verdict::Rejected;
                }
                (x, y) => {
                    return Verdict::Mismatch(format!(
                        "build replay disagrees: {} vs {}",
                        ok_or_err(&x),
                        ok_or_err(&y)
                    ));
                }
            };
            // A buildable scenario must also *run* deterministically.
            // Shrink to chaos-smoke size first (catalog sites keep their
            // canonical coordinates, so the shared pass cache stays
            // clean).
            let mut cfg = PassiveConfig::from_scenario(&resolved);
            cfg.max_days = 0.25;
            cfg.sites.truncate(1);
            cfg.constellations.truncate(1);
            let mut serial_cfg = cfg.clone();
            serial_cfg.parallel = false;
            cfg.parallel = true;
            let serial = PassiveCampaign::new(serial_cfg).run(opts);
            let pooled = PassiveCampaign::new(cfg).run(opts);
            match (serial, pooled) {
                (Ok(x), Ok(y)) => {
                    if x.faults != y.faults {
                        Verdict::Mismatch(format!(
                            "serial faults [{}] != pooled faults [{}]",
                            x.faults, y.faults
                        ))
                    } else if x.faults.is_clean() {
                        Verdict::Clean
                    } else {
                        Verdict::Degraded
                    }
                }
                (Err(x), Err(y)) => {
                    if x.to_string() == y.to_string() {
                        Verdict::Rejected
                    } else {
                        Verdict::Mismatch(format!("campaign rejected differently: [{x}] vs [{y}]"))
                    }
                }
                (x, y) => Verdict::Mismatch(format!(
                    "drivers disagree on acceptance: {} vs {}",
                    ok_or_err(&x),
                    ok_or_err(&y)
                )),
            }
        }
        (a, b) => Verdict::Mismatch(format!(
            "parse replay disagrees on acceptance: {} vs {}",
            ok_or_err(&a),
            ok_or_err(&b)
        )),
    }
}

/// Family 3: component-level damage — corrupted pass lists through
/// sanitisation and both schedulers, degenerate beacon sampling, and
/// zero/odd-capacity store-and-forward buffers.
fn component_scenario(plan: &mut ChaosPlan) -> Verdict {
    let epoch = JulianDate(2_460_000.0);
    let jd = |s: f64| epoch.plus_seconds(s);

    // A handful of hourly passes, each field individually corruptible.
    let mut candidates: Vec<CandidatePass> = Vec::new();
    let n_passes = 2 + plan.index_in(4);
    for i in 0..n_passes {
        let mut start_s = i as f64 * 3_600.0;
        let mut dur_s = 600.0;
        if plan.chance(0.35) {
            start_s = plan.corrupt_f64(start_s);
        }
        if plan.chance(0.35) {
            dur_s = plan.corrupt_duration(dur_s);
        }
        let (a, l) = if plan.chance(0.15) {
            plan.note("pass=inverted");
            (start_s + dur_s, start_s)
        } else {
            (start_s, start_s + dur_s)
        };
        candidates.push(CandidatePass {
            sat_index: plan.index_in(3),
            pass: Pass {
                aos: jd(a),
                los: jd(l),
                tca: jd(0.5 * (a + l)),
                max_elevation_rad: plan.corrupt_elevation_rad(0.6),
                tca_range_km: 900.0,
            },
        });
    }

    let mut faults = FaultLog::default();
    let dropped = sanitize_candidates(&mut candidates, &mut faults);
    if dropped as u64 != faults.total() {
        return Verdict::Mismatch(format!(
            "sanitize dropped {dropped} but counted {} ({})",
            faults.total(),
            faults
        ));
    }
    candidates.sort_by(|a, b| a.pass.aos.0.total_cmp(&b.pass.aos.0));

    let stations = plan.corrupt_count(2);
    let schedules = [
        PredictiveScheduler.schedule(&candidates, stations),
        VanillaScheduler {
            dwell_s: plan.corrupt_duration(600.0),
            n_targets: 3,
            origin: epoch,
        }
        .schedule(&candidates, stations),
    ];
    for coverage in schedules.iter().flatten() {
        let p = &candidates[coverage.pass_idx].pass;
        let within = coverage.start.0.is_finite()
            && coverage.end.0.is_finite()
            && coverage.duration_s() >= 0.0
            && coverage.start >= p.aos
            && coverage.end <= p.los;
        if !within {
            return Verdict::Mismatch(format!(
                "coverage escaped its pass: [{:?}..{:?}] vs [{:?}..{:?}]",
                coverage.start, coverage.end, p.aos, p.los
            ));
        }
    }

    // Beacon sampling over a surviving (or freshly corrupted) pass.
    let probe = candidates.first().map(|c| c.pass).unwrap_or(Pass {
        aos: jd(0.0),
        los: jd(f64::NAN),
        tca: jd(300.0),
        max_elevation_rad: 0.6,
        tca_range_km: 900.0,
    });
    let beacons = beacon_times(&probe, plan.corrupt_duration(60.0), plan.corrupt_f64(5.0));
    for b in &beacons {
        if !(b.0.is_finite() && *b >= probe.aos && *b <= probe.los) {
            return Verdict::Mismatch(format!(
                "beacon {:?} outside pass [{:?}..{:?}]",
                b, probe.aos, probe.los
            ));
        }
    }

    // Store-and-forward conservation under interleaved push/pop with a
    // possibly-zero capacity.
    let capacity = plan.corrupt_count(4) as usize;
    let policy = if plan.chance(0.5) {
        DropPolicy::DropNewest
    } else {
        DropPolicy::DropOldest
    };
    let mut buf: StoreAndForward<u64> = StoreAndForward::new(capacity, policy);
    let mut popped = 0u64;
    let offers = 1 + plan.index_in(16) as u64;
    for i in 0..offers {
        buf.push(i);
        if plan.chance(0.4) && buf.pop().is_some() {
            popped += 1;
        }
    }
    let conserved = buf.offered == offers
        && buf.dropped + popped + buf.len() as u64 == offers
        && buf.len() <= capacity
        && buf.peak_depth <= capacity;
    if !conserved {
        return Verdict::Mismatch(format!(
            "buffer accounting broke: cap {capacity}, offered {}, dropped {}, \
             popped {popped}, resident {}, peak {}",
            buf.offered,
            buf.dropped,
            buf.len(),
            buf.peak_depth
        ));
    }

    if faults.is_clean() {
        Verdict::Clean
    } else {
        Verdict::Degraded
    }
}
