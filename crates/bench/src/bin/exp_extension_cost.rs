//! Extension E3: where does satellite IoT win on cost?
//!
//! The paper's Table 2 compares one deployment; this extension sweeps the
//! two axes that decide real procurement: sensor density (how many nodes
//! share one terrestrial gateway) and reporting rate, mapping the TCO
//! crossover frontier between the two architectures.

use satiot_econ::{
    crossover_month, satellite_cost, terrestrial_cost, Deployment, SatellitePricing,
    TerrestrialPricing,
};
use satiot_measure::table::{num, Table};

fn main() {
    let sat_pricing = SatellitePricing::default();
    let terr_pricing = TerrestrialPricing::default();

    let mut t = Table::new(
        "Extension E3: TCO crossover (months until terrestrial wins)",
        &[
            "Nodes/gateway",
            "4 pkt/day",
            "12 pkt/day",
            "48 pkt/day",
            "96 pkt/day",
        ],
    );
    for nodes in [1usize, 2, 5, 10, 25] {
        let mut cells = vec![nodes.to_string()];
        for rate in [4.0f64, 12.0, 48.0, 96.0] {
            let d = Deployment {
                nodes,
                gateways: 1,
                packets_per_node_day: rate,
                payload_bytes: 20,
            };
            let sat = satellite_cost(&sat_pricing, &d);
            let terr = terrestrial_cost(&terr_pricing, &d);
            cells.push(match crossover_month(&sat, &terr) {
                Some(m) if m < 120.0 => num(m, 1),
                Some(_) => ">10y".into(),
                None => {
                    if sat.total_usd(60.0) < terr.total_usd(60.0) {
                        "sat wins".into()
                    } else {
                        "terr wins".into()
                    }
                }
            });
        }
        t.row(&cells);
    }
    print!("{}", t.render());
    println!(
        "\nSatellite IoT holds a lasting cost edge only for sparse, quiet fleets\n\
         (one-ish nodes per would-be gateway at low reporting rates) — everywhere\n\
         else the gateway amortises within months. Coverage, not cost, is the\n\
         product (the paper's Appendix F conclusion, quantified)."
    );
}
