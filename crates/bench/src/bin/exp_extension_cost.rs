//! Extension E3: where does satellite IoT win on cost?
//!
//! The paper's Table 2 compares one deployment; this extension sweeps the
//! two axes that decide real procurement: sensor density (how many nodes
//! share one terrestrial gateway) and reporting rate, mapping the TCO
//! crossover frontier between the two architectures.
//!
//! The crossover table prices *transmitted* packets. The second half
//! re-anchors it in *delivered* packets: a multi-seed campaign sweep —
//! run through [`satiot_core::sweep_server`], so the seeds share one
//! set of pass lists and ephemeris grids, and `SATIOT_SWEEP_DIR` makes
//! the sweep resumable — measures each constellation's delivery ratio,
//! and the satellite cost per delivered kilobyte inflates by its
//! inverse. Unreliable links are a cost axis, not just a coverage one.

use satiot_core::prelude::*;
use satiot_econ::{
    crossover_month, satellite_cost, terrestrial_cost, Deployment, SatellitePricing,
    TerrestrialPricing,
};
use satiot_measure::table::{num, Table};

fn main() {
    let opts = RunOptions::from_env().apply();
    let sat_pricing = SatellitePricing::default();
    let terr_pricing = TerrestrialPricing::default();

    let mut t = Table::new(
        "Extension E3: TCO crossover (months until terrestrial wins)",
        &[
            "Nodes/gateway",
            "4 pkt/day",
            "12 pkt/day",
            "48 pkt/day",
            "96 pkt/day",
        ],
    );
    for nodes in [1usize, 2, 5, 10, 25] {
        let mut cells = vec![nodes.to_string()];
        for rate in [4.0f64, 12.0, 48.0, 96.0] {
            let d = Deployment {
                nodes,
                gateways: 1,
                packets_per_node_day: rate,
                payload_bytes: 20,
            };
            let sat = satellite_cost(&sat_pricing, &d);
            let terr = terrestrial_cost(&terr_pricing, &d);
            cells.push(match crossover_month(&sat, &terr) {
                Some(m) if m < 120.0 => num(m, 1),
                Some(_) => ">10y".into(),
                None => {
                    if sat.total_usd(60.0) < terr.total_usd(60.0) {
                        "sat wins".into()
                    } else {
                        "terr wins".into()
                    }
                }
            });
        }
        t.row(&cells);
    }
    print!("{}", t.render());

    // --- Measured delivery ratios: a seed sweep through the server. ---
    let seed = PassiveConfig::default().seed;
    let jobs: Vec<SweepJob> = (0..5)
        .map(|i| {
            SweepJob::new(format!("cost-seed-{i}"), seed + i)
                .with_max_days(2.0)
                .with_sites(["HK"])
        })
        .collect();
    let outcome = SweepServer::new(opts)
        .run(&jobs)
        .expect("delivery-ratio sweep runs");

    // The reference deployment from the table's sparse corner, priced
    // over five years.
    let d = Deployment {
        nodes: 1,
        gateways: 1,
        packets_per_node_day: 12.0,
        payload_bytes: 20,
    };
    let months = 60.0;
    let sat_usd = satellite_cost(&sat_pricing, &d).total_usd(months);
    let transmitted_kb =
        d.nodes as f64 * d.packets_per_node_day * d.payload_bytes as f64 * 30.44 * months / 1024.0;

    let mut t = Table::new(
        "Extension E3b: measured delivery ratio vs. cost per *delivered* kB \
         (1 node, 12 pkt/day, 5 years)",
        &[
            "Constellation",
            "delivery ratio",
            "$/kB sent",
            "$/kB delivered",
        ],
    );
    let constellations: Vec<&str> = outcome.records[0]
        .constellations
        .iter()
        .map(|c| c.constellation.as_str())
        .collect();
    for name in constellations {
        let (mut received, mut transmitted) = (0u64, 0u64);
        for record in &outcome.records {
            let c = record
                .constellations
                .iter()
                .find(|c| c.constellation == name)
                .expect("catalog is identical across seeds");
            received += c.received;
            transmitted += c.transmitted;
        }
        let ratio = received as f64 / transmitted.max(1) as f64;
        let per_kb_sent = sat_usd / transmitted_kb;
        let per_kb_delivered = per_kb_sent / ratio.max(1e-9);
        t.row(&[
            name.to_string(),
            num(ratio, 3),
            num(per_kb_sent, 2),
            num(per_kb_delivered, 2),
        ]);
    }
    print!("{}", t.render());
    let warm_hits: u64 = outcome.records.iter().map(|r| r.cache.pass_hits()).sum();
    println!(
        "seed sweep: {} run, {} resumed; {warm_hits} pass lists served warm across seeds",
        outcome.jobs_run, outcome.jobs_resumed,
    );
    println!(
        "\nSatellite IoT holds a lasting cost edge only for sparse, quiet fleets\n\
         (one-ish nodes per would-be gateway at low reporting rates) — everywhere\n\
         else the gateway amortises within months. Coverage, not cost, is the\n\
         product (the paper's Appendix F conclusion, quantified) — and the\n\
         delivered-kB column shows lossy constellations erode even that edge."
    );
}
