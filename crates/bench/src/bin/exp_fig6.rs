//! Reproduces Figure 6: satellite-node energy (power, residency, drain)
//! and the 6d battery-lifetime projection.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let sat = runners::run_active(scale);
    let terrestrial = runners::run_terrestrial(scale);
    print!("{}", reports::fig6(&sat, &terrestrial));
}
