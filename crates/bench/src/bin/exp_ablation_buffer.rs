//! Ablation A3: node store-and-forward buffer sizing vs. data loss
//! (the paper's §3.1 buffer-sizing guidance, quantified).

use satiot_bench::{runners, Scale};
use satiot_measure::table::{pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Ablation A3: node buffer capacity vs loss",
        &["Buffer (packets)", "reliability", "buffer drop ratio"],
    );
    for capacity in [2usize, 4, 8, 16, 64] {
        let r = runners::run_active_with(scale, |c| c.buffer_capacity = capacity);
        let drops = r.node_drop_ratio.iter().sum::<f64>() / r.node_drop_ratio.len() as f64;
        t.row(&[capacity.to_string(), pct(r.reliability()), pct(drops)]);
    }
    print!("{}", t.render());
    println!("\nThe buffer must ride out the longest effective inter-contact gap;\nundersizing converts contact intermittency directly into data loss.");
}
