//! Ablation A1: the paper's customised predictive scheduler vs. the
//! vanilla TinyGS rotation — how much measurement coverage does
//! pass-aware assignment buy?

use satiot_bench::Scale;
use satiot_core::prelude::*;
use satiot_measure::table::{num, Table};

fn main() {
    let scale = Scale::from_env();
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let days = scale.passive_days().min(14.0);
    let mut t = Table::new(
        "Ablation A1: scheduler policy vs. captured measurements",
        &[
            "Scheduler",
            "traces",
            "covered passes",
            "Tianqi eff. contact (min)",
        ],
    );
    for (label, kind) in [
        ("Predictive (paper's custom)", SchedulerKind::Predictive),
        (
            "Vanilla TinyGS (600 s dwell)",
            SchedulerKind::Vanilla { dwell_s: 600.0 },
        ),
        (
            "Vanilla TinyGS (1800 s dwell)",
            SchedulerKind::Vanilla { dwell_s: 1_800.0 },
        ),
    ] {
        let mut cfg = PassiveConfig::quick(days);
        cfg.scheduler = kind;
        // One representative site keeps the ablation fast.
        cfg.sites.retain(|s| s.code == "HK");
        let results = PassiveCampaign::new(cfg).run(&opts).unwrap();
        let covered = results.covered_passes().count();
        let stats = results.contact_stats_covered("Tianqi", &[]);
        t.row(&[
            label.to_string(),
            results.traces.len().to_string(),
            covered.to_string(),
            num(stats.effective_min.mean, 1),
        ]);
    }
    print!("{}", t.render());
    println!("\nPass-aware scheduling is what makes precise window measurement possible (§2.2).");
}
