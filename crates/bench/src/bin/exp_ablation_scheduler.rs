//! Ablation A1: the paper's customised predictive scheduler vs. the
//! vanilla TinyGS rotation — how much measurement coverage does
//! pass-aware assignment buy?
//!
//! First real consumer of [`satiot_core::sweep_server`]: the three
//! scheduler policies are one job queue over an identical (site,
//! constellation, window) scenario, so the second and third jobs reuse
//! the first job's pass lists and ephemeris grids — the scheduler is
//! not part of the pass-cache key — instead of re-predicting them. The
//! per-job cache attribution printed at the end proves it.

use satiot_bench::Scale;
use satiot_core::prelude::*;
use satiot_measure::table::{num, Table};

fn main() {
    let scale = Scale::from_env();
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let days = scale.passive_days().min(14.0);
    // One representative site keeps the ablation fast; the seed is the
    // campaign default, so this reproduces the pre-server binary.
    let seed = PassiveConfig::default().seed;
    let jobs: Vec<SweepJob> = [
        ("Predictive (paper's custom)", SchedulerKind::Predictive),
        (
            "Vanilla TinyGS (600 s dwell)",
            SchedulerKind::Vanilla { dwell_s: 600.0 },
        ),
        (
            "Vanilla TinyGS (1800 s dwell)",
            SchedulerKind::Vanilla { dwell_s: 1_800.0 },
        ),
    ]
    .into_iter()
    .map(|(label, kind)| {
        SweepJob::new(label, seed)
            .with_max_days(days)
            .with_scheduler(kind)
            .with_sites(["HK"])
    })
    .collect();
    let outcome = SweepServer::new(opts)
        .run(&jobs)
        .expect("scheduler ablation sweep runs");

    let mut t = Table::new(
        "Ablation A1: scheduler policy vs. captured measurements",
        &[
            "Scheduler",
            "traces",
            "covered passes",
            "Tianqi eff. contact (min)",
        ],
    );
    for record in &outcome.records {
        let covered: u64 = record.constellations.iter().map(|c| c.covered_passes).sum();
        let tianqi = record
            .constellations
            .iter()
            .find(|c| c.constellation == "Tianqi")
            .expect("Tianqi is in the catalog");
        t.row(&[
            record.job.tag.clone(),
            record.traces_total.to_string(),
            covered.to_string(),
            num(tianqi.effective_min_mean, 1),
        ]);
    }
    print!("{}", t.render());
    for record in &outcome.records {
        println!(
            "{:29} predicted {} pass lists, reused {} warm",
            record.job.tag,
            record.cache.pass_computes,
            record.cache.pass_hits(),
        );
    }
    println!("\nPass-aware scheduling is what makes precise window measurement possible (§2.2).");
}
