//! Reproduces Figure 3c: Tianqi RSSI vs. slant distance.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig3c(&passive));
}
