//! Reproduces Figure 4b: inter-contact interval expansion.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig4b(&passive));
}
