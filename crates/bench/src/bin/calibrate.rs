//! Calibration probe: prints the headline quantities next to the paper's
//! values so channel/protocol constants can be tuned. Not part of the
//! experiment set — use `reproduce_all` for the real tables.

use satiot_core::passive::theoretical_daily_hours;
use satiot_core::prelude::*;
use satiot_measure::latency::LatencyBreakdown;
use satiot_measure::stats::Summary;
use satiot_scenarios::constellations::tianqi;
use satiot_scenarios::sites::measurement_sites;
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

fn main() {
    let opts = RunOptions::from_env().apply();
    let days: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7.0);

    // --- Passive: HK only, all constellations. ---
    let hk = measurement_sites()
        .into_iter()
        .filter(|s| s.code == "HK")
        .collect::<Vec<_>>();
    #[allow(deprecated)] // calibration tweaks the literal config directly
    let mut pcfg = PassiveConfig::quick(days);
    pcfg.sites = hk.clone();
    let passive = PassiveCampaign::new(pcfg).run(&opts).unwrap();
    println!("=== PASSIVE (HK, {days} days) ===");
    println!("traces: {}", passive.traces.len());
    for c in ["Tianqi", "FOSSA", "PICO", "CSTP"] {
        println!(
            "  {c}: {} traces",
            passive.traces.by_constellation(c).count()
        );
    }
    for c in ["Tianqi", "FOSSA", "PICO", "CSTP"] {
        let all = passive.contact_stats(c, &[]);
        let cov = passive.contact_stats_covered(c, &[]);
        let rssi = Summary::of(&passive.traces.rssi_of(c));
        println!(
            "{c:7} win={:4}({:3}cov) outage={:3} th={:5.1}m eff={:4.1}m shrinkW={:4.1}% shrinkAll={:4.1}% \
             gapTh={:6.1}m gapEff={:6.1}m exp={:5.1}x rssi={:6.1} [{:6.1},{:6.1}]",
            all.total_windows,
            cov.total_windows,
            cov.outage_windows,
            cov.theoretical_min.mean,
            cov.effective_min.mean,
            cov.duration_shrink * 100.0,
            all.duration_shrink * 100.0,
            all.theoretical_interval_min.mean,
            all.effective_interval_min.mean,
            all.interval_expansion(),
            rssi.mean,
            rssi.p10,
            rssi.p90,
        );
    }
    // Reception concentration (paper: 70.4% in 30–70% of window).
    let pos = passive.reception_positions();
    let mid =
        pos.iter().filter(|p| (0.3..0.7).contains(*p)).count() as f64 / pos.len().max(1) as f64;
    println!(
        "mid-window (30-70%) reception share: {:.1}% (paper 70.4%)",
        mid * 100.0
    );
    // Tianqi daily theoretical hours (paper 18.5 h at 22 sats).
    let th = theoretical_daily_hours(&tianqi(), &hk[0], days.min(5.0) as u32);
    println!(
        "Tianqi theoretical h/day: {:.1} (paper 18.5)",
        th.iter().sum::<f64>() / th.len() as f64
    );
    // Beacon loss per contact (paper: >50% dropped even sunny).
    let ratios: Vec<f64> = passive
        .covered_passes()
        .filter(|p| p.constellation == "Tianqi")
        .filter_map(|p| p.window.beacon_reception_ratio())
        .collect();
    println!(
        "Tianqi per-contact beacon reception ratio mean: {:.2} (paper <0.5)",
        Summary::of(&ratios).mean
    );

    // --- Active. ---
    let mut acfg = ActiveConfig::quick(days);
    acfg.seed = 42;
    let active = ActiveCampaign::new(acfg).run(&opts).unwrap();
    let b = LatencyBreakdown::compute(&active.timelines);
    println!("\n=== ACTIVE ({days} days) ===");
    println!(
        "sent={} delivered={}",
        active.sent.len(),
        active.delivered_seqs.len()
    );
    println!(
        "reliability: {:.1}% (paper ~96% with retx)",
        active.reliability() * 100.0
    );
    println!(
        "latency: wait={:.1} dts={:.1} delivery={:.1} e2e={:.1} min (paper 55.2/10.4/56.9/135.2)",
        b.wait_min.mean, b.dts_min.mean, b.delivery_min.mean, b.end_to_end_min.mean
    );
    println!("mean attempts: {:.2}", active.mean_attempts());
    let no_retx_share = active.sent.iter().filter(|p| p.attempts == 1).count() as f64
        / active.sent.iter().filter(|p| p.attempts > 0).count().max(1) as f64;
    println!(
        "share with no retx: {:.1}% (paper ~50%)",
        no_retx_share * 100.0
    );
    println!("counters: {:?}", active.counters);
    let acc = &active.node_energy[0];
    use satiot_energy::profile::SatNodeMode;
    println!(
        "node0 residency: sleep={:.1}% rx={:.2}% tx={:.3}% avg_power={:.1} mW",
        acc.time_fraction(SatNodeMode::Sleep) * 100.0,
        acc.time_fraction(SatNodeMode::McuRx) * 100.0,
        acc.time_fraction(SatNodeMode::McuTx) * 100.0,
        acc.average_power_mw()
    );

    // --- Terrestrial. ---
    let terr = TerrestrialCampaign::new(TerrestrialConfig {
        days,
        ..Default::default()
    })
    .run()
    .expect("default terrestrial config is valid");
    let tb = LatencyBreakdown::compute(&terr.timelines);
    println!("\n=== TERRESTRIAL ({days} days) ===");
    println!("reliability: {:.2}%", terr.reliability() * 100.0);
    println!("e2e latency: {:.2} min (paper 0.2)", tb.end_to_end_min.mean);
    let tacc = &terr.node_energy[0];
    println!("avg power: {:.2} mW", tacc.average_power_mw());
    println!(
        "ratio sat/terr avg power (bench profile): {:.1}x",
        acc.average_power_mw() / tacc.average_power_mw()
    );
    // Deployment-grade lifetime projection (Fig 6d).
    use satiot_energy::battery::Battery;
    use satiot_energy::profile::{SatNodeDeploymentProfile, TerrestrialDeploymentProfile};
    let sat_deploy = acc.re_profile(&SatNodeDeploymentProfile);
    let terr_deploy = tacc.re_profile(&TerrestrialDeploymentProfile);
    let pack = Battery::paper_5ah();
    let sat_days = pack.lifetime_days(sat_deploy.average_power_mw());
    let terr_days = pack.lifetime_days(terr_deploy.average_power_mw());
    println!(
        "deployment lifetimes: sat {:.0} d, terr {:.0} d, ratio {:.1}x (paper 48/718/14.9x)",
        sat_days,
        terr_days,
        terr_days / sat_days
    );
    println!(
        "e2e latency ratio: {:.0}x (paper 643.6x)",
        b.end_to_end_min.mean / tb.end_to_end_min.mean
    );

    let cache = satiot_core::sweep::stats();
    println!(
        "\npass cache: {} lookups, {} computed, {} served from cache ({} entries)",
        cache.lookups,
        cache.computes,
        cache.hits(),
        cache.entries
    );
}
