//! Ablation A7: spreading-factor choice on the DtS link.
//!
//! Higher SFs buy 2.5 dB of sensitivity per step — but on a LEO link the
//! Doppler *drift* during the (exponentially longer) packet eats the gain
//! back, and airtime-proportional footprint collisions take the rest.
//! This sweep shows why operational DtS systems sit near SF10, and how
//! TLE pre-compensation (ablation A6) moves the optimum.

use satiot_measure::stats::Summary;
use satiot_measure::table::{num, Table};
use satiot_phy::airtime::airtime_s;
use satiot_phy::doppler::{compensated_penalty_db, total_penalty_db};
use satiot_phy::params::{LoRaConfig, SpreadingFactor};
use satiot_phy::per::packet_success_probability;
use satiot_phy::sensitivity::demod_threshold_db;

/// Representative DtS geometries for a Tianqi-class pass: (physical SNR
/// in the shared 125 kHz bandwidth — identical for every SF — Doppler
/// offset Hz, drift Hz/s).
const GEOMETRIES: &[(f64, f64, f64)] = &[
    (-10.0, 6_500.0, -45.0),  // High elevation, gentle drift.
    (-13.0, 4_000.0, -140.0), // Culmination: worst drift.
    (-16.0, 8_500.0, -60.0),  // Window edge: weakest signal.
];

fn main() {
    let mut t = Table::new(
        "Ablation A7: spreading factor on a LEO DtS link (30 B beacon)",
        &[
            "SF",
            "airtime (ms)",
            "threshold (dB)",
            "P(decode) raw",
            "P(decode) compensated",
        ],
    );
    for sf in SpreadingFactor::ALL {
        let cfg = LoRaConfig {
            sf,
            ..LoRaConfig::dts_beacon()
        };
        let airtime_ms = airtime_s(&cfg, 30) * 1_000.0;
        let mut raw = Vec::new();
        let mut comp = Vec::new();
        for &(snr, offset, rate) in GEOMETRIES {
            // The SNR is a property of the link, not the SF (same RSSI,
            // same 125 kHz noise floor); the PER curve applies each SF's
            // own demodulation threshold.
            raw.push(match total_penalty_db(&cfg, 30, offset, rate) {
                Some(pen) => packet_success_probability(&cfg, 30, snr - pen),
                None => 0.0,
            });
            comp.push(match compensated_penalty_db(&cfg, 30, offset, rate) {
                Some(pen) => packet_success_probability(&cfg, 30, snr - pen),
                None => 0.0,
            });
        }
        t.row(&[
            format!("SF{}", sf.value()),
            num(airtime_ms, 0),
            num(demod_threshold_db(sf), 1),
            num(Summary::of(&raw).mean, 3),
            num(Summary::of(&comp).mean, 3),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nUncompensated, the drift tax flattens (and eventually inverts) the\n\
         sensitivity gain above SF10 — the operating point the measured DtS\n\
         constellations use. With TLE pre-compensation the higher SFs keep\n\
         their sensitivity, shifting the optimum toward SF11-12."
    );
}
