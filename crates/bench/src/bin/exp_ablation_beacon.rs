//! Ablation A4: satellite beacon interval vs. effective-window detection
//! — how beacon cadence shapes what a passive observer can measure.

use satiot_bench::Scale;
use satiot_core::prelude::*;
use satiot_measure::table::{num, pct, Table};

fn main() {
    let scale = Scale::from_env();
    let opts = RunOptions::from_env().with_scale(scale).apply();
    let days = scale.passive_days().min(10.0);
    let mut t = Table::new(
        "Ablation A4: Tianqi beacon interval vs measured windows",
        &[
            "Beacon interval (s)",
            "traces",
            "eff. contact (min)",
            "measured shrink",
        ],
    );
    for interval in [15.0f64, 30.0, 60.0, 120.0] {
        #[allow(deprecated)] // ablation sweeps the literal config directly
        let mut cfg = PassiveConfig::quick(days);
        cfg.sites.retain(|s| s.code == "HK");
        cfg.constellations.retain(|c| c.name == "Tianqi");
        for c in &mut cfg.constellations {
            c.beacon_interval_s = interval;
        }
        let results = PassiveCampaign::new(cfg).run(&opts).unwrap();
        let stats = results.contact_stats_covered("Tianqi", &[]);
        t.row(&[
            num(interval, 0),
            results.traces.len().to_string(),
            num(stats.effective_min.mean, 1),
            pct(stats.duration_shrink),
        ]);
    }
    print!("{}", t.render());
    println!("\nSparser beacons under-sample the window: the measured effective duration\nshrinks with cadence even though the RF channel is identical.");
}
