//! Ablation A6: TLE-based Doppler pre-compensation — the DtS optimisation
//! the paper's conclusion calls for. How much reliability and how many
//! retransmissions does Doppler actually cost, and does compensation let
//! higher (more sensitive) spreading factors pay off?

use satiot_bench::{runners, Scale};
use satiot_measure::latency::LatencyBreakdown;
use satiot_measure::table::{num, pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Ablation A6: Doppler pre-compensation on the DtS link",
        &[
            "Mode",
            "reliability",
            "mean attempts",
            "uplink success",
            "e2e latency (min)",
        ],
    );
    for (label, comp) in [
        ("uncompensated (paper)", false),
        ("TLE pre-compensated", true),
    ] {
        let r = runners::run_active_with(scale, |c| c.doppler_compensation = comp);
        let b = LatencyBreakdown::compute(&r.timelines);
        let up = if r.counters.uplinks_tx == 0 {
            0.0
        } else {
            r.counters.uplinks_ok as f64 / r.counters.uplinks_tx as f64
        };
        t.row(&[
            label.to_string(),
            pct(r.reliability()),
            num(r.mean_attempts(), 2),
            pct(up),
            num(b.end_to_end_min.mean, 1),
        ]);
    }
    print!("{}", t.render());
    println!("\nCompensation removes the drift tax that grows with spreading factor and");
    println!("airtime (satiot-phy::doppler), recovering link margin exactly where the");
    println!("DtS budget is thinnest — one of the paper's proposed future optimisations.");
}
