//! Reproduces Figure 3a: theoretical daily presence per constellation
//! across the four availability cities (pure orbital mechanics).

use satiot_bench::{reports, Scale};

fn main() {
    let scale = Scale::from_env();
    print!("{}", reports::fig3a(scale.availability_days()));
}
