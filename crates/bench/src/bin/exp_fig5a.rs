//! Reproduces Figure 5a: end-to-end reliability, terrestrial vs Tianqi
//! with and without retransmissions.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let terrestrial = runners::run_terrestrial(scale);
    let no_retx = runners::run_active_with(scale, |c| c.max_attempts = 1);
    let retx = runners::run_active(scale);
    print!("{}", reports::fig5a(&terrestrial, &no_retx, &retx));
}
