//! Reproduces Figure 10: terrestrial node per-mode power (profile data).

use satiot_bench::reports;

fn main() {
    print!("{}", reports::fig10());
}
