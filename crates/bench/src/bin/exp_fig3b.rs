//! Reproduces Figure 3b: beacon RSSI distributions per constellation.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig3b(&passive));
}
