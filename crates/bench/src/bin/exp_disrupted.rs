//! Disrupted communications: scripted terrestrial outages vs satellite
//! store-and-forward.
//!
//! The `disrupted_comms` scenario takes the whole terrestrial path —
//! gateways and backhaul — down for two scripted windows (day 1→2 and a
//! half-day starting day 4) while the satellite deployment keeps
//! store-and-forwarding. This binary runs both sides from the *same*
//! resolved scenario and pins the paper-motivated claims:
//!
//! * the outage gate sits **after** every stochastic draw, so the
//!   disrupted terrestrial run is bit-identical to the empty-outage
//!   baseline everywhere outside the scripted windows, and an
//!   empty-outage run *is* the baseline;
//! * the terrestrial path delivers **nothing** inside a window while
//!   the baseline run shows the traffic it would have carried;
//! * the satellite path delivers **more than zero** packets inside the
//!   windows — store-and-forward rides out the terrestrial disaster.
//!
//! Exits non-zero (panics) on any violation; CI runs `--smoke`, which
//! truncates to the first outage (3 days).

use satiot_core::prelude::*;
use satiot_terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

fn in_any(outages: &[OutageWindow], t_s: f64) -> bool {
    outages.iter().any(|w| w.contains(t_s))
}

fn main() {
    let opts = RunOptions::from_env().apply();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec = ScenarioSpec::disrupted_comms();
    if smoke {
        // Keep the first scripted outage, drop days 3..7.
        spec.max_days = Some(3.0);
        spec.outages.truncate(1);
    }
    let scenario = spec.build().expect("disrupted-comms scenario resolves");
    let outages = scenario.outages.clone();
    let outage_s: f64 = outages.iter().map(|w| w.end_s - w.start_s).sum();
    println!(
        "== exp_disrupted: {} — {:.1} day(s), {} outage window(s) totalling {:.1} h ==\n",
        scenario.name,
        scenario.max_days.unwrap_or_default(),
        outages.len(),
        outage_s / 3600.0,
    );

    // Terrestrial, with and without the scripted outages. Both configs
    // come from the same resolved scenario; the baseline just clears
    // the outage list.
    let disrupted_cfg = TerrestrialConfig::from_scenario(&scenario);
    let mut baseline_cfg = disrupted_cfg.clone();
    baseline_cfg.outages.clear();
    let disrupted = TerrestrialCampaign::new(disrupted_cfg)
        .run()
        .expect("disrupted terrestrial run");
    let baseline = TerrestrialCampaign::new(baseline_cfg)
        .run()
        .expect("baseline terrestrial run");

    // The gate must be surgical: identical traffic generation, and
    // bit-identical delivery everywhere the windows do not cover.
    assert_eq!(disrupted.sent.len(), baseline.sent.len(), "sent diverged");
    for (a, b) in disrupted.sent.iter().zip(&baseline.sent) {
        assert_eq!(a.seq, b.seq, "sequence diverged");
        assert_eq!(a.sent_s.to_bits(), b.sent_s.to_bits(), "send time diverged");
    }
    let mut blacked_out = 0usize;
    let mut would_have = 0usize;
    for (d, b) in disrupted.timelines.iter().zip(&baseline.timelines) {
        match (d.delivered_s, b.delivered_s) {
            (Some(x), Some(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "delivery time diverged");
                assert!(
                    !in_any(&outages, x),
                    "terrestrial delivered at {x:.0}s inside a scripted outage"
                );
            }
            (None, Some(y)) => {
                assert!(
                    in_any(&outages, y),
                    "delivery at {y:.0}s suppressed outside every outage window"
                );
                blacked_out += 1;
                would_have += 1;
            }
            (Some(x), None) => panic!("outage run delivered {x:.0}s where baseline did not"),
            (None, None) => {}
        }
        if let Some(y) = b.delivered_s {
            if in_any(&outages, y) {
                // counted above via the (None, Some) arm
                assert!(d.delivered_s.is_none());
            }
        }
    }
    assert!(
        blacked_out > 0,
        "no terrestrial delivery fell inside a scripted outage — the windows never bit"
    );

    // Satellite store-and-forward from the same scenario: the outages
    // are a terrestrial disaster, so the DtS path keeps delivering.
    let satellite = ActiveCampaign::new(ActiveConfig::from_scenario(&scenario))
        .run(&opts)
        .expect("satellite run");
    let sat_in_outage = satellite
        .timelines
        .iter()
        .filter_map(|t| t.delivered_s)
        .filter(|&t| in_any(&outages, t))
        .count();
    assert!(
        sat_in_outage > 0,
        "satellite path delivered nothing during the scripted terrestrial outage"
    );

    let t_rel = disrupted.reliability();
    let b_rel = baseline.reliability();
    assert!(
        t_rel < b_rel,
        "outages did not dent terrestrial reliability ({t_rel:.3} vs {b_rel:.3})"
    );
    println!(
        "terrestrial: {:>5} sent, reliability {:.3} with outages vs {:.3} baseline \
         ({} deliveries blacked out, {} the baseline carried in-window)",
        disrupted.sent.len(),
        t_rel,
        b_rel,
        blacked_out,
        would_have,
    );
    println!(
        "satellite:   {:>5} sent, reliability {:.3} — {} packets delivered inside the \
         terrestrial outage windows (store-and-forward)",
        satellite.sent.len(),
        satellite.reliability(),
        sat_in_outage,
    );

    println!("\nexp_disrupted: OK");
}
