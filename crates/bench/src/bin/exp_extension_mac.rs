//! Extension E2: constellation-aware slotted MAC (CosMAC-style) vs the
//! random-slot contention of today's DtS systems.
//!
//! The paper's §3.1 takeaway calls for collision management as fleets
//! grow; this extension quantifies what deterministic slot ownership buys
//! at increasing node density on one farm.

use satiot_bench::{runners, Scale};
use satiot_core::active::MacPolicy;
use satiot_measure::table::{pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Extension E2: uplink MAC policy vs collisions",
        &[
            "Nodes",
            "MAC",
            "uplinks",
            "collided",
            "collision rate",
            "reliability",
        ],
    );
    for nodes in [3u32, 10, 24] {
        for (label, mac) in [("random", MacPolicy::RandomSlot), ("TDMA", MacPolicy::Tdma)] {
            let r = runners::run_active_with(scale, |c| {
                c.nodes = nodes;
                c.mac = mac;
            });
            let rate = if r.counters.uplinks_tx == 0 {
                0.0
            } else {
                r.counters.uplinks_collided as f64 / r.counters.uplinks_tx as f64
            };
            t.row(&[
                nodes.to_string(),
                label.to_string(),
                r.counters.uplinks_tx.to_string(),
                r.counters.uplinks_collided.to_string(),
                pct(rate),
                pct(r.reliability()),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nAt 3 nodes the collision rate is the footprint-background floor; TDMA");
    println!("roughly halves the excess at 10-24 nodes. It cannot eliminate it: 24");
    println!("uplinks of ~0.6 s do not fit disjointly in a 10 s response window, so");
    println!("beyond ~15 nodes per beacon the window itself is the bottleneck — the");
    println!("constellation-wide scheduling problem CosMAC (MobiCom'24) attacks.");
}
