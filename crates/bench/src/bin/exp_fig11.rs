//! Reproduces Figure 11: terrestrial node time/energy breakdown.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let terrestrial = runners::run_terrestrial(Scale::from_env());
    print!("{}", reports::fig11(&terrestrial));
}
