//! Mobile-node workload: a maritime asset tracker steaming Hong Kong →
//! Manila under the Tianqi constellation.
//!
//! The `maritime_tracker` scenario carries an inline site with a
//! four-waypoint great-circle [`MobilityTrack`]. This binary resolves
//! it through [`ScenarioSpec::build`], discretises the track into
//! [`ObserverLeg`]s (waypoints always cut a leg, so no leg spans a
//! course change) and predicts every Tianqi contact with
//! [`PassPredictor::passes_over_legs`] — the moving-observer path that
//! bypasses the site-code-keyed pass cache entirely.
//!
//! Pinned invariants:
//!
//! * the legs tile the simulated span exactly (no gaps, chronological);
//! * the moving observer sees a non-empty, chronological pass set that
//!   stays inside the campaign window and above the mask;
//! * the contact plan *differs* from a fixed observer anchored at the
//!   departure berth — the ~1 000 km of steaming genuinely moves the
//!   geometry, which is the point of modelling mobility at all.
//!
//! Exits non-zero (panics) on any violation; CI runs `--smoke` (half a
//! day, first course change included).

use satiot_core::prelude::*;
use satiot_orbit::pass::PassPredictor;
use satiot_scenarios::mobility::DEFAULT_LEG_S;
use satiot_scenarios::sites::campaign_epoch;

// Theoretical contact mask, as in the passive campaign's TLE-style
// window accounting (full above-horizon arc).
const MASK_RAD: f64 = 0.0;

fn main() {
    let _opts = RunOptions::from_env().apply();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec = ScenarioSpec::maritime_tracker();
    if smoke {
        spec.max_days = Some(0.5);
    }
    let scenario = spec.build().expect("maritime-tracker scenario resolves");
    assert!(
        scenario.has_mobile_sites(),
        "the maritime scenario lost its mobility track"
    );
    let ship = &scenario.sites[0];
    let track = ship.track.as_ref().expect("SHIP carries a track");
    let days = scenario.max_days.unwrap_or(2.0);
    let window_s = days * 86_400.0;
    let epoch = campaign_epoch();

    let legs = track.legs(epoch, 0.0, window_s, DEFAULT_LEG_S);
    assert!(!legs.is_empty(), "track produced no legs");
    // The legs must tile the span: contiguous, chronological, bounded.
    assert_eq!(legs[0].start, epoch, "first leg must start at epoch");
    for pair in legs.windows(2) {
        assert_eq!(pair[0].end, pair[1].start, "gap between legs");
    }
    let tiled_s = legs.last().unwrap().end.seconds_since(epoch);
    assert!(
        (tiled_s - window_s).abs() < 1e-3,
        "legs tile {tiled_s:.3}s of a {window_s:.0}s span"
    );

    let tianqi = &scenario.constellations[0];
    println!(
        "== exp_mobile: {} — {:.1} day(s), {} sats, {} legs of ≤{:.0}s ==\n",
        scenario.name,
        days,
        tianqi.sat_count(),
        legs.len(),
        DEFAULT_LEG_S,
    );

    let berth = track.position_at(0.0);
    let mut moving_passes = 0usize;
    let mut moving_contact_s = 0.0;
    let mut fixed_passes = 0usize;
    let mut fixed_contact_s = 0.0;
    let mut geometry_moved = false;
    let horizon = epoch.plus_seconds(window_s);
    for def in tianqi.catalog(epoch) {
        let sgp4 = def.sgp4().expect("Tianqi catalog propagates");
        let predictor = PassPredictor::new(sgp4, berth, MASK_RAD);
        let moving = predictor
            .passes_over_legs(&legs)
            .expect("chronological legs scan cleanly");
        let fixed = predictor.passes(epoch, horizon);
        for pair in moving.windows(2) {
            assert!(pair[0].los <= pair[1].aos, "moving passes out of order");
        }
        for p in &moving {
            assert!(
                p.aos >= epoch && p.los <= horizon,
                "pass escaped the campaign window"
            );
            assert!(p.max_elevation_rad >= MASK_RAD, "pass below the mask");
        }
        // The ship steams ~1000 km; if every contact of this satellite
        // matched the berth-anchored plan to the second, mobility never
        // entered the geometry.
        if moving.len() != fixed.len()
            || moving
                .iter()
                .zip(&fixed)
                .any(|(m, f)| (m.aos.seconds_since(f.aos)).abs() > 1.0)
        {
            geometry_moved = true;
        }
        moving_passes += moving.len();
        moving_contact_s += moving.iter().map(|p| p.duration_s()).sum::<f64>();
        fixed_passes += fixed.len();
        fixed_contact_s += fixed.iter().map(|p| p.duration_s()).sum::<f64>();
    }
    assert!(moving_passes > 0, "the tracker never saw a satellite");
    assert!(
        geometry_moved,
        "moving-observer contact plan is identical to the berth-anchored one"
    );

    println!(
        "moving observer: {:>3} passes, {:>7.1} min contact",
        moving_passes,
        moving_contact_s / 60.0,
    );
    println!(
        "berth-anchored:  {:>3} passes, {:>7.1} min contact",
        fixed_passes,
        fixed_contact_s / 60.0,
    );
    let end = track.position_at(window_s.min(track.duration_s()));
    println!(
        "track: {:.1}°N {:.1}°E → {:.1}°N {:.1}°E over {:.1} h",
        berth.lat_rad.to_degrees(),
        berth.lon_rad.to_degrees(),
        end.lat_rad.to_degrees(),
        end.lon_rad.to_degrees(),
        track.duration_s().min(window_s) / 3600.0,
    );

    println!("\nexp_mobile: OK");
}
