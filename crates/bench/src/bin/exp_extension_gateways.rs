//! Extension E4: gateway redundancy in the terrestrial baseline.
//!
//! The paper deployed *three* gateways for three nodes without saying
//! why. This extension shows what redundancy buys once gateways are not
//! mains-powered lab hardware: with realistic uptime, a single gateway
//! forfeits the terrestrial architecture's headline ~100 % reliability.

use satiot_bench::{runners, Scale};
use satiot_measure::table::{pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Extension E4: gateway count x uptime vs terrestrial reliability",
        &[
            "Gateways",
            "uptime 100%",
            "uptime 90%",
            "uptime 70%",
            "uptime 50%",
        ],
    );
    for gateways in [1u32, 2, 3] {
        let mut cells = vec![gateways.to_string()];
        for uptime in [1.0f64, 0.9, 0.7, 0.5] {
            let r = runners::run_terrestrial_with(scale, |c| {
                c.gateways = gateways;
                c.gateway_distance_km = vec![0.4, 1.1, 2.0][..gateways as usize].to_vec();
                c.gateway_uptime = uptime;
            });
            cells.push(pct(r.reliability()));
        }
        t.row(&cells);
    }
    print!("{}", t.render());
    println!(
        "\nIndependent outages multiply away: three 70%-uptime gateways deliver the\n\
         ~100% the paper measured, one does not — redundancy, not gateway quality,\n\
         is what holds the terrestrial baseline's headline number up."
    );
}
