//! Reproduces Table 3: the constellation overview with trace counts.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::table3(&passive));
}
