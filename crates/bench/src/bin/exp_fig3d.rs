//! Reproduces Figure 3d: per-contact beacon reception by weather.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig3d(&passive));
}
