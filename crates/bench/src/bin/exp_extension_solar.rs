//! Extension E1: solar harvesting vs. the paper's battery verdict.
//!
//! The paper projects a 48-day battery life for a Tianqi node and flags
//! energy as the blocker for large-scale adoption (§3.2 takeaways). This
//! extension sizes the photovoltaic panel that removes the blocker.

use satiot_bench::{runners, Scale};
use satiot_energy::battery::Battery;
use satiot_energy::profile::SatNodeDeploymentProfile;
use satiot_energy::solar::{lifetime_with_solar_days, SolarPanel};
use satiot_measure::table::{num, Table};
use satiot_orbit::sun::daylight_fraction;
use satiot_orbit::time::JulianDate;
use satiot_scenarios::sites::yunnan_farm;

fn main() {
    let scale = Scale::from_env();
    let r = runners::run_active(scale);
    let avg_mw = r.node_energy[0]
        .re_profile(&SatNodeDeploymentProfile)
        .average_power_mw();
    let battery = Battery::paper_5ah();
    println!(
        "Simulated Tianqi node average draw: {:.1} mW (deployment profile)",
        avg_mw
    );
    // Cross-check the panel model's peak-sun-hours against the actual
    // solar geometry at the farm (March 2025).
    let march = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let day_frac = daylight_fraction(yunnan_farm(), march, 10.0);
    println!(
        "Solar geometry at the farm: {:.1} daylight hours/day (ephemeris), \
         vs {:.1} peak-sun-hours assumed by the panel model\n",
        day_frac * 24.0,
        SolarPanel::credit_card().peak_sun_hours
    );

    let mut t = Table::new(
        "Extension E1: panel size vs node lifetime (5 Ah battery)",
        &["Panel (cm^2)", "harvest (mW avg)", "lifetime (days)"],
    );
    for area in [0.0f64, 5.0, 10.0, 15.0, 30.0, 60.0] {
        let panel = SolarPanel {
            area_cm2: area,
            ..SolarPanel::credit_card()
        };
        let life = lifetime_with_solar_days(&battery, avg_mw, &panel);
        t.row(&[
            num(area, 0),
            num(panel.mean_power_mw(), 1),
            if life.is_finite() {
                num(life, 0)
            } else {
                "energy-neutral".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    let neutral = SolarPanel::area_for_neutrality_cm2(avg_mw, &SolarPanel::credit_card());
    println!(
        "\nEnergy neutrality needs {:.0} cm^2 of panel at Yunnan insolation — a\n\
         postage-stamp add-on removes the paper's principal adoption blocker.",
        neutral
    );
}
