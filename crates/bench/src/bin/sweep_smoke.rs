//! Kill/resume smoke for the sweep server's checkpoint contract.
//!
//! The `sweep_server` module promises that a killed sweep resumes
//! losing at most the one in-flight job, bit-identical to an
//! uninterrupted run. This smoke proves it the hard way:
//!
//! 1. Run the whole job queue uninterrupted in-process (no spill
//!    directory) — the reference results.
//! 2. Spawn this same binary as a worker child (`--worker <dir>`)
//!    running the same queue against a fresh spill directory, poll the
//!    directory until at least two checkpoints land, and SIGKILL the
//!    child mid-flight — no drain, no cleanup, exactly the crash the
//!    contract is about.
//! 3. Corrupt one surviving checkpoint byte to exercise the checksum
//!    rejection path.
//! 4. Resume the sweep in-process against the same directory, and
//!    assert: every intact checkpoint resumed instead of re-running,
//!    exactly the non-checkpointed jobs re-ran (lost work ≤ the one
//!    in-flight job plus the deliberately-corrupted file), the
//!    corrupted checkpoint was rejected by checksum, and both the
//!    per-job records and the merged sketch are bit-identical to the
//!    uninterrupted reference.

use satiot_core::prelude::*;
use satiot_core::sweep_server::{server_stats, SweepServer};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The queue both the reference and the worker run: one scenario
/// shared across seeds (so the sweep amortises predictions, like real
/// sweeps do), sized so a single job is long enough to kill mid-queue.
fn jobs() -> Vec<SweepJob> {
    (0..8)
        .map(|i| {
            SweepJob::new(format!("smoke-{i}"), 0x5EED + i)
                .with_max_days(1.5)
                .with_sites(["HK", "SH"])
        })
        .collect()
}

fn checkpoints_in(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    found.sort();
    found
}

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(flag) = args.next() {
        assert_eq!(flag, "--worker", "usage: sweep_smoke [--worker <dir>]");
        let dir = PathBuf::from(args.next().expect("--worker needs a directory"));
        let opts = RunOptions::from_env().apply();
        SweepServer::new(opts)
            .with_spill_dir(Some(&dir))
            .with_shard(None)
            .run(&jobs())
            .expect("worker sweep runs");
        return;
    }

    let opts = RunOptions::from_env().apply();
    let jobs = jobs();
    let dir = std::env::temp_dir().join(format!("satiot_sweep_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. The uninterrupted reference (checkpointing off; an inherited
    // SATIOT_SWEEP_DIR/SHARD must not leak into the experiment).
    let reference = SweepServer::new(opts)
        .with_spill_dir(None)
        .with_shard(None)
        .run(&jobs)
        .expect("reference sweep runs");
    assert_eq!(reference.records.len(), jobs.len());
    println!(
        "reference: {} jobs, {} merged traces",
        reference.records.len(),
        reference.merged.total,
    );

    // 2. Worker child against the spill directory; SIGKILL it once at
    // least two checkpoints have landed.
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(&exe)
        .arg("--worker")
        .arg(&dir)
        .spawn()
        .expect("spawn worker");
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed_mid_flight = loop {
        if checkpoints_in(&dir).len() >= 2 {
            child.kill().expect("SIGKILL worker");
            break true;
        }
        if child.try_wait().expect("poll worker").is_some() {
            // The whole queue finished before we could kill — on a fast
            // machine that's a legal (if toothless) outcome; the resume
            // assertions below still hold with zero lost jobs.
            break false;
        }
        assert!(
            Instant::now() < deadline,
            "worker produced no checkpoints within 120 s"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    let _ = child.wait();
    let survivors = checkpoints_in(&dir);
    println!(
        "worker {}: {} checkpoints survived",
        if killed_mid_flight {
            "SIGKILLed mid-flight"
        } else {
            "finished before the kill"
        },
        survivors.len(),
    );
    assert!(
        survivors.len() >= 2,
        "expected at least two surviving checkpoints, found {}",
        survivors.len()
    );

    // 3. Corrupt one survivor: flip a byte in the middle of the file.
    let victim = &survivors[0];
    let mut bytes = std::fs::read(victim).expect("read victim checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(victim, &bytes).expect("corrupt victim checkpoint");

    // 4. Resume and compare against the reference.
    let before = server_stats();
    let resumed = SweepServer::new(opts)
        .with_spill_dir(Some(&dir))
        .with_shard(None)
        .run(&jobs)
        .expect("resumed sweep runs");
    let stats = server_stats();
    let intact = survivors.len() - 1;
    println!(
        "resume: {} resumed, {} re-run, {} checkpoints rejected",
        resumed.jobs_resumed,
        resumed.jobs_run,
        stats.checkpoints_rejected - before.checkpoints_rejected,
    );
    assert_eq!(
        resumed.jobs_resumed, intact,
        "every intact checkpoint must resume"
    );
    assert_eq!(
        resumed.jobs_run,
        jobs.len() - intact,
        "exactly the non-checkpointed jobs must re-run"
    );
    assert_eq!(
        stats.checkpoints_rejected - before.checkpoints_rejected,
        1,
        "the corrupted checkpoint must be rejected by checksum"
    );
    assert_eq!(
        stats.jobs_resumed - before.jobs_resumed,
        intact as u64,
        "proof counters must agree with the outcome"
    );
    assert!(
        resumed.same_results(&reference),
        "resumed sweep diverged from the uninterrupted reference"
    );
    // The merged sketches specifically, stated as the contract words it.
    assert_eq!(
        resumed.merged, reference.merged,
        "merged sketches must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "sweep_smoke: OK ({} jobs, ≤1 job of work lost, results bit-identical)",
        jobs.len()
    );
}
