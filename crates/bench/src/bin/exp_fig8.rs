//! Reproduces Figure 8: DtS slant-distance distributions.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig8(&passive));
}
