//! Reproduces Figure 5d: Tianqi latency decomposition.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let sat = runners::run_active(Scale::from_env());
    print!("{}", reports::fig5d(&sat));
}
