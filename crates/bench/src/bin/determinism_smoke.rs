//! CI determinism smoke: a quick multi-site passive campaign run four
//! ways — serial, on the sweep pool, with the legacy per-site-thread
//! driver, and under both simulate kernels (SoA batched vs scalar) —
//! must produce bit-identical traces and pass records, and the
//! pass-prediction cache must have computed each list exactly once.
//! A further section pins the bounded-memory sink: the aggregating mode
//! retains zero traces (obs-counter-audited) yet sketches identically
//! across drivers, with quantiles inside the documented error band.
//! The final section pins the visibility-sweep kernels: the chunked
//! (auto-vectorised) horizon-margin sweep must yield bit-identical
//! campaigns to its scalar twin under the pooled, serial, *and* legacy
//! site-thread drivers (the pass cache is cleared between modes — it
//! does not key on the visibility knob). A cull section then proves the
//! spatial pre-cull stage is lossless: the culled run's pass set is
//! bit-identical to the unculled run's across drivers, with the
//! `orbit.cull.*` proof counters balancing exactly.
//!
//! The environment picks the baseline options (CI invokes this binary
//! once with `SATIOT_BATCH=0` and once with `SATIOT_BATCH=1`), but the
//! explicit batched-vs-scalar comparison below runs regardless, so even
//! a single invocation pins the kernel equivalence.
//!
//! Exits non-zero (panics) on any divergence, so the CI step is just
//! `cargo run --release -p satiot-bench --bin determinism_smoke`.

use satiot_core::prelude::*;
use satiot_core::sweep;
use satiot_measure::stats::nearest_rank_sorted;
use satiot_obs::metrics::{self, Counter};
use satiot_orbit::cull;

// Shared-slot view of the sink's retention counter (name-keyed).
static SINK_RETAINED: Counter = Counter::new("measure.sink.traces_retained");

fn config(parallel: bool) -> PassiveConfig {
    // The smoke campaign is itself expressed as a scenario spec — the
    // same typed front door the experiment binaries use — so the
    // determinism gates below also pin the spec→config path.
    let mut spec = ScenarioSpec::paper_passive();
    spec.max_days = Some(1.0);
    spec.sites = ["HK", "GZ", "SH"]
        .iter()
        .map(|code| SiteRef::Named((*code).to_string()))
        .collect();
    let scenario = spec.build().expect("catalog site codes resolve");
    let mut cfg = PassiveConfig::from_scenario(&scenario);
    cfg.parallel = parallel;
    cfg
}

fn assert_identical(label: &str, a: &PassiveResults, b: &PassiveResults) {
    assert_eq!(a.traces.len(), b.traces.len(), "{label}: trace counts");
    assert_eq!(a.passes.len(), b.passes.len(), "{label}: pass counts");
    for (x, y) in a.traces.traces.iter().zip(&b.traces.traces) {
        assert_eq!(x, y, "{label}: trace diverged");
    }
    for (x, y) in a.passes.iter().zip(&b.passes) {
        assert_eq!(
            x.covered_s.to_bits(),
            y.covered_s.to_bits(),
            "{label}: coverage diverged"
        );
        assert_eq!(x.station_up, y.station_up, "{label}: station_up diverged");
        assert_eq!(
            (x.window.received, x.window.transmitted),
            (y.window.received, y.window.transmitted),
            "{label}: window counts diverged"
        );
    }
    println!(
        "{label}: identical ({} traces, {} passes)",
        a.traces.len(),
        a.passes.len()
    );
}

fn main() {
    let opts = RunOptions::from_env().apply();
    println!(
        "determinism smoke: batch={:?} ephemeris={:?} visibility={:?}",
        opts.batch, opts.ephemeris, opts.visibility
    );
    sweep::clear();
    let pooled_a = PassiveCampaign::new(config(true)).run(&opts).unwrap();
    let pooled_b = PassiveCampaign::new(config(true)).run(&opts).unwrap();
    let serial = PassiveCampaign::new(config(false)).run(&opts).unwrap();
    #[allow(deprecated)] // Pins the legacy driver against the pool.
    let legacy = PassiveCampaign::new(config(true))
        .run_with_site_threads()
        .unwrap();

    assert_identical("pool vs pool", &pooled_a, &pooled_b);
    assert_identical("pool vs serial", &pooled_a, &serial);
    assert_identical("pool vs site-threads", &pooled_a, &legacy);

    // The SoA gather/scatter path must be a pure re-grouping of the
    // scalar arithmetic — same floating-point op order per element, same
    // RNG draw sequence — so the two kernels are compared bit-for-bit
    // here under the same ephemeris backend, whatever `SATIOT_BATCH`
    // selected as the baseline above.
    let batched = PassiveCampaign::new(config(true))
        .run(&opts.with_batch(BatchMode::On))
        .unwrap();
    let scalar = PassiveCampaign::new(config(true))
        .run(&opts.with_batch(BatchMode::Off))
        .unwrap();
    assert_identical("batched vs scalar", &batched, &scalar);
    assert_identical("batched vs baseline", &batched, &pooled_a);

    let cache = sweep::stats();
    println!(
        "pass cache: {} lookups, {} computed, {} served from cache ({} entries)",
        cache.lookups,
        cache.computes,
        cache.hits(),
        cache.entries
    );
    assert_eq!(
        cache.computes, cache.entries as u64,
        "a pass list was predicted more than once"
    );
    assert!(
        cache.hits() > 0,
        "repeat runs never hit the cache — keying is broken"
    );

    // Bounded-memory mode: the aggregating sink must not perturb the
    // simulation, must retain nothing (obs-counter-audited), and must
    // sketch identically across the serial and pooled drivers — the
    // sketch merge happens per site in configuration order, exactly
    // like the trace merge it replaces.
    let full = PassiveCampaign::new(config(true))
        .run(&opts.with_sink(SinkMode::Full))
        .unwrap();
    // Audit the bounded runs from a clean counter slate (the full run
    // above legitimately retained everything).
    metrics::set_enabled(true);
    metrics::reset();
    let agg_opts = opts.with_sink(SinkMode::Aggregate);
    let agg_pooled = PassiveCampaign::new(config(true)).run(&agg_opts).unwrap();
    let agg_serial = PassiveCampaign::new(config(false)).run(&agg_opts).unwrap();
    assert!(
        agg_pooled.traces.traces.is_empty(),
        "aggregate sink retained traces"
    );
    assert_eq!(agg_pooled.sink.retained, 0, "SinkStats counted retention");
    assert_eq!(
        SINK_RETAINED.value(),
        0,
        "obs counter says the bounded mode retained traces"
    );
    assert_eq!(
        agg_pooled.sink.emitted,
        full.traces.len() as u64,
        "aggregate run emitted a different trace count than the full run"
    );
    assert_eq!(
        agg_pooled.sketch, agg_serial.sketch,
        "serial and pooled aggregate sketches diverged"
    );
    assert_eq!(
        agg_pooled.sketch, full.sketch,
        "aggregate sketch diverged from the full run's own sketch"
    );
    assert_eq!(agg_pooled.passes.len(), full.passes.len());

    // Spot-check the accuracy contract: sketch quantiles within half a
    // bucket width of the exact nearest-rank statistic.
    let sketch = agg_pooled.sketch.as_ref().expect("aggregate run sketches");
    let g = &sketch.groups[0];
    let mut exact: Vec<f64> = full
        .traces
        .traces
        .iter()
        .filter(|t| t.constellation == g.constellation)
        .map(|t| t.rssi_dbm)
        .collect();
    exact.sort_by(|a, b| a.total_cmp(b));
    let band = g.rssi_dbm.quantiles.width() / 2.0 + 1e-9;
    for p in [10.0, 50.0, 90.0] {
        let est = g.rssi_dbm.quantiles.quantile(p);
        let truth = nearest_rank_sorted(&exact, p);
        assert!(
            (est - truth).abs() <= band,
            "{}: p{p} sketch {est} vs exact {truth} exceeds band {band}",
            g.constellation
        );
    }
    println!(
        "aggregate sink: 0 retained, {} emitted, sketches identical across drivers",
        agg_pooled.sink.emitted
    );

    let grids = sweep::grid_stats();
    println!(
        "ephemeris grids: {} lookups, {} built, {} served shared ({} entries)",
        grids.lookups,
        grids.computes,
        grids.hits(),
        grids.entries
    );
    assert_eq!(
        grids.computes, grids.entries as u64,
        "an ephemeris grid was sampled more than once"
    );
    if opts.ephemeris != EphemerisMode::Off {
        // HK and GZ start the same campaign day, so their satellites
        // share (satellite, window) grids across sites.
        assert!(
            grids.hits() > 0,
            "no grid was ever shared across observers — keying is broken"
        );
    }

    // Visibility-sweep kernel equivalence: the chunked (auto-vectorised)
    // horizon-margin sweep and its scalar twin evaluate the same inlined
    // margin arithmetic per lane, so whole campaigns must match
    // bit-for-bit under every driver. The pass cache does not key on the
    // visibility mode, so each mode starts from a cleared cache; the
    // legacy site-thread driver resolves the global latch, which
    // `apply()` pins before each batch.
    let mut per_mode: Vec<PassiveResults> = Vec::new();
    for mode in [VisibilityMode::Scalar, VisibilityMode::On] {
        sweep::clear();
        let mode_opts = opts.with_visibility(mode).apply();
        let pooled = PassiveCampaign::new(config(true)).run(&mode_opts).unwrap();
        let serial = PassiveCampaign::new(config(false)).run(&mode_opts).unwrap();
        assert_identical(
            &format!("visibility {mode:?}: pool vs serial"),
            &pooled,
            &serial,
        );
        if opts.visibility == mode {
            // The legacy driver resolves its options from the
            // environment, so it can only be pinned for the mode the
            // environment actually selected (CI covers the others by
            // re-running this binary under each `SATIOT_VISIBILITY`).
            #[allow(deprecated)] // Pins the legacy driver's kernel too.
            let legacy = PassiveCampaign::new(config(true))
                .run_with_site_threads()
                .unwrap();
            assert_identical(
                &format!("visibility {mode:?}: pool vs site-threads"),
                &pooled,
                &legacy,
            );
        }
        per_mode.push(pooled);
    }
    assert_identical("visibility scalar vs vector", &per_mode[0], &per_mode[1]);

    // Spatial pre-cull equivalence: culling only ever drops (site, sat)
    // pairs that geometry proves can never clear the horizon, so the
    // culled campaign's pass set must be bit-identical to the unculled
    // one under every driver. The proof counters must balance exactly
    // (considered == culled + kept) when the stage is on, and must not
    // move at all when it is off.
    let mut per_cull: Vec<PassiveResults> = Vec::new();
    for culling in [CullingMode::Off, CullingMode::On] {
        sweep::clear();
        cull::reset_stats();
        let mode_opts = opts.with_culling(culling).apply();
        let pooled = PassiveCampaign::new(config(true)).run(&mode_opts).unwrap();
        let serial = PassiveCampaign::new(config(false)).run(&mode_opts).unwrap();
        assert_identical(
            &format!("culling {culling:?}: pool vs serial"),
            &pooled,
            &serial,
        );
        if opts.culling == culling {
            // As above: the legacy driver re-reads the environment, so it
            // is pinned only for the mode `SATIOT_CULLING` selected.
            #[allow(deprecated)] // Pins the legacy driver under the cull too.
            let legacy = PassiveCampaign::new(config(true))
                .run_with_site_threads()
                .unwrap();
            assert_identical(
                &format!("culling {culling:?}: pool vs site-threads"),
                &pooled,
                &legacy,
            );
        }
        let stats = cull::stats();
        match culling {
            CullingMode::Off => assert_eq!(
                (
                    stats.pairs_considered,
                    stats.pairs_culled(),
                    stats.pairs_kept
                ),
                (0, 0, 0),
                "culling off must not touch the proof counters"
            ),
            CullingMode::On => {
                assert!(stats.pairs_considered > 0, "cull stage never consulted");
                assert_eq!(
                    stats.pairs_considered,
                    stats.pairs_culled() + stats.pairs_kept,
                    "cull proof counters do not balance"
                );
            }
        }
        println!(
            "culling {culling:?}: {} considered, {} culled, {} kept",
            stats.pairs_considered,
            stats.pairs_culled(),
            stats.pairs_kept
        );
        per_cull.push(pooled);
    }
    assert_identical("culling off vs on", &per_cull[0], &per_cull[1]);
    // Restore the environment-selected baseline latch for good measure.
    opts.apply();

    // Scenario-file determinism: the committed `tianqi_hk.scenario.json`
    // must load back to exactly the compiled-in scenario — equal spec,
    // equal fingerprint — and the campaign it configures must be
    // bit-identical to the compiled-in one under both the pooled and
    // serial drivers. This is the contract that lets sweep checkpoints
    // key on scenario fingerprints.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/tianqi_hk.scenario.json"
    );
    let loaded = ScenarioSpec::from_file(path).expect("committed scenario file loads");
    let builtin = ScenarioSpec::tianqi_hk();
    assert_eq!(loaded, builtin, "committed scenario drifted from builtin");
    assert_eq!(
        loaded.fingerprint(),
        builtin.fingerprint(),
        "scenario fingerprints diverged"
    );
    let loaded_scenario = loaded.build().expect("committed scenario resolves");
    let builtin_scenario = builtin.build().expect("builtin scenario resolves");
    assert_eq!(
        loaded_scenario.fingerprint, builtin_scenario.fingerprint,
        "resolved scenario fingerprints diverged"
    );
    sweep::clear();
    let from_file_pooled = PassiveCampaign::new(PassiveConfig::from_scenario(&loaded_scenario))
        .run(&opts)
        .unwrap();
    let from_file_serial = {
        let mut cfg = PassiveConfig::from_scenario(&loaded_scenario);
        cfg.parallel = false;
        PassiveCampaign::new(cfg).run(&opts).unwrap()
    };
    let from_builtin = PassiveCampaign::new(PassiveConfig::from_scenario(&builtin_scenario))
        .run(&opts)
        .unwrap();
    assert_identical("scenario file vs builtin", &from_file_pooled, &from_builtin);
    assert_identical(
        "scenario file: pool vs serial",
        &from_file_pooled,
        &from_file_serial,
    );
    println!(
        "scenario file: tianqi_hk fingerprint {:#018x} matches builtin",
        loaded.fingerprint()
    );

    println!("determinism smoke: OK");
}
