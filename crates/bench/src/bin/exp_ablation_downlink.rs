//! Ablation A5: downlink contact-capacity congestion.
//!
//! The paper's delivery segment (Fig 5d) assumes the operator drains a
//! satellite's buffer promptly once a ground station is in view. This
//! ablation sweeps the per-packet share of contact capacity — i.e. how
//! much other customer traffic shares the downlink — and shows delivery
//! latency collapsing from "next pass" to "hours of backlog".

use satiot_bench::{runners, Scale};
use satiot_measure::latency::LatencyBreakdown;
use satiot_measure::table::{num, pct, Table};

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Ablation A5: downlink service time vs delivery latency",
        &[
            "Service (s/pkt)",
            "delivery mean (min)",
            "delivery p90",
            "e2e mean",
            "reliability",
        ],
    );
    for service in [0.1f64, 30.0, 120.0, 300.0, 600.0] {
        let r = runners::run_active_with(scale, |c| c.downlink_service_s = service);
        let b = LatencyBreakdown::compute(&r.timelines);
        t.row(&[
            num(service, 1),
            num(b.delivery_min.mean, 1),
            num(b.delivery_min.p90, 1),
            num(b.end_to_end_min.mean, 1),
            pct(r.reliability()),
        ]);
    }
    print!("{}", t.render());
    println!("\nOnce per-packet service approaches the contact budget, backlog carries across");
    println!("passes and delivery latency departs from the paper's ~57 min toward hours —");
    println!("the congestion regime the paper warns about for growing fleets (§3.1).");
}
