//! Reproduces Table 2: the expenditure comparison (pure cost model).

use satiot_bench::reports;

fn main() {
    print!("{}", reports::table2());
}
