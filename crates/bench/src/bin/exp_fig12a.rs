//! Reproduces Figure 12a: reliability vs. payload size.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let runs: Vec<(usize, _)> = [10usize, 60, 120]
        .iter()
        .map(|&payload| {
            (
                payload,
                runners::run_active_with(scale, |c| c.payload_bytes = payload),
            )
        })
        .collect();
    let refs: Vec<(usize, &_)> = runs.iter().map(|(p, r)| (*p, r)).collect();
    print!("{}", reports::fig12a(&refs));
}
