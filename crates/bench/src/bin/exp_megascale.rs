//! Mega-constellation availability: simulation vs stochastic geometry.
//!
//! Validates the Walker-shell generator and the spatial pre-cull stage
//! at a scale the paper's 39-satellite catalogs never reach: an 8×8
//! Walker shell at 650 km / 60° (4×6 under `--smoke`) observed from
//! sites at five latitudes under two elevation masks. For every (site,
//! mask) cell the sweep-driven prediction pipeline (ephemeris grids,
//! culling on) measures
//!
//! * the **mean per-satellite visible fraction** — time above the mask
//!   averaged over the shell — against the closed-form
//!   [`single_sat_visibility_fraction`], the classic stochastic-geometry
//!   result `E_u[θ_max(φ_s(u)) / π]` for a circular-orbit satellite
//!   uniform on its track, and
//! * the **union availability** — fraction of time at least one
//!   satellite is visible — against [`union_availability`], the
//!   independence approximation `1 − (1 − p)^n`.
//!
//! Sites poleward of the shell's coverage band (|φ| > i + λ) must come
//! out *exactly* zero on both sides: the closed form sums hard zeros,
//! and the latitude-band cull must retire every pair before a single
//! grid interpolation, proven by the `orbit.cull.*` counters.
//!
//! The independence approximation ignores the phase correlation a
//! Walker layout is designed to create, so the union check uses an
//! absolute band while the per-satellite check (where the geometry is
//! exact and only time-sampling noise remains) uses a relative one.
//! Exits non-zero on any violation; CI runs `--smoke`.

use satiot_core::prelude::*;
use satiot_core::sweep;
use satiot_orbit::cull;
use satiot_orbit::frames::Geodetic;
use satiot_orbit::time::JulianDate;
use satiot_scenarios::walker::{
    single_sat_visibility_fraction, union_availability, WalkerConstellation, WalkerShell,
};

/// Fraction of the window covered by the union of the pass intervals.
fn union_fraction(mut intervals: Vec<(f64, f64)>, start: f64, end: f64) -> f64 {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut covered = 0.0;
    let mut cursor = start;
    for (a, b) in intervals {
        let (a, b) = (a.max(cursor), b.min(end));
        if b > a {
            covered += b - a;
            cursor = b;
        } else {
            cursor = cursor.max(b);
        }
    }
    covered / (end - start)
}

fn main() {
    let _opts = RunOptions::from_env().apply();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shell = WalkerShell {
        planes: if smoke { 4 } else { 8 },
        sats_per_plane: if smoke { 6 } else { 8 },
        altitude_km: 650.0,
        inclination_deg: 60.0,
        phasing: 1,
    };
    // The shell enters the pipeline the way scenario files declare it:
    // wrapped in an inline-Walker constellation and resolved through
    // `ScenarioSpec::build()`, so this binary exercises the same typed
    // front door (validation, interning, catalog generation) as a
    // `.scenario.json` with an inline constellation would.
    let mut spec = ScenarioSpec::paper_passive();
    spec.name = "megascale".to_string();
    spec.constellations = vec![ConstellationRef::Inline {
        walker: WalkerConstellation {
            name: "MEGA".to_string(),
            shells: vec![shell],
            frequency_mhz: 868.0,
            beacon_interval_s: 60.0,
        },
        tx_power_dbm: 22.0,
    }];
    let scenario = spec.build().expect("mega shell scenario resolves");
    let mega = &scenario.constellations[0];
    let days = if smoke { 1.0 } else { 2.0 };
    let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let (start, end) = (epoch, epoch + days);
    let window_s = days * 86_400.0;
    let sgp4s: Vec<satiot_orbit::sgp4::Sgp4> = mega
        .catalog(epoch)
        .iter()
        .map(|def| def.sgp4().expect("walker shell propagates"))
        .collect();
    let n = sgp4s.len() as u32;
    assert_eq!(n, shell.count(), "catalog count matches the shell");
    println!(
        "== exp_megascale: Walker {}x{} @ {} km / {} deg, {} day(s) ==\n",
        shell.planes, shell.sats_per_plane, shell.altitude_km, shell.inclination_deg, days,
    );
    println!(
        "{:>8} {:>6}  {:>9} {:>9} {:>7}   {:>9} {:>9} {:>7}  {:>9}",
        "mask", "lat", "p_sim", "p_theory", "rel", "A_sim", "A_theory", "abs", "culled",
    );

    let incl_rad = (shell.inclination_deg).to_radians();
    for mask_deg in [0.0_f64, 30.0] {
        let mask_rad = mask_deg.to_radians();
        for lat_deg in [0.0_f64, 25.0, 45.0, 70.0, 87.0] {
            let site = Geodetic::from_degrees(lat_deg, 8.0, 0.0);
            sweep::clear();
            cull::reset_stats();
            let mut frac_sum = 0.0;
            let mut intervals: Vec<(f64, f64)> = Vec::new();
            let mut total_passes = 0usize;
            for (s, sgp4) in sgp4s.iter().enumerate() {
                let predictor = sweep::predictor_with_mode(
                    EphemerisMode::On,
                    VisibilityMode::Off,
                    CullingMode::On,
                    sweep::GridKey::new("MEGA", s as u32, start, end),
                    sgp4,
                    site,
                    mask_rad,
                );
                let passes = predictor.map(|p| p.passes(start, end)).unwrap_or_default();
                total_passes += passes.len();
                frac_sum += passes.iter().map(|p| p.duration_s()).sum::<f64>() / window_s;
                intervals.extend(passes.iter().map(|p| (p.aos.0, p.los.0)));
            }
            let stats = cull::stats();
            let p_sim = frac_sum / n as f64;
            let a_sim = union_fraction(intervals, start.0, end.0);
            let p_theory =
                single_sat_visibility_fraction(site.lat_rad, incl_rad, shell.altitude_km, mask_rad);
            let a_theory = union_availability(p_theory, n);
            let rel = if p_theory > 0.0 {
                (p_sim - p_theory).abs() / p_theory
            } else {
                0.0
            };
            let abs = (a_sim - a_theory).abs();
            println!(
                "{:>7}° {:>5}°  {:>9.5} {:>9.5} {:>6.1}%   {:>9.5} {:>9.5} {:>7.3}  {:>4}/{:<4}",
                mask_deg,
                lat_deg,
                p_sim,
                p_theory,
                rel * 100.0,
                a_sim,
                a_theory,
                abs,
                stats.pairs_culled(),
                stats.pairs_considered,
            );
            assert_eq!(
                stats.pairs_considered, n as u64,
                "cull stage saw a different pair count than the shell"
            );
            if p_theory == 0.0 {
                // Outside the coverage band both sides must be hard
                // zeros, and the cull must have proven it without
                // touching a grid: every pair latitude-band-culled.
                assert_eq!(
                    total_passes, 0,
                    "site {lat_deg}° saw passes outside the coverage band"
                );
                assert_eq!(
                    stats.pairs_culled_lat_band, n as u64,
                    "site {lat_deg}° outside the band was not fully lat-band-culled"
                );
                assert_eq!(a_sim, 0.0, "union availability must be exactly zero");
                assert_eq!(a_theory, 0.0, "closed form must be exactly zero");
            } else if p_theory >= 1e-3 {
                // Where the closed form predicts meaningful coverage the
                // time-sampled simulation must agree to 25% relative —
                // the geometry is exact, only the finite window and the
                // shell's discrete phasing add noise.
                assert!(
                    rel <= 0.25,
                    "mask {mask_deg}° lat {lat_deg}°: per-satellite visible fraction \
                     {p_sim:.5} deviates {:.1}% from closed form {p_theory:.5}",
                    rel * 100.0,
                );
            }
            // The deviation is one-sided by construction: Walker phasing
            // anti-correlates coverage gaps, so the simulated union may
            // beat the independence approximation but never meaningfully
            // undershoot it. The short smoke window leaves more residual
            // phasing structure, hence its wider band.
            let union_band = if smoke { 0.22 } else { 0.12 };
            assert!(
                abs <= union_band,
                "mask {mask_deg}° lat {lat_deg}°: union availability {a_sim:.4} vs \
                 independence approximation {a_theory:.4} exceeds the {union_band} band"
            );
            assert!(
                a_sim >= a_theory - 0.02,
                "mask {mask_deg}° lat {lat_deg}°: union availability {a_sim:.4} fell \
                 below the independence approximation {a_theory:.4}"
            );
        }
    }
    sweep::clear();
    println!("\nexp_megascale: OK");
}
