//! Reproduces Figure 9: beacon receptions vs. window position.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig9(&passive));
}
