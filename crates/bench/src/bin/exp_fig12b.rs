//! Reproduces Figure 12b: reliability vs. concurrent senders.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let scale = Scale::from_env();
    let runs: Vec<(u32, _)> = [1u32, 2, 3]
        .iter()
        .map(|&nodes| (nodes, runners::run_active_with(scale, |c| c.nodes = nodes)))
        .collect();
    let refs: Vec<(u32, &_)> = runs.iter().map(|(n, r)| (*n, r)).collect();
    print!("{}", reports::fig12b(&refs));
}
