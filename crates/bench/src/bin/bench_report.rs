//! Predict-phase benchmark report: cold/warm × direct/ephemeris.
//!
//! Reproduces the campaign predict phase — every observer × every
//! satellite of a constellation over a shared scan window, driven
//! through the sweep pool and the shared pass cache exactly like
//! `PassiveCampaign`/`ActiveCampaign` — under both sampling backends:
//!
//! * **direct** (`SATIOT_EPHEMERIS=0` equivalent): every elevation query
//!   runs SGP4 + GMST + frame rotation.
//! * **ephemeris**: each satellite is propagated once onto a shared
//!   [`EphemerisGrid`]; all observers interpolate.
//!
//! Each backend is measured cold (empty pass cache and grid store) and
//! warm (immediately re-run, everything served from the cache). Work is
//! counted two ways: wall time and the always-on
//! `orbit.sgp4.propagations` proof counter, which cannot be fooled by
//! caching layers.
//!
//! Writes `BENCH_pass_prediction.json` and asserts the headline claim —
//! the ephemeris backend performs at least 3× fewer SGP4 propagations
//! than direct on the cold multi-observer sweep — so CI fails if the
//! optimisation regresses. `--smoke` runs a smaller catalog for CI.
//!
//! A second matrix measures the **simulate** phase: a warm-cache passive
//! sweep (pass lists precomputed, so wall time is the per-beacon channel
//! work) under the legacy scalar pipeline (`SATIOT_BATCH=0` +
//! `SATIOT_EPHEMERIS=0`, the pre-batching code path) versus the SoA
//! batch kernels over ephemeris grids. Writes `BENCH_simulate.json` and
//! asserts the batched path is at least 2× faster (1.5× under
//! `--smoke`, where the sweep is too short to amortise).
//!
//! A third matrix measures the **coarse-scan** phase in isolation: the
//! [`VisibilitySweep`] horizon-margin kernel over every satellite's
//! ephemeris grid with all observers in one SoA arena, scalar
//! (`SATIOT_VISIBILITY=scalar`) versus chunked/auto-vectorised lanes,
//! each cold (first sweep) and warm (best of repeats). The two kernels
//! must emit identical sign-change windows; writes
//! `BENCH_visibility.json` and asserts the chunked kernel clears a 2×
//! wall-time floor (1.4× under `--smoke`). The predict matrix above
//! pins `SATIOT_VISIBILITY=0` so both of its backends run the same
//! legacy coarse scan and stay pass-count-comparable.
//!
//! A fourth matrix measures the **spatial pre-cull** stage at
//! mega-constellation scale: a 10×36 Walker shell against 200
//! uniform-on-sphere sites (4×9 × 60 under `--smoke`), predicted with
//! `RunOptions::culling` off versus on. The two legs must agree
//! bit-for-bit on every pass; the `orbit.cull.*` proof counters must
//! show at least 5× fewer pairs surviving to grid interpolation, with a
//! wall-clock floor on the warm sweep. Writes `BENCH_culling.json`.
//!
//! A fifth matrix measures the **sweep server**: the same multi-seed
//! job queue run as sequential cold batches (caches cleared before
//! every job, the one-process-per-job workflow) versus one
//! `SweepServer` pass sharing pass lists and ephemeris grids across
//! jobs. Both legs must produce bit-identical job records and merged
//! sketches; writes `BENCH_sweep.json` and asserts the server clears a
//! 2× throughput floor (1.5× under `--smoke`).

use satiot_core::prelude::*;
use satiot_core::{calib, sweep};
use satiot_orbit::cull;
use satiot_orbit::ephemeris::{self, EphemerisGrid, EphemerisMode};
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::Pass;
use satiot_orbit::sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::topo::Observer;
use satiot_orbit::visibility::{self, SweepOutcome, VisibilitySweep};
use satiot_scenarios::constellations::{fossa, tianqi, SatelliteDef};
use satiot_scenarios::sites::{tianqi_ground_stations, yunnan_farm};
use satiot_scenarios::walker::WalkerShell;
use satiot_sim::pool;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One measured cell of the cold/warm × direct/ephemeris matrix.
struct Cell {
    backend: &'static str,
    phase: &'static str,
    wall_ms: f64,
    propagations: u64,
    pass_lists: usize,
    passes: usize,
}

/// Run the predict workload once: every (observer, satellite) pair
/// through the shared pass cache on the sweep pool, mirroring the
/// campaign predict phases.
fn predict_all(
    observers: &[(&'static str, Geodetic)],
    sats: &[(SatelliteDef, satiot_orbit::sgp4::Sgp4)],
    start: JulianDate,
    end: JulianDate,
    mask_rad: f64,
) -> Vec<Arc<Vec<Pass>>> {
    let tasks: Vec<(usize, usize)> = (0..observers.len())
        .flat_map(|o| (0..sats.len()).map(move |s| (o, s)))
        .collect();
    pool::parallel_map(&tasks, |_, &(o, s)| {
        let (name, site) = observers[o];
        let (sat, sgp4) = &sats[s];
        sweep::passes_for(
            sweep::PassKey::new(name, sat.constellation, sat.sat_id, start, end, mask_rad),
            || {
                sweep::sat_predictor(
                    sat.constellation,
                    sat.sat_id,
                    sgp4,
                    site,
                    mask_rad,
                    start,
                    end,
                )
            },
        )
    })
}

fn measure(
    backend: &'static str,
    mode: EphemerisMode,
    observers: &[(&'static str, Geodetic)],
    sats: &[(SatelliteDef, satiot_orbit::sgp4::Sgp4)],
    start: JulianDate,
    end: JulianDate,
    mask_rad: f64,
) -> (Cell, Cell) {
    ephemeris::set_mode(mode);
    // Pin the legacy coarse scan for both backends: the visibility sweep
    // legitimately finds short passes the adaptive scan can step over,
    // which would break this matrix's pass-count-equality check.
    visibility::set_mode(VisibilityMode::Off);
    sweep::clear();
    let mut cells = Vec::with_capacity(2);
    for phase in ["cold", "warm"] {
        sgp4::reset_propagations();
        let t0 = Instant::now();
        let lists = predict_all(observers, sats, start, end, mask_rad);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let propagations = sgp4::propagations();
        let passes: usize = lists.iter().map(|l| l.len()).sum();
        println!(
            "{backend:9} {phase:4}: {wall_ms:9.1} ms, {propagations:>9} propagations, \
             {} lists, {passes} passes",
            lists.len(),
        );
        cells.push(Cell {
            backend,
            phase,
            wall_ms,
            propagations,
            pass_lists: lists.len(),
            passes,
        });
    }
    let warm = cells.pop().expect("warm cell");
    let cold = cells.pop().expect("cold cell");
    (cold, warm)
}

/// One measured cell of the simulate matrix: a warm-cache passive sweep,
/// so wall time is dominated by the per-beacon simulate phase.
struct SimCell {
    config: &'static str,
    wall_ms: f64,
    propagations: u64,
    traces: usize,
    passes: usize,
}

fn simulate_config(smoke: bool) -> PassiveConfig {
    // Smoke keeps three sites over two days — long enough that the
    // measured walls dwarf scheduler jitter on a loaded CI runner.
    #[allow(deprecated)] // report harness tweaks the literal config directly
    let mut cfg = PassiveConfig::quick(if smoke { 2.0 } else { 3.0 });
    if smoke {
        cfg.sites.retain(|s| matches!(s.code, "HK" | "GZ" | "SH"));
    }
    cfg.parallel = true;
    cfg
}

fn measure_simulate(config: &'static str, opts: &RunOptions, smoke: bool) -> SimCell {
    // The pass cache is not keyed on the ephemeris backend, so each cell
    // starts from a clean slate and warms its own caches with a
    // throwaway run before the measured one. Visibility is pinned to the
    // legacy coarse scan so every cell simulates the identical pass
    // workload (the sweep finds short passes the adaptive scan misses,
    // which would skew the grid-backed cells).
    let opts = &opts.with_visibility(VisibilityMode::Off);
    sweep::clear();
    let warmup = PassiveCampaign::new(simulate_config(smoke))
        .run(opts)
        .expect("simulate-matrix config is valid");
    // Best of three repeats: the minimum wall is the least contaminated
    // by scheduler noise, which matters on shared CI runners.
    let mut wall_ms = f64::INFINITY;
    let mut propagations = 0;
    let mut results = warmup;
    for _ in 0..3 {
        sgp4::reset_propagations();
        let t0 = Instant::now();
        let rep = PassiveCampaign::new(simulate_config(smoke))
            .run(opts)
            .expect("simulate-matrix config is valid");
        let rep_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            rep.traces.len(),
            results.traces.len(),
            "{config}: repeat runs diverged"
        );
        if rep_ms < wall_ms {
            wall_ms = rep_ms;
            propagations = sgp4::propagations();
        }
        results = rep;
    }
    println!(
        "{config:9} warm: {wall_ms:9.1} ms, {propagations:>9} propagations, \
         {} traces, {} passes",
        results.traces.len(),
        results.passes.len(),
    );
    SimCell {
        config,
        wall_ms,
        propagations,
        traces: results.traces.len(),
        passes: results.passes.len(),
    }
}

/// One measured cell of the visibility coarse-scan matrix.
struct VisCell {
    kernel: &'static str,
    phase: &'static str,
    wall_ms: f64,
    points: usize,
    events: usize,
}

/// One measured cell of the mega-scale culling matrix.
struct CullCell {
    leg: &'static str,
    phase: &'static str,
    wall_ms: f64,
    pairs_considered: u64,
    pairs_culled: u64,
    pairs_kept: u64,
    passes: usize,
}

fn main() {
    let opts = RunOptions::from_env().apply();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke { fossa() } else { tianqi() };
    let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
    let days = 1.0;
    let mask_rad = calib::THEORETICAL_MASK_RAD;

    // The active campaign's observer set: 12 Tianqi ground stations plus
    // the Yunnan farm — 13 observers sharing each satellite's window.
    let mut observers = tianqi_ground_stations();
    observers.push(("YUNNAN_FARM", yunnan_farm()));

    let sats: Vec<(SatelliteDef, satiot_orbit::sgp4::Sgp4)> = spec
        .catalog(epoch)
        .into_iter()
        .map(|sat| {
            let sgp4 = sat.sgp4().expect("catalog elements propagate");
            (sat, sgp4)
        })
        .collect();
    println!(
        "bench_report: {} × {} sats × {} observers × {days} day(s)",
        spec.name,
        sats.len(),
        observers.len(),
    );

    let (start, end) = (epoch, epoch + days);
    let (d_cold, d_warm) = measure(
        "direct",
        EphemerisMode::Off,
        &observers,
        &sats,
        start,
        end,
        mask_rad,
    );
    let (e_cold, e_warm) = measure(
        "ephemeris",
        EphemerisMode::On,
        &observers,
        &sats,
        start,
        end,
        mask_rad,
    );
    // Leave the process-wide latches the way the environment asked.
    ephemeris::set_mode(opts.ephemeris);
    visibility::set_mode(opts.visibility);

    assert_eq!(
        d_cold.passes, e_cold.passes,
        "backends disagree on total pass count"
    );
    let ratio = d_cold.propagations as f64 / (e_cold.propagations.max(1)) as f64;
    let speedup = d_cold.wall_ms / e_cold.wall_ms.max(1e-9);
    println!("cold propagation ratio (direct/ephemeris): {ratio:.2}×, wall speedup {speedup:.2}×");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"constellation\": \"{}\",", spec.name);
    let _ = writeln!(json, "    \"satellites\": {},", sats.len());
    let _ = writeln!(json, "    \"observers\": {},", observers.len());
    let _ = writeln!(json, "    \"days\": {days},");
    let _ = writeln!(json, "    \"mask_deg\": {},", mask_rad.to_degrees());
    let _ = writeln!(json, "    \"smoke\": {smoke}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    let cells = [&d_cold, &d_warm, &e_cold, &e_warm];
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"phase\": \"{}\", \"wall_ms\": {:.3}, \
             \"sgp4_propagations\": {}, \"pass_lists\": {}, \"passes\": {}}}{}",
            c.backend,
            c.phase,
            c.wall_ms,
            c.propagations,
            c.pass_lists,
            c.passes,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"cold_propagation_ratio\": {ratio:.3},\n  \"cold_wall_speedup\": {speedup:.3}\n}}"
    );
    std::fs::write("BENCH_pass_prediction.json", &json).expect("write BENCH_pass_prediction.json");
    println!("wrote BENCH_pass_prediction.json");

    assert!(
        ratio >= 3.0,
        "ephemeris backend must cut SGP4 propagations at least 3× on the cold \
         multi-observer sweep (got {ratio:.2}×)"
    );
    assert!(
        e_warm.propagations == 0 && d_warm.propagations == 0,
        "warm re-runs must be served entirely from the pass cache"
    );

    // --- Visibility matrix: scalar vs chunked horizon-margin kernels. ---
    println!(
        "\nvisibility matrix ({} coarse scan, {} sats × {} observers):",
        if smoke { "smoke" } else { "full" },
        sats.len(),
        observers.len(),
    );
    let grids: Vec<EphemerisGrid> = sats
        .iter()
        .map(|(_, sgp4)| EphemerisGrid::build(sgp4, start, end))
        .collect();
    let mut arena = VisibilitySweep::new();
    for &(_, site) in &observers {
        arena.push(&Observer::new(site), mask_rad);
    }
    let sweep_all = |mode: VisibilityMode| -> Vec<Vec<SweepOutcome>> {
        grids
            .iter()
            .map(|grid| {
                arena
                    .run(grid, start, end, mode)
                    .expect("fully covered window sweeps")
            })
            .collect()
    };
    let repeats = if smoke { 5 } else { 3 };
    let mut vis_cells: Vec<VisCell> = Vec::new();
    let mut per_kernel: Vec<Vec<Vec<SweepOutcome>>> = Vec::new();
    for (kernel, mode) in [
        ("scalar", VisibilityMode::Scalar),
        ("chunked", VisibilityMode::On),
    ] {
        let t0 = Instant::now();
        let outcomes = sweep_all(mode);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut warm_ms = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let rep = sweep_all(mode);
            warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(rep, outcomes, "{kernel}: repeat sweeps diverged");
        }
        let points: usize = outcomes.iter().flatten().map(|o| o.points).sum();
        let events: usize = outcomes.iter().flatten().map(|o| o.events.len()).sum();
        for (phase, wall_ms) in [("cold", cold_ms), ("warm", warm_ms)] {
            println!(
                "{kernel:9} {phase:4}: {wall_ms:9.1} ms, {points:>9} margins, {events} events",
            );
            vis_cells.push(VisCell {
                kernel,
                phase,
                wall_ms,
                points,
                events,
            });
        }
        per_kernel.push(outcomes);
    }
    // The chunked kernel is an elementwise regrouping of the scalar
    // margin arithmetic, so the emitted windows must match exactly.
    assert_eq!(
        per_kernel[0], per_kernel[1],
        "scalar and chunked sweeps disagree on sign-change windows"
    );
    let vis_speedup = vis_cells[1].wall_ms / vis_cells[3].wall_ms.max(1e-9);
    println!("coarse-scan wall speedup (scalar/chunked, warm): {vis_speedup:.2}×");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"constellation\": \"{}\",", spec.name);
    let _ = writeln!(json, "    \"satellites\": {},", sats.len());
    let _ = writeln!(json, "    \"observers\": {},", observers.len());
    let _ = writeln!(json, "    \"days\": {days},");
    let _ = writeln!(json, "    \"mask_deg\": {},", mask_rad.to_degrees());
    let _ = writeln!(json, "    \"smoke\": {smoke}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in vis_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"phase\": \"{}\", \"wall_ms\": {:.3}, \
             \"margins\": {}, \"events\": {}}}{}",
            c.kernel,
            c.phase,
            c.wall_ms,
            c.points,
            c.events,
            if i + 1 < vis_cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"warm_wall_speedup\": {vis_speedup:.3}\n}}");
    std::fs::write("BENCH_visibility.json", &json).expect("write BENCH_visibility.json");
    println!("wrote BENCH_visibility.json");

    let vis_floor = if smoke { 1.4 } else { 2.0 };
    assert!(
        vis_speedup >= vis_floor,
        "chunked visibility kernel must be at least {vis_floor}× faster than \
         the scalar sweep on the warm coarse scan (got {vis_speedup:.2}×)"
    );

    // --- Culling matrix: mega-scale Walker shell, pre-cull off vs on. ---
    // A dense mid-inclination shell against sites spread uniformly over
    // the sphere: most (site, sat) pairs either sit outside the shell's
    // latitude band or never enter the footprint cone during the short
    // window, so the conservative pre-cull should retire the bulk of the
    // pair matrix before any grid interpolation. Both legs drive
    // `predictor_with_mode` exactly like the campaign predict phase
    // (shared per-satellite grids, per-pair coarse scans); the legacy
    // coarse scan is pinned so the legs stay comparable.
    let shell = WalkerShell {
        planes: if smoke { 4 } else { 10 },
        sats_per_plane: if smoke { 9 } else { 36 },
        altitude_km: 600.0,
        inclination_deg: 53.0,
        phasing: 1,
    };
    shell
        .validate()
        .expect("culling-matrix shell is well-formed");
    let mega: Vec<satiot_orbit::sgp4::Sgp4> = shell
        .elements(epoch)
        .iter()
        .map(|e| e.to_sgp4().expect("walker shell propagates"))
        .collect();
    let n_sites = if smoke { 60 } else { 200 };
    // Equal-area latitudes (uniform in sin φ) with golden-angle
    // longitudes: a deterministic stand-in for uniform global sites.
    let cull_sites: Vec<Geodetic> = (0..n_sites)
        .map(|k| {
            let z = 1.0 - 2.0 * (k as f64 + 0.5) / n_sites as f64;
            let lon = (k as f64 * 2.399_963_229_728_653) % std::f64::consts::TAU;
            Geodetic::new(z.asin(), lon, 0.0)
        })
        .collect();
    // The mask is authored in degrees and stays in degrees all the way
    // to the report; converting only at the predictor call site keeps
    // round-trip noise (14.999999999999998°) out of the committed JSON.
    let cull_mask_deg = 15.0_f64;
    let cull_mask = cull_mask_deg.to_radians();
    let (cs, ce) = (epoch, epoch + 0.03);
    println!(
        "\nculling matrix ({} Walker {}×{} @ {} km / {}° × {} sites, {cull_mask_deg}° mask):",
        if smoke { "smoke" } else { "full" },
        shell.planes,
        shell.sats_per_plane,
        shell.altitude_km,
        shell.inclination_deg,
        n_sites,
    );
    let predict_mega = |culling: CullingMode| -> Vec<Vec<Pass>> {
        let mut lists = Vec::with_capacity(cull_sites.len() * mega.len());
        for &site in &cull_sites {
            for (s, sgp4) in mega.iter().enumerate() {
                let predictor = sweep::predictor_with_mode(
                    EphemerisMode::On,
                    VisibilityMode::Off,
                    culling,
                    sweep::GridKey::new("MEGA", s as u32, cs, ce),
                    sgp4,
                    site,
                    cull_mask,
                );
                lists.push(predictor.map(|p| p.passes(cs, ce)).unwrap_or_default());
            }
        }
        lists
    };
    let cull_repeats = if smoke { 5 } else { 3 };
    let mut cull_cells: Vec<CullCell> = Vec::new();
    let mut per_leg: Vec<Vec<Vec<Pass>>> = Vec::new();
    for (leg, culling) in [("unculled", CullingMode::Off), ("culled", CullingMode::On)] {
        sweep::clear();
        cull::reset_stats();
        let t0 = Instant::now();
        let lists = predict_mega(culling);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Warm repeats are served the shared grids from the cache, so
        // the measured wall is the per-pair cull + coarse-scan work the
        // pre-cull exists to avoid.
        let mut warm_ms = f64::INFINITY;
        for _ in 0..cull_repeats {
            cull::reset_stats();
            let t0 = Instant::now();
            let rep = predict_mega(culling);
            warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(rep, lists, "{leg}: repeat sweeps diverged");
        }
        let stats = cull::stats();
        let passes: usize = lists.iter().map(|l| l.len()).sum();
        for (phase, wall_ms) in [("cold", cold_ms), ("warm", warm_ms)] {
            println!(
                "{leg:9} {phase:4}: {wall_ms:9.1} ms, {:>6} considered, {:>6} culled, \
                 {:>6} kept, {passes} passes",
                stats.pairs_considered,
                stats.pairs_culled(),
                stats.pairs_kept,
            );
            cull_cells.push(CullCell {
                leg,
                phase,
                wall_ms,
                pairs_considered: stats.pairs_considered,
                pairs_culled: stats.pairs_culled(),
                pairs_kept: stats.pairs_kept,
                passes,
            });
        }
        per_leg.push(lists);
    }
    sweep::clear();
    // The cull is conservative, so the two legs must agree bit-for-bit
    // on every (site, sat) pair's pass list — culled pairs included,
    // whose unculled lists must come back empty.
    for (i, (a, b)) in per_leg[0].iter().zip(&per_leg[1]).enumerate() {
        assert_eq!(a.len(), b.len(), "pair {i}: culling changed the pass count");
        for (x, y) in a.iter().zip(b) {
            assert!(
                x.aos.0.to_bits() == y.aos.0.to_bits()
                    && x.los.0.to_bits() == y.los.0.to_bits()
                    && x.tca.0.to_bits() == y.tca.0.to_bits()
                    && x.max_elevation_rad.to_bits() == y.max_elevation_rad.to_bits()
                    && x.tca_range_km.to_bits() == y.tca_range_km.to_bits(),
                "pair {i}: culled pass diverged from unculled"
            );
        }
    }
    let on_stats = (
        cull_cells[3].pairs_considered,
        cull_cells[3].pairs_culled,
        cull_cells[3].pairs_kept,
    );
    assert_eq!(
        on_stats.0,
        (cull_sites.len() * mega.len()) as u64,
        "cull stage saw a different pair matrix than the sweep"
    );
    assert_eq!(
        on_stats.0,
        on_stats.1 + on_stats.2,
        "proof counters do not balance"
    );
    assert_eq!(
        (
            cull_cells[0].pairs_considered,
            cull_cells[0].pairs_culled,
            cull_cells[0].pairs_kept
        ),
        (0, 0, 0),
        "culling off must not touch the proof counters"
    );
    let pair_ratio = on_stats.0 as f64 / on_stats.2.max(1) as f64;
    let cull_speedup = cull_cells[1].wall_ms / cull_cells[3].wall_ms.max(1e-9);
    println!(
        "pair ratio (considered/kept): {pair_ratio:.2}×, warm wall speedup {cull_speedup:.2}×"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(
        json,
        "    \"shell\": {{\"planes\": {}, \"sats_per_plane\": {}, \"altitude_km\": {}, \
         \"inclination_deg\": {}, \"phasing\": {}}},",
        shell.planes, shell.sats_per_plane, shell.altitude_km, shell.inclination_deg, shell.phasing,
    );
    let _ = writeln!(json, "    \"satellites\": {},", mega.len());
    let _ = writeln!(json, "    \"sites\": {n_sites},");
    let _ = writeln!(json, "    \"pairs\": {},", cull_sites.len() * mega.len());
    let _ = writeln!(json, "    \"window_days\": 0.03,");
    let _ = writeln!(json, "    \"mask_deg\": {cull_mask_deg},");
    let _ = writeln!(json, "    \"smoke\": {smoke}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cull_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"leg\": \"{}\", \"phase\": \"{}\", \"wall_ms\": {:.3}, \
             \"pairs_considered\": {}, \"pairs_culled\": {}, \"pairs_kept\": {}, \
             \"passes\": {}}}{}",
            c.leg,
            c.phase,
            c.wall_ms,
            c.pairs_considered,
            c.pairs_culled,
            c.pairs_kept,
            c.passes,
            if i + 1 < cull_cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"pair_ratio\": {pair_ratio:.3},\n  \"warm_wall_speedup\": {cull_speedup:.3}\n}}"
    );
    std::fs::write("BENCH_culling.json", &json).expect("write BENCH_culling.json");
    println!("wrote BENCH_culling.json");

    assert!(
        pair_ratio >= 5.0,
        "the spatial pre-cull must retire at least 5× the surviving pair count \
         on the mega-scale matrix (got {pair_ratio:.2}×)"
    );
    let cull_floor = if smoke { 1.2 } else { 1.5 };
    assert!(
        cull_speedup >= cull_floor,
        "culling must be at least {cull_floor}× faster than the unculled sweep \
         on the warm mega-scale matrix (got {cull_speedup:.2}×)"
    );

    // --- Simulate matrix: legacy scalar pipeline vs SoA batch kernels. ---
    println!(
        "\nsimulate matrix ({} passive sweep, warm pass cache):",
        if smoke { "smoke" } else { "full" }
    );
    let legacy = measure_simulate(
        "legacy",
        &opts
            .with_batch(BatchMode::Off)
            .with_ephemeris(EphemerisMode::Off),
        smoke,
    );
    // The two mixed cells attribute the win between the ephemeris-grid
    // geometry sampling and the SoA channel kernels.
    let grid_only = measure_simulate(
        "grid-only",
        &opts
            .with_batch(BatchMode::Off)
            .with_ephemeris(EphemerisMode::On),
        smoke,
    );
    let batch_only = measure_simulate(
        "batch-only",
        &opts
            .with_batch(BatchMode::On)
            .with_ephemeris(EphemerisMode::Off),
        smoke,
    );
    let batched = measure_simulate(
        "batched",
        &opts
            .with_batch(BatchMode::On)
            .with_ephemeris(EphemerisMode::On),
        smoke,
    );
    sweep::clear();
    let sim_speedup = legacy.wall_ms / batched.wall_ms.max(1e-9);
    println!("simulate wall speedup (legacy/batched): {sim_speedup:.2}×");

    let sim_cfg = simulate_config(smoke);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"sites\": {},", sim_cfg.sites.len());
    let _ = writeln!(
        json,
        "    \"constellations\": {},",
        sim_cfg.constellations.len()
    );
    let _ = writeln!(json, "    \"days\": {},", sim_cfg.max_days);
    let _ = writeln!(json, "    \"smoke\": {smoke}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    let cells = [&legacy, &grid_only, &batch_only, &batched];
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"wall_ms\": {:.3}, \"sgp4_propagations\": {}, \
             \"traces\": {}, \"passes\": {}}}{}",
            c.config,
            c.wall_ms,
            c.propagations,
            c.traces,
            c.passes,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"simulate_wall_speedup\": {sim_speedup:.3}\n}}");
    std::fs::write("BENCH_simulate.json", &json).expect("write BENCH_simulate.json");
    println!("wrote BENCH_simulate.json");

    let floor = if smoke { 1.5 } else { 2.0 };
    assert!(
        sim_speedup >= floor,
        "batched simulate must be at least {floor}× faster than the legacy \
         scalar pipeline on the warm passive sweep (got {sim_speedup:.2}×)"
    );

    // --- Sweep matrix: sequential cold batches vs the warm sweep server. ---
    // The same seed sweep run two ways. The cold leg models the
    // pre-server workflow — one OS process per job, so every job pays
    // the full predict phase again (emulated by clearing the process
    // caches before each job). The warm leg hands the whole queue to
    // `SweepServer`, whose jobs share pass lists and ephemeris grids.
    // Both legs must produce bit-identical per-job records and merged
    // sketches; the win is pure cache amortisation (this box pins the
    // pool to one core, so no parallelism is hiding in the numbers).
    let n_jobs: u64 = if smoke { 4 } else { 8 };
    let sweep_days = if smoke { 0.5 } else { 2.0 };
    let jobs: Vec<SweepJob> = (0..n_jobs)
        .map(|i| SweepJob::new(format!("bench-{i}"), 0xB0B + i).with_max_days(sweep_days))
        .collect();
    let sweep_cfg = jobs[0].to_config().expect("bench sweep job is valid");
    println!(
        "\nsweep matrix ({} {n_jobs} jobs × {} sites × {} constellations × {sweep_days} days):",
        if smoke { "smoke" } else { "full" },
        sweep_cfg.sites.len(),
        sweep_cfg.constellations.len(),
    );
    // Checkpointing off: a spill dir inherited from the environment
    // would let the warm leg resume the cold leg's results and measure
    // nothing.
    let server = SweepServer::new(opts).with_spill_dir(None).with_shard(None);
    let t0 = Instant::now();
    let mut cold_records: Vec<JobRecord> = Vec::new();
    for job in &jobs {
        sweep::clear();
        let outcome = server
            .run(std::slice::from_ref(job))
            .expect("cold sweep job runs");
        cold_records.extend(outcome.records);
    }
    let sweep_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut cold_merged = satiot_measure::sketch::TraceAggregate::new();
    for r in &cold_records {
        cold_merged.merge(r.sketch.as_ref().expect("aggregate sink sketches"));
    }

    sweep::clear();
    let t0 = Instant::now();
    let warm = server.run(&jobs).expect("warm sweep runs");
    let sweep_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::clear();

    assert_eq!(warm.records.len(), jobs.len());
    for (cold, warm) in cold_records.iter().zip(&warm.records) {
        assert!(
            cold.same_results(warm),
            "sweep server changed job {:?}'s results",
            cold.job.tag
        );
    }
    assert_eq!(
        cold_merged, warm.merged,
        "merged sketches must be bit-identical across the two legs"
    );
    for record in &warm.records[1..] {
        assert_eq!(
            record.cache.pass_computes, 0,
            "warm job {:?} re-predicted pass lists",
            record.job.tag
        );
    }

    let attribution = |records: &[JobRecord]| -> (u64, u64, u64, u64) {
        records.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.cache.pass_computes,
                acc.1 + r.cache.pass_hits(),
                acc.2 + r.cache.grid_computes,
                acc.3 + r.cache.grid_hits(),
            )
        })
    };
    let sweep_speedup = sweep_cold_ms / sweep_warm_ms.max(1e-9);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"jobs\": {n_jobs},");
    let _ = writeln!(json, "    \"sites\": {},", sweep_cfg.sites.len());
    let _ = writeln!(
        json,
        "    \"constellations\": {},",
        sweep_cfg.constellations.len()
    );
    let _ = writeln!(json, "    \"days\": {sweep_days},");
    let _ = writeln!(json, "    \"smoke\": {smoke}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, (leg, wall_ms, records)) in [
        ("sequential-cold", sweep_cold_ms, &cold_records),
        ("server-warm", sweep_warm_ms, &warm.records),
    ]
    .into_iter()
    .enumerate()
    {
        let (pass_computes, pass_hits, grid_computes, grid_hits) = attribution(records);
        let jobs_per_s = n_jobs as f64 / (wall_ms / 1e3).max(1e-12);
        println!(
            "{leg:15}: {wall_ms:9.1} ms, {jobs_per_s:8.2} jobs/s, \
             {pass_computes:>5} pass computes, {pass_hits:>5} hits, \
             {grid_computes:>4} grid computes, {grid_hits:>4} hits"
        );
        let _ = writeln!(
            json,
            "    {{\"leg\": \"{leg}\", \"wall_ms\": {wall_ms:.3}, \
             \"jobs_per_s\": {jobs_per_s:.3}, \"pass_computes\": {pass_computes}, \
             \"pass_hits\": {pass_hits}, \"grid_computes\": {grid_computes}, \
             \"grid_hits\": {grid_hits}}}{}",
            if i == 0 { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"throughput_speedup\": {sweep_speedup:.3}\n}}");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
    println!("sweep throughput speedup (server-warm/sequential-cold): {sweep_speedup:.2}×");

    let sweep_floor = if smoke { 1.5 } else { 2.0 };
    assert!(
        sweep_speedup >= sweep_floor,
        "the sweep server must push at least {sweep_floor}× the throughput of \
         sequential cold jobs on the shared-scenario sweep (got {sweep_speedup:.2}×)"
    );

    println!("bench_report: OK");
}
