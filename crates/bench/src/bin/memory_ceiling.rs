//! CI memory-ceiling smoke: prove the bounded-memory campaign modes
//! actually bound memory, with counters rather than trust.
//!
//! Runs the same multi-site passive campaign twice — once with the
//! default full-trace sink (the exact baseline) and once with
//! [`SinkMode::Aggregate`] — and asserts:
//!
//! * the aggregate run retains **zero** traces, checked two ways: the
//!   per-run [`SinkStats`] *and* the process-wide
//!   `measure.sink.traces_retained` obs counter;
//! * every decoded beacon is still accounted for
//!   (`traces_emitted` equals the baseline's trace count);
//! * the streaming sketch quantiles land within the documented error
//!   band (bucket width / 2) of the exact nearest-rank statistics
//!   computed from the baseline's raw traces;
//! * the sketch's memory footprint estimate is below the full trace
//!   set's, and is reported so regressions are visible in CI logs.
//!
//! A third section bounds the *sweep caches*: a job queue over disjoint
//! windows is run unbudgeted to measure its natural pass-cache/grid
//! footprint, then re-run under a cache budget of half that, asserting
//! the post-sweep footprint respects the ceiling, evictions actually
//! fired, and the budgeted sweep's results stay bit-identical.
//!
//! `--smoke` keeps the campaign at one day for the CI lane; without it
//! the run covers three days for a more demanding local check. Exits
//! non-zero (panics) on any violation, so the CI step is just
//! `cargo run --release -p satiot-bench --bin memory_ceiling -- --smoke`.

use satiot_core::prelude::*;
use satiot_core::sweep;
use satiot_measure::sketch::{ConstellationSketch, QuantileSketch};
use satiot_measure::stats::nearest_rank_sorted;
use satiot_measure::trace::BeaconTrace;
use satiot_obs::metrics::{self, Counter};
use satiot_scenarios::sites::measurement_sites;

// Shared-slot views of the sink's accounting counters (name-keyed).
static EMITTED: Counter = Counter::new("measure.sink.traces_emitted");
static RETAINED: Counter = Counter::new("measure.sink.traces_retained");

fn config(days: f64) -> PassiveConfig {
    #[allow(deprecated)] // ceiling probe tweaks the literal config directly
    let mut cfg = PassiveConfig::quick(days);
    cfg.sites = measurement_sites()
        .into_iter()
        .filter(|s| matches!(s.code, "HK" | "GZ" | "SH"))
        .collect();
    cfg.max_days = days;
    cfg.parallel = true;
    cfg
}

/// Rough in-RAM footprint of a full trace set: struct size plus the
/// heap behind the two owned labels.
fn full_bytes(traces: &[BeaconTrace]) -> usize {
    traces
        .iter()
        .map(|t| std::mem::size_of::<BeaconTrace>() + t.site.len() + t.constellation.len())
        .sum()
}

/// Rough in-RAM footprint of one constellation sketch: its quantile
/// buckets (i64 key + u64 count per occupied bucket) plus fixed
/// per-metric state.
fn sketch_bytes(g: &ConstellationSketch) -> usize {
    let bucket = |q: &QuantileSketch| q.buckets() * 16 + 64;
    bucket(&g.rssi_dbm.quantiles)
        + bucket(&g.snr_db.quantiles)
        + bucket(&g.distance_km.quantiles)
        + bucket(&g.elevation_deg.quantiles)
        + g.sites.iter().map(|(s, _)| s.len() + 24).sum::<usize>()
        + std::mem::size_of::<ConstellationSketch>()
}

/// Assert one metric's sketch quantiles sit inside the error band of
/// the exact per-constellation order statistics.
fn assert_in_band(label: &str, sketch: &QuantileSketch, exact: &mut Vec<f64>) {
    exact.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(
        sketch.count(),
        exact.len() as u64,
        "{label}: sketch count diverged"
    );
    let band = sketch.width() / 2.0 + 1e-9;
    for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
        let est = sketch.quantile(p);
        let truth = nearest_rank_sorted(exact, p);
        assert!(
            (est - truth).abs() <= band,
            "{label} p{p}: sketch {est} vs exact {truth} exceeds band {band}"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days = if smoke { 1.0 } else { 3.0 };
    let opts = RunOptions::from_env().apply();
    println!("memory ceiling: days={days} smoke={smoke}");

    // Exact baseline: the full-trace sink, as reproduce_all uses.
    let full = PassiveCampaign::new(config(days))
        .run(&opts.with_sink(SinkMode::Full))
        .unwrap();
    let n = full.traces.traces.len();
    assert!(n > 0, "baseline produced no traces — nothing to bound");

    // Bounded run, counter-audited from a clean slate.
    metrics::set_enabled(true);
    metrics::reset();
    let agg = PassiveCampaign::new(config(days))
        .run(&opts.with_sink(SinkMode::Aggregate))
        .unwrap();

    assert!(agg.traces.traces.is_empty(), "aggregate retained traces");
    assert_eq!(agg.sink.retained, 0, "SinkStats says traces were retained");
    assert_eq!(RETAINED.value(), 0, "obs counter says traces were retained");
    assert_eq!(agg.sink.emitted, n as u64, "emission accounting diverged");
    assert_eq!(
        EMITTED.value(),
        n as u64,
        "obs emitted counter diverged from SinkStats"
    );
    println!(
        "sink audit: emitted={} retained={} (obs counters agree)",
        agg.sink.emitted, agg.sink.retained
    );

    // Sketch accuracy against the exact baseline, per constellation.
    let sketch = agg.sketch.as_ref().expect("aggregate run must sketch");
    assert_eq!(sketch.total, n as u64);
    for g in &sketch.groups {
        let pick = |f: fn(&BeaconTrace) -> f64| -> Vec<f64> {
            full.traces
                .traces
                .iter()
                .filter(|t| t.constellation == g.constellation)
                .map(f)
                .collect()
        };
        let c = &g.constellation;
        assert_in_band(
            &format!("{c}/rssi_dbm"),
            &g.rssi_dbm.quantiles,
            &mut pick(|t| t.rssi_dbm),
        );
        assert_in_band(
            &format!("{c}/snr_db"),
            &g.snr_db.quantiles,
            &mut pick(|t| t.snr_db),
        );
        assert_in_band(
            &format!("{c}/distance_km"),
            &g.distance_km.quantiles,
            &mut pick(|t| t.distance_km),
        );
        assert_in_band(
            &format!("{c}/elevation_deg"),
            &g.elevation_deg.quantiles,
            &mut pick(|t| t.elevation_deg),
        );
        println!(
            "sketch audit: {c} ({} traces, {} sites) within band",
            g.count,
            g.sites.len()
        );
    }

    // Memory ceiling: the sketches must undercut the raw traces, and
    // the numbers go to the CI log so growth is visible.
    let full_mem = full_bytes(&full.traces.traces);
    let agg_mem: usize = sketch.groups.iter().map(sketch_bytes).sum();
    println!(
        "memory: full-trace {} B for {} traces, sketches {} B ({}x smaller)",
        full_mem,
        n,
        agg_mem,
        full_mem / agg_mem.max(1)
    );
    assert!(
        agg_mem < full_mem,
        "sketch footprint {agg_mem} B is not below the trace set's {full_mem} B"
    );

    // Sweep-cache ceiling: disjoint windows grow the process-wide pass
    // cache and grid store without bound unless the budget latch stops
    // them. Calibrate the budget from an unbudgeted run so the check
    // tracks the scenario instead of a magic constant.
    let sweep_jobs: Vec<SweepJob> = (0..6)
        .map(|i| {
            SweepJob::new(format!("ceiling-{i}"), 0xCE11 + i)
                .with_max_days(0.5 + 0.1 * i as f64)
                .with_sites(["HK"])
        })
        .collect();
    let server = SweepServer::new(opts).with_spill_dir(None).with_shard(None);
    sweep::clear();
    let unbudgeted = server.run(&sweep_jobs).expect("unbudgeted sweep runs");
    let cache_bytes = || sweep::stats().approx_bytes + sweep::grid_stats().approx_bytes;
    let natural = cache_bytes();
    assert!(natural > 0, "sweep left nothing in the caches to bound");

    let budget = natural / 2;
    sweep::clear();
    sweep::set_cache_budget_bytes(Some(budget));
    let budgeted = server.run(&sweep_jobs).expect("budgeted sweep runs");
    let bounded = cache_bytes();
    let evictions = sweep::stats().evictions + sweep::grid_stats().evictions;
    println!(
        "sweep caches: natural {natural} B, budget {budget} B, \
         post-sweep {bounded} B, {evictions} evictions"
    );
    assert!(
        bounded <= budget,
        "cache footprint {bounded} B exceeds the {budget} B budget"
    );
    assert!(evictions > 0, "the budget never fired an eviction");
    assert!(
        budgeted.same_results(&unbudgeted),
        "evictions changed sweep results"
    );
    sweep::set_cache_budget_bytes(None);
    sweep::clear();

    println!("memory ceiling: OK");
}
