//! Reproduces Figure 4a: theoretical vs. effective contact durations.

use satiot_bench::{reports, runners, Scale};

fn main() {
    let passive = runners::run_passive(Scale::from_env());
    print!("{}", reports::fig4a(&passive));
}
