//! Runs every ablation and extension binary in sequence (quick scale
//! unless overridden) — the design-choice appendix to `reproduce_all`.

use std::process::Command;

const BINARIES: &[&str] = &[
    "exp_ablation_scheduler",
    "exp_ablation_retx",
    "exp_ablation_buffer",
    "exp_ablation_beacon",
    "exp_ablation_downlink",
    "exp_ablation_doppler",
    "exp_ablation_sf",
    "exp_extension_solar",
    "exp_extension_mac",
    "exp_extension_cost",
    "exp_extension_gateways",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    for bin in BINARIES {
        println!("\n################ {bin} ################");
        let output = Command::new(me.with_file_name(bin))
            .output()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        print!("{}", String::from_utf8_lossy(&output.stdout));
        if !output.status.success() {
            eprintln!("{bin} exited with {:?}", output.status);
        }
    }
}
