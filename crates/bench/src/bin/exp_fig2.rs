//! Reproduces Figure 2: the measurement node map — eight sites across
//! four continents, plus Tianqi's ground segment, on an ASCII world grid.
//!
//! The site list comes from resolving the paper's passive scenario
//! through [`ScenarioSpec::build`] — the same typed front door the
//! campaign binaries use — not from the raw catalog calls.

use satiot_scenarios::sites::{tianqi_ground_stations, yunnan_farm};
use satiot_scenarios::ScenarioSpec;

const COLS: usize = 90; // 4° of longitude per column.
const ROWS: usize = 30; // 6° of latitude per row.

fn plot(grid: &mut [Vec<char>], lat: f64, lon: f64, mark: char) {
    let col = (((lon + 180.0) / 360.0) * (COLS as f64 - 1.0)).round() as usize;
    let row = (((90.0 - lat) / 180.0) * (ROWS as f64 - 1.0)).round() as usize;
    grid[row.min(ROWS - 1)][col.min(COLS - 1)] = mark;
}

fn main() {
    let scenario = ScenarioSpec::paper_passive()
        .build()
        .expect("builtin paper scenario resolves");
    let sites: Vec<_> = scenario.sites.iter().map(|r| &r.site).collect();
    let mut grid = vec![vec!['.'; COLS]; ROWS];
    // Equator and meridian for orientation.
    for cell in grid[ROWS / 2].iter_mut() {
        *cell = '-';
    }
    for row in grid.iter_mut() {
        row[COLS / 2] = '|';
    }
    for (_, gs) in tianqi_ground_stations() {
        plot(
            &mut grid,
            gs.lat_rad.to_degrees(),
            gs.lon_rad.to_degrees(),
            'g',
        );
    }
    let farm = yunnan_farm();
    plot(
        &mut grid,
        farm.lat_rad.to_degrees(),
        farm.lon_rad.to_degrees(),
        'F',
    );
    for site in &sites {
        plot(&mut grid, site.lat_deg, site.lon_deg, '#');
    }

    println!("== Fig 2: Measurement node map ==");
    println!("(# passive site   g Tianqi ground station   F Yunnan farm)\n");
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }
    println!();
    for site in &sites {
        println!(
            "  # {:4} {:12} {:7.2}N {:8.2}E  {} stations from day {:.0}",
            site.code, site.name, site.lat_deg, site.lon_deg, site.station_count, site.start_day
        );
    }
    println!(
        "\n27 stations, 8 sites, 4 continents — plus 12 Tianqi ground stations\nacross China and the active-deployment farm in Yunnan."
    );
}
