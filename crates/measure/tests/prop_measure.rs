//! Property-based tests for the analysis layer: statistics and
//! contact-window algebra over arbitrary inputs.

use proptest::prelude::*;
use satiot_measure::contact::{
    effective_windows, merge_overlapping, ContactStats, TheoreticalWindow,
};
use satiot_measure::stats::{cdf_points, percentile, Histogram, Summary};

proptest! {
    /// Summary invariants: min ≤ p10 ≤ median ≤ p90 ≤ max, mean within
    /// [min, max].
    #[test]
    fn summary_orderings(values in proptest::collection::vec(-1e6_f64..1e6, 1..300)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.p10 + 1e-9);
        prop_assert!(s.p10 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Percentiles are bounded and monotone in p.
    #[test]
    fn percentile_monotone(
        values in proptest::collection::vec(-1e3_f64..1e3, 1..100),
        p1 in 0.0_f64..100.0,
        p2 in 0.0_f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
    }

    /// CDF points are monotone in both coordinates and span min..max.
    #[test]
    fn cdf_is_monotone(values in proptest::collection::vec(-50.0_f64..50.0, 2..200)) {
        let cdf = cdf_points(&values, 20);
        prop_assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
            prop_assert!(w[1].1 > w[0].1);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(cdf[0].0, sorted[0]);
        prop_assert_eq!(cdf[20].0, sorted[sorted.len() - 1]);
    }

    /// Histograms never lose observations (clamping included).
    #[test]
    fn histogram_preserves_mass(values in proptest::collection::vec(-100.0_f64..100.0, 0..300)) {
        let mut h = Histogram::new(-10.0, 10.0, 7);
        for v in &values {
            h.add(*v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let total_fraction: f64 = (0..7).map(|i| h.fraction(i)).sum();
        if !values.is_empty() {
            prop_assert!((total_fraction - 1.0).abs() < 1e-9);
        }
    }

    /// Effective windows always nest inside their theoretical windows and
    /// never count more receptions than beacons offered.
    #[test]
    fn effective_windows_nest(
        starts in proptest::collection::vec(0.0_f64..1e5, 1..20),
        beacons in proptest::collection::vec(0.0_f64..1.2e5, 0..200),
    ) {
        // Build disjoint windows from sorted starts.
        let mut sorted = starts.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut windows = Vec::new();
        let mut prev_end = -1.0;
        for s in sorted {
            let start = s.max(prev_end + 1.0);
            let end = start + 600.0;
            windows.push(TheoreticalWindow { start_s: start, end_s: end });
            prev_end = end;
        }
        let eff = effective_windows(&windows, &beacons, &[]);
        prop_assert_eq!(eff.len(), windows.len());
        let mut assigned = 0;
        for w in &eff {
            if let (Some(f), Some(l)) = (w.first_rx_s, w.last_rx_s) {
                prop_assert!(f >= w.theoretical.start_s && l <= w.theoretical.end_s);
                prop_assert!(f <= l);
            }
            prop_assert!(w.effective_duration_s() <= w.theoretical.duration_s() + 1e-9);
            prop_assert!((0.0..=1.0).contains(&w.duty_ratio()));
            assigned += w.received;
        }
        prop_assert!(assigned <= beacons.len());
    }

    /// Merging overlapping windows yields disjoint windows that conserve
    /// reception counts and cover the same union span.
    #[test]
    fn merge_is_a_disjoint_cover(
        offsets in proptest::collection::vec((0.0_f64..5e4, 60.0_f64..1_200.0), 1..40),
    ) {
        let windows: Vec<_> = offsets
            .iter()
            .map(|(s, d)| satiot_measure::contact::EffectiveWindow {
                theoretical: TheoreticalWindow { start_s: *s, end_s: s + d },
                first_rx_s: None,
                last_rx_s: None,
                received: 1,
                transmitted: 3,
            })
            .collect();
        let merged = merge_overlapping(&windows);
        prop_assert!(merged.len() <= windows.len());
        for w in merged.windows(2) {
            prop_assert!(w[1].theoretical.start_s > w[0].theoretical.end_s);
        }
        let received: usize = merged.iter().map(|w| w.received).sum();
        let transmitted: usize = merged.iter().map(|w| w.transmitted).sum();
        prop_assert_eq!(received, windows.len());
        prop_assert_eq!(transmitted, 3 * windows.len());
        // The merged span bounds every input window.
        let lo = merged.first().unwrap().theoretical.start_s;
        let hi = merged.last().unwrap().theoretical.end_s;
        for w in &windows {
            prop_assert!(w.theoretical.start_s >= lo && w.theoretical.end_s <= hi);
        }
    }

    /// ContactStats shrink stays in [0, 1] for arbitrary window sets.
    #[test]
    fn shrink_is_a_fraction(
        count in 1usize..30,
        rx_frac in 0.0_f64..1.0,
    ) {
        let mut windows = Vec::new();
        for i in 0..count {
            let start = i as f64 * 2_000.0;
            let rx = rx_frac * 600.0;
            windows.push(satiot_measure::contact::EffectiveWindow {
                theoretical: TheoreticalWindow { start_s: start, end_s: start + 600.0 },
                first_rx_s: if rx > 1.0 { Some(start + 100.0) } else { None },
                last_rx_s: if rx > 1.0 { Some((start + 100.0 + rx).min(start + 600.0)) } else { None },
                received: if rx > 1.0 { 2 } else { 0 },
                transmitted: 10,
            });
        }
        let stats = ContactStats::compute(&windows);
        prop_assert!((0.0..=1.0).contains(&stats.duration_shrink));
        prop_assert_eq!(stats.total_windows, count);
    }
}
