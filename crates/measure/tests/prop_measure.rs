//! Property-based tests for the analysis layer: statistics, streaming
//! sketches, archive codecs, and contact-window algebra over arbitrary
//! inputs.

use proptest::prelude::*;
use satiot_measure::contact::{
    effective_windows, merge_overlapping, ContactStats, TheoreticalWindow,
};
use satiot_measure::csv::{read_traces, read_traces_jsonl, write_traces, write_traces_jsonl};
use satiot_measure::sketch::{P2Quantile, QuantileSketch, StreamSummary};
use satiot_measure::stats::{
    cdf_points, nearest_rank_sorted, percentile, percentile_sorted, Histogram, Summary,
};
use satiot_measure::trace::{BeaconTrace, TraceSet};

proptest! {
    /// Summary invariants: min ≤ p10 ≤ median ≤ p90 ≤ max, mean within
    /// [min, max].
    #[test]
    fn summary_orderings(values in proptest::collection::vec(-1e6_f64..1e6, 1..300)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.p10 + 1e-9);
        prop_assert!(s.p10 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Percentiles are bounded and monotone in p.
    #[test]
    fn percentile_monotone(
        values in proptest::collection::vec(-1e3_f64..1e3, 1..100),
        p1 in 0.0_f64..100.0,
        p2 in 0.0_f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
    }

    /// CDF points are monotone in both coordinates and span min..max.
    #[test]
    fn cdf_is_monotone(values in proptest::collection::vec(-50.0_f64..50.0, 2..200)) {
        let cdf = cdf_points(&values, 20);
        prop_assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
            prop_assert!(w[1].1 > w[0].1);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(cdf[0].0, sorted[0]);
        prop_assert_eq!(cdf[20].0, sorted[sorted.len() - 1]);
    }

    /// Histograms never lose observations (clamping included).
    #[test]
    fn histogram_preserves_mass(values in proptest::collection::vec(-100.0_f64..100.0, 0..300)) {
        let mut h = Histogram::new(-10.0, 10.0, 7);
        for v in &values {
            h.add(*v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let total_fraction: f64 = (0..7).map(|i| h.fraction(i)).sum();
        if !values.is_empty() {
            prop_assert!((total_fraction - 1.0).abs() < 1e-9);
        }
    }

    /// Effective windows always nest inside their theoretical windows and
    /// never count more receptions than beacons offered.
    #[test]
    fn effective_windows_nest(
        starts in proptest::collection::vec(0.0_f64..1e5, 1..20),
        beacons in proptest::collection::vec(0.0_f64..1.2e5, 0..200),
    ) {
        // Build disjoint windows from sorted starts.
        let mut sorted = starts.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut windows = Vec::new();
        let mut prev_end = -1.0;
        for s in sorted {
            let start = s.max(prev_end + 1.0);
            let end = start + 600.0;
            windows.push(TheoreticalWindow { start_s: start, end_s: end });
            prev_end = end;
        }
        let eff = effective_windows(&windows, &beacons, &[]);
        prop_assert_eq!(eff.len(), windows.len());
        let mut assigned = 0;
        for w in &eff {
            if let (Some(f), Some(l)) = (w.first_rx_s, w.last_rx_s) {
                prop_assert!(f >= w.theoretical.start_s && l <= w.theoretical.end_s);
                prop_assert!(f <= l);
            }
            prop_assert!(w.effective_duration_s() <= w.theoretical.duration_s() + 1e-9);
            prop_assert!((0.0..=1.0).contains(&w.duty_ratio()));
            assigned += w.received;
        }
        prop_assert!(assigned <= beacons.len());
    }

    /// Merging overlapping windows yields disjoint windows that conserve
    /// reception counts and cover the same union span.
    #[test]
    fn merge_is_a_disjoint_cover(
        offsets in proptest::collection::vec((0.0_f64..5e4, 60.0_f64..1_200.0), 1..40),
    ) {
        let windows: Vec<_> = offsets
            .iter()
            .map(|(s, d)| satiot_measure::contact::EffectiveWindow {
                theoretical: TheoreticalWindow { start_s: *s, end_s: s + d },
                first_rx_s: None,
                last_rx_s: None,
                received: 1,
                transmitted: 3,
            })
            .collect();
        let merged = merge_overlapping(&windows);
        prop_assert!(merged.len() <= windows.len());
        for w in merged.windows(2) {
            prop_assert!(w[1].theoretical.start_s > w[0].theoretical.end_s);
        }
        let received: usize = merged.iter().map(|w| w.received).sum();
        let transmitted: usize = merged.iter().map(|w| w.transmitted).sum();
        prop_assert_eq!(received, windows.len());
        prop_assert_eq!(transmitted, 3 * windows.len());
        // The merged span bounds every input window.
        let lo = merged.first().unwrap().theoretical.start_s;
        let hi = merged.last().unwrap().theoretical.end_s;
        for w in &windows {
            prop_assert!(w.theoretical.start_s >= lo && w.theoretical.end_s <= hi);
        }
    }

    /// ContactStats shrink stays in [0, 1] for arbitrary window sets.
    #[test]
    fn shrink_is_a_fraction(
        count in 1usize..30,
        rx_frac in 0.0_f64..1.0,
    ) {
        let mut windows = Vec::new();
        for i in 0..count {
            let start = i as f64 * 2_000.0;
            let rx = rx_frac * 600.0;
            windows.push(satiot_measure::contact::EffectiveWindow {
                theoretical: TheoreticalWindow { start_s: start, end_s: start + 600.0 },
                first_rx_s: if rx > 1.0 { Some(start + 100.0) } else { None },
                last_rx_s: if rx > 1.0 { Some((start + 100.0 + rx).min(start + 600.0)) } else { None },
                received: if rx > 1.0 { 2 } else { 0 },
                transmitted: 10,
            });
        }
        let stats = ContactStats::compute(&windows);
        prop_assert!((0.0..=1.0).contains(&stats.duration_shrink));
        prop_assert_eq!(stats.total_windows, count);
    }
}

// ---------------------------------------------------------------------------
// Streaming sketches: accuracy bands and the merge law
// ---------------------------------------------------------------------------

/// Bucket widths exercised by the sketch properties (the real campaign
/// widths plus a coarse one to stress the error band).
const WIDTHS: [f64; 3] = [0.25, 1.0, 5.0];

proptest! {
    /// QuantileSketch quantiles stay within the documented band —
    /// width/2 of the exact nearest-rank order statistic — and the
    /// extreme order statistics are exact.
    #[test]
    fn quantile_sketch_tracks_nearest_rank(
        values in proptest::collection::vec(-500.0_f64..500.0, 1..400),
        w_idx in 0usize..3,
    ) {
        let width = WIDTHS[w_idx];
        let mut sk = QuantileSketch::new(width);
        for v in &values {
            sk.observe(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(sk.count(), values.len() as u64);
        prop_assert_eq!(sk.quantile(0.0), sorted[0]);
        prop_assert_eq!(sk.quantile(100.0), sorted[sorted.len() - 1]);
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let exact = nearest_rank_sorted(&sorted, p);
            let est = sk.quantile(p);
            prop_assert!(
                (est - exact).abs() <= width / 2.0 + 1e-9,
                "p{} off by {} (width {})", p, (est - exact).abs(), width
            );
        }
    }

    /// The sketch merge law: sharding the stream arbitrarily and merging
    /// the shards — in either order — is *identical* (not just close) to
    /// sketching the whole stream, because bucket merge is integer exact.
    #[test]
    fn quantile_sketch_merge_is_exact_and_order_independent(
        values in proptest::collection::vec(-200.0_f64..200.0, 1..300),
        chunk in 1usize..40,
    ) {
        let mut global = QuantileSketch::new(1.0);
        for v in &values {
            global.observe(*v);
        }
        let shards: Vec<QuantileSketch> = values
            .chunks(chunk)
            .map(|c| {
                let mut s = QuantileSketch::new(1.0);
                for v in c {
                    s.observe(*v);
                }
                s
            })
            .collect();
        let mut forward = QuantileSketch::new(1.0);
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = QuantileSketch::new(1.0);
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward, &global);
        prop_assert_eq!(&backward, &global);
    }

    /// StreamSummary's parallel merge matches pooling the raw stream:
    /// count exactly, moments within floating-point tolerance.
    #[test]
    fn stream_summary_merge_matches_pooled(
        values in proptest::collection::vec(-1e3_f64..1e3, 2..300),
        chunk in 1usize..40,
    ) {
        let mut pooled = StreamSummary::new();
        for v in &values {
            pooled.observe(*v);
        }
        let mut merged = StreamSummary::new();
        for c in values.chunks(chunk) {
            let mut shard = StreamSummary::new();
            for v in c {
                shard.observe(*v);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.count, pooled.count);
        prop_assert!((merged.mean - pooled.mean).abs() < 1e-6);
        prop_assert!((merged.variance() - pooled.variance()).abs() < 1e-3);
        prop_assert_eq!(merged.min, pooled.min);
        prop_assert_eq!(merged.max, pooled.max);
    }

    /// P² hard guarantees: the estimate is exact (interpolated
    /// percentile) while the sample buffer holds, and stays inside
    /// [min, max] of the observed stream forever after.
    #[test]
    fn p2_estimate_stays_in_observed_range(
        values in proptest::collection::vec(-1e3_f64..1e3, 1..250),
        p in 0.05_f64..0.95,
    ) {
        let mut est = P2Quantile::new(p);
        for v in &values {
            est.observe(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(est.count(), values.len() as u64);
        if values.len() <= 5 {
            let exact = percentile_sorted(&sorted, p * 100.0);
            prop_assert!((est.estimate() - exact).abs() < 1e-9);
        }
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        prop_assert!(est.estimate() >= lo - 1e-9 && est.estimate() <= hi + 1e-9);
        prop_assert_eq!(est.min(), lo);
        prop_assert_eq!(est.max(), hi);
    }

    /// Summary::of over a stream with non-finite pollution equals the
    /// summary of the finite subset, and counts every drop.
    #[test]
    fn summary_quarantines_non_finite(
        values in proptest::collection::vec(-1e3_f64..1e3, 1..100),
        poison_idx in proptest::collection::vec(0usize..100, 0..10),
        kind in 0usize..3,
    ) {
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][kind];
        let mut polluted = values.clone();
        for i in &poison_idx {
            polluted.insert(i % (polluted.len() + 1), poison);
        }
        let clean = Summary::of(&values);
        let s = Summary::of(&polluted);
        prop_assert_eq!(s.non_finite_dropped, poison_idx.len());
        prop_assert_eq!(s.n, clean.n);
        prop_assert!((s.mean - clean.mean).abs() < 1e-9);
        prop_assert_eq!(s.min, clean.min);
        prop_assert_eq!(s.max, clean.max);
        prop_assert_eq!(s.median, clean.median);
    }
}

// ---------------------------------------------------------------------------
// Archive codecs: hostile-name round-trips and non-finite rejection
// ---------------------------------------------------------------------------

/// Label alphabet deliberately stuffed with CSV/JSON metacharacters:
/// separators, quotes, newlines, backslashes, and ordinary text.
const NAME_PALETTE: [char; 12] = [',', '"', '\n', '\\', 'a', 'Z', '7', ' ', '-', '.', ':', '/'];

fn hostile_name(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| NAME_PALETTE[i % NAME_PALETTE.len()])
        .collect()
}

/// Quantise to the archive's written precision so write → read is
/// lossless (the codecs format floats with fixed decimal places).
fn q(v: f64, places: i32) -> f64 {
    let s = 10f64.powi(places);
    (v * s).round() / s
}

fn trace_row(
    site_idx: &[usize],
    cons_idx: &[usize],
    signal: (f64, f64, f64),
    geom: (f64, f64, f64),
    ids: (usize, usize, usize),
) -> BeaconTrace {
    BeaconTrace {
        time_s: q(signal.0.abs(), 3),
        site: hostile_name(site_idx),
        station: ids.0 as u32,
        constellation: hostile_name(cons_idx),
        sat_id: ids.1 as u32,
        rssi_dbm: q(signal.1, 2),
        snr_db: q(signal.2, 2),
        elevation_deg: q(geom.0, 3),
        distance_km: q(geom.1.abs(), 3),
        doppler_hz: q(geom.2, 1),
        weather: ["sunny", "cloudy", "rainy"][ids.2 % 3],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV and JSONL archives round-trip losslessly even when site and
    /// constellation names contain commas, quotes, and newlines.
    #[test]
    fn archives_round_trip_hostile_names(
        rows in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..12, 0..8),
                proptest::collection::vec(0usize..12, 0..8),
                (-200.0_f64..200.0, -160.0_f64..-40.0, -10.0_f64..20.0),
                (0.0_f64..90.0, 300.0_f64..4_000.0, -30e3_f64..30e3),
                (0usize..30, 0usize..100, 0usize..3),
            ),
            0..25,
        ),
    ) {
        let set = TraceSet {
            traces: rows
                .iter()
                .map(|(s, c, sig, geo, ids)| trace_row(s, c, *sig, *geo, *ids))
                .collect(),
        };

        let mut csv_bytes = Vec::new();
        write_traces(&set, &mut csv_bytes).expect("csv write");
        let csv_back = read_traces(&csv_bytes[..]).expect("csv read");
        prop_assert_eq!(&csv_back.traces, &set.traces);

        let mut jsonl_bytes = Vec::new();
        write_traces_jsonl(&set, &mut jsonl_bytes).expect("jsonl write");
        let jsonl_back = read_traces_jsonl(&jsonl_bytes[..]).expect("jsonl read");
        prop_assert_eq!(&jsonl_back.traces, &set.traces);
    }

    /// Any non-finite float in any numeric column is rejected on read,
    /// and the error names the offending column.
    #[test]
    fn archives_reject_non_finite_floats(
        col in 0usize..6,
        kind in 0usize..3,
        time_s in 0.0_f64..1e5,
    ) {
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][kind];
        let mut t = BeaconTrace {
            time_s,
            site: "HK".into(),
            station: 1,
            constellation: "Tianqi".into(),
            sat_id: 7,
            rssi_dbm: -120.0,
            snr_db: 3.0,
            elevation_deg: 45.0,
            distance_km: 900.0,
            doppler_hz: 1_000.0,
            weather: "sunny",
        };
        let name = match col {
            0 => { t.time_s = poison; "time_s" }
            1 => { t.rssi_dbm = poison; "rssi_dbm" }
            2 => { t.snr_db = poison; "snr_db" }
            3 => { t.elevation_deg = poison; "elevation_deg" }
            4 => { t.distance_km = poison; "distance_km" }
            _ => { t.doppler_hz = poison; "doppler_hz" }
        };
        let set = TraceSet { traces: vec![t] };

        let mut csv_bytes = Vec::new();
        write_traces(&set, &mut csv_bytes).expect("csv write");
        let err = read_traces(&csv_bytes[..]).expect_err("non-finite must be rejected");
        prop_assert!(err.to_string().contains(name), "error `{}` names `{}`", err, name);

        let mut jsonl_bytes = Vec::new();
        write_traces_jsonl(&set, &mut jsonl_bytes).expect("jsonl write");
        let err = read_traces_jsonl(&jsonl_bytes[..]).expect_err("non-finite must be rejected");
        prop_assert!(err.to_string().contains(name), "error `{}` names `{}`", err, name);
    }
}
