//! Sequence-ID based end-to-end reliability analysis.
//!
//! The paper (Appendix B) gives every application packet a unique
//! sequence ID and compares the set sent by the nodes against the set
//! received at the server. This module reproduces that methodology and
//! adds per-group breakdowns (per node, per weather, per payload size).

use std::collections::{BTreeMap, HashSet};

/// A sent packet record.
#[derive(Debug, Clone, PartialEq)]
pub struct SentPacket {
    /// Unique sequence ID.
    pub seq: u64,
    /// Sending node index.
    pub node: u32,
    /// Send time, campaign seconds.
    pub sent_s: f64,
    /// Payload size, bytes.
    pub payload_bytes: usize,
    /// Number of DtS transmission attempts used (1 = no retransmission).
    pub attempts: u32,
    /// Weather label at send time.
    pub weather: &'static str,
}

/// End-to-end delivery analysis.
#[derive(Debug, Clone)]
pub struct Reliability {
    /// Packets sent.
    pub sent: usize,
    /// Packets delivered (matched by sequence ID).
    pub delivered: usize,
}

impl Reliability {
    /// Match sent records against received sequence IDs.
    pub fn compute(sent: &[SentPacket], received_seqs: &HashSet<u64>) -> Reliability {
        let delivered = sent
            .iter()
            .filter(|p| received_seqs.contains(&p.seq))
            .count();
        Reliability {
            sent: sent.len(),
            delivered,
        }
    }

    /// Delivery ratio ∈ [0, 1] (1.0 for an empty campaign).
    pub fn ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Per-group delivery ratios keyed by an arbitrary label.
pub fn reliability_by<F>(
    sent: &[SentPacket],
    received_seqs: &HashSet<u64>,
    group: F,
) -> BTreeMap<String, Reliability>
where
    F: Fn(&SentPacket) -> String,
{
    let mut groups: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for p in sent {
        let entry = groups.entry(group(p)).or_insert((0, 0));
        entry.0 += 1;
        if received_seqs.contains(&p.seq) {
            entry.1 += 1;
        }
    }
    groups
        .into_iter()
        .map(|(k, (sent, delivered))| (k, Reliability { sent, delivered }))
        .collect()
}

/// Delivery ratio computed per time window of `window_s` seconds (keyed
/// by the packets' send times) — the paper's Figure 12a presents its
/// payload sweep as the distribution of such windowed reliabilities
/// ("75 % of transmissions reach 90 % end-to-end reliability").
pub fn reliability_per_window(
    sent: &[SentPacket],
    received_seqs: &HashSet<u64>,
    window_s: f64,
) -> Vec<f64> {
    if window_s <= 0.0 {
        return Vec::new();
    }
    let mut windows: BTreeMap<i64, (usize, usize)> = BTreeMap::new();
    for p in sent {
        let k = (p.sent_s / window_s).floor() as i64;
        let e = windows.entry(k).or_insert((0, 0));
        e.0 += 1;
        if received_seqs.contains(&p.seq) {
            e.1 += 1;
        }
    }
    windows
        .values()
        .map(|(sent, ok)| *ok as f64 / (*sent).max(1) as f64)
        .collect()
}

/// Share of windows achieving at least `target` reliability.
pub fn share_of_windows_above(windowed: &[f64], target: f64) -> f64 {
    if windowed.is_empty() {
        return 0.0;
    }
    windowed.iter().filter(|r| **r >= target).count() as f64 / windowed.len() as f64
}

/// Distribution of DtS attempts (the paper's Figure 5b series): fraction
/// of packets using exactly `k` transmissions, for `k = 1 ..= max`.
pub fn attempts_distribution(sent: &[SentPacket], max_attempts: u32) -> Vec<f64> {
    let mut counts = vec![0usize; max_attempts as usize];
    for p in sent {
        let k = p.attempts.clamp(1, max_attempts) as usize;
        counts[k - 1] += 1;
    }
    let total = sent.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, node: u32, attempts: u32, weather: &'static str) -> SentPacket {
        SentPacket {
            seq,
            node,
            sent_s: seq as f64 * 10.0,
            payload_bytes: 20,
            attempts,
            weather,
        }
    }

    #[test]
    fn basic_ratio() {
        let sent: Vec<SentPacket> = (0..10).map(|i| pkt(i, 0, 1, "sunny")).collect();
        let received: HashSet<u64> = (0..9).collect();
        let r = Reliability::compute(&sent, &received);
        assert_eq!(r.sent, 10);
        assert_eq!(r.delivered, 9);
        assert!((r.ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_is_perfect() {
        let r = Reliability::compute(&[], &HashSet::new());
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn received_ids_not_sent_are_ignored() {
        let sent = vec![pkt(1, 0, 1, "sunny")];
        let received: HashSet<u64> = [1, 999, 1000].into_iter().collect();
        let r = Reliability::compute(&sent, &received);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn grouped_reliability() {
        let sent = vec![
            pkt(1, 0, 1, "sunny"),
            pkt(2, 0, 1, "sunny"),
            pkt(3, 1, 1, "rainy"),
            pkt(4, 1, 1, "rainy"),
        ];
        let received: HashSet<u64> = [1, 2, 3].into_iter().collect();
        let by_weather = reliability_by(&sent, &received, |p| p.weather.to_string());
        assert!((by_weather["sunny"].ratio() - 1.0).abs() < 1e-12);
        assert!((by_weather["rainy"].ratio() - 0.5).abs() < 1e-12);
        let by_node = reliability_by(&sent, &received, |p| format!("node{}", p.node));
        assert_eq!(by_node.len(), 2);
        assert_eq!(by_node["node0"].delivered, 2);
    }

    #[test]
    fn attempts_distribution_normalises() {
        let sent = vec![
            pkt(1, 0, 1, "sunny"),
            pkt(2, 0, 1, "sunny"),
            pkt(3, 0, 3, "sunny"),
            pkt(4, 0, 6, "sunny"), // Clamped into the last bucket.
            pkt(5, 0, 9, "sunny"), // Clamped too.
        ];
        let dist = attempts_distribution(&sent, 6);
        assert_eq!(dist.len(), 6);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist[0] - 0.4).abs() < 1e-12);
        assert!((dist[2] - 0.2).abs() < 1e-12);
        assert!((dist[5] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn windowed_reliability_buckets_by_time() {
        // Packets 0–3 in window 0 (all delivered), 4–7 in window 1 (half).
        let sent: Vec<SentPacket> = (0..8)
            .map(|i| SentPacket {
                seq: i,
                node: 0,
                sent_s: i as f64 * 10.0,
                payload_bytes: 20,
                attempts: 1,
                weather: "sunny",
            })
            .collect();
        let received: HashSet<u64> = [0, 1, 2, 3, 4, 5].into_iter().collect();
        let w = reliability_per_window(&sent, &received, 40.0);
        assert_eq!(w.len(), 2);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((share_of_windows_above(&w, 0.9) - 0.5).abs() < 1e-12);
        assert!((share_of_windows_above(&w, 0.4) - 1.0).abs() < 1e-12);
        assert!(reliability_per_window(&sent, &received, 0.0).is_empty());
        assert_eq!(share_of_windows_above(&[], 0.9), 0.0);
    }

    #[test]
    fn attempts_distribution_empty() {
        let dist = attempts_distribution(&[], 6);
        assert_eq!(dist.iter().sum::<f64>(), 0.0);
    }
}
