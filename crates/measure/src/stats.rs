//! Summary statistics: moments, percentiles, CDFs, histograms.

/// A numeric summary of a sample.
///
/// Non-finite inputs are *not* summarised: [`Summary::of`] drops them
/// before computing any field (a single NaN would otherwise poison
/// mean, std, min, max, and every percentile) and counts the drops in
/// [`Summary::non_finite_dropped`], mirroring what [`Histogram::add`]
/// does — both surface through the `satiot_obs` data-quality counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size (finite values only).
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Non-finite inputs dropped before summarising (also flagged
    /// through the `obs.invariants.non_finite_flagged` counter).
    pub non_finite_dropped: usize,
}

impl Summary {
    /// Summarise a sample, dropping (and counting) non-finite values.
    /// Returns an all-zero summary for empty input.
    pub fn of(values: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = values
            .iter()
            .copied()
            .filter(|v| satiot_obs::invariants::flag_non_finite("measure::stats::Summary::of", *v))
            .collect();
        let non_finite_dropped = values.len() - sorted.len();
        if sorted.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p10: 0.0,
                p90: 0.0,
                non_finite_dropped,
            };
        }
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        sorted.sort_by(|a, b| a.total_cmp(b));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p10: percentile_sorted(&sorted, 10.0),
            p90: percentile_sorted(&sorted, 90.0),
            non_finite_dropped,
        }
    }
}

impl Summary {
    /// Sample (n−1) standard deviation; 0 for fewer than two points.
    pub fn sample_std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev * (self.n as f64 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95 % normal-approximation confidence interval
    /// on the mean (`1.96·s/√n` with the *sample* standard deviation —
    /// the population σ understates the interval, noticeably so for
    /// small n); 0 for samples of fewer than two points.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Percentile (0–100) of an unsorted sample; 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample using linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Nearest-rank percentile of an already-sorted sample: the element at
/// rank `round(p/100 · (n−1))`, with no interpolation. This is the rank
/// convention the streaming [`crate::sketch::QuantileSketch`] mirrors,
/// so sketch-vs-exact accuracy checks compare like with like (the
/// interpolated [`percentile_sorted`] can land arbitrarily far from any
/// actual observation across data gaps).
pub fn nearest_rank_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Empirical CDF sampled at `points` evenly spaced quantiles, returned as
/// `(value, cumulative_probability)` pairs — the series format the
/// figure-reproduction binaries print.
pub fn cdf_points(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    (0..=points)
        .map(|i| {
            let q = i as f64 / points as f64;
            (percentile_sorted(&sorted, q * 100.0), q)
        })
        .collect()
}

/// A fixed-width histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Counts per bin; out-of-range values clamp into the edge bins.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "degenerate histogram");
        Histogram {
            lo,
            bin_width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
        }
    }

    /// Add one observation. Non-finite values are dropped (a NaN would
    /// otherwise silently land in bin 0 through the clamping below) and
    /// flagged through the `satiot_obs` non-finite invariant counter.
    pub fn add(&mut self, value: f64) {
        if !satiot_obs::invariants::flag_non_finite("measure::stats::Histogram::add", value) {
            return;
        }
        let idx = ((value - self.lo) / self.bin_width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts[i] as f64 / t as f64
        }
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width
    }

    /// Fraction of observations with value in `[a, b)` (bin-resolution).
    pub fn fraction_between(&self, a: f64, b: f64) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let in_range: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let c = self.bin_center(*i);
                c >= a && c < b
            })
            .map(|(_, &c)| c)
            .sum();
        in_range as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1_000).map(|i| (i % 10) as f64).collect();
        let s_small = Summary::of(&small);
        let s_large = Summary::of(&large);
        assert!(s_small.ci95_half_width() > s_large.ci95_half_width());
        assert_eq!(Summary::of(&[1.0]).ci95_half_width(), 0.0);
        // The CI half-width uses the sample (n−1) standard deviation,
        // not the population σ stored in `std_dev`.
        let expected = 1.96 * s_large.sample_std_dev() / 1_000f64.sqrt();
        assert!((s_large.ci95_half_width() - expected).abs() < 1e-12);
        assert!(s_large.sample_std_dev() > s_large.std_dev);
        let ratio = s_large.sample_std_dev() / s_large.std_dev;
        assert!((ratio - (1000.0f64 / 999.0).sqrt()).abs() < 1e-12);
    }

    /// A single NaN used to poison every field of the summary; non-finite
    /// inputs must be dropped and counted instead.
    #[test]
    fn summary_drops_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY]);
        assert_eq!(s.n, 3);
        assert_eq!(s.non_finite_dropped, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.median.is_finite() && s.p10.is_finite() && s.p90.is_finite());
        // All-non-finite input degrades to the empty summary, with drops counted.
        let s = Summary::of(&[f64::NAN, f64::NAN]);
        assert_eq!(s.n, 0);
        assert_eq!(s.non_finite_dropped, 2);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn nearest_rank_matches_order_statistics() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(nearest_rank_sorted(&v, 0.0), 10.0);
        assert_eq!(nearest_rank_sorted(&v, 100.0), 40.0);
        // Rank 1.5 rounds to 2 → 30.0 (no interpolation).
        assert_eq!(nearest_rank_sorted(&v, 50.0), 30.0);
        assert_eq!(nearest_rank_sorted(&v, 25.0), 20.0);
        assert_eq!(nearest_rank_sorted(&[], 50.0), 0.0);
        // Always an actual observation, even across huge gaps.
        assert_eq!(nearest_rank_sorted(&[0.0, 1000.0], 50.0), 1000.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert!((percentile(&v, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 100.0), 3.0);
    }

    #[test]
    fn cdf_points_are_monotone_and_span() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cdf = cdf_points(&v, 10);
        assert_eq!(cdf.len(), 11);
        assert_eq!(cdf[0], (0.0, 0.0));
        assert_eq!(cdf[10], (99.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
        assert!(cdf_points(&[], 10).is_empty());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5); // Bin width 2.
        for v in [0.5, 1.5, 2.5, 2.6, -3.0, 42.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts[0], 3); // 0.5, 1.5, and clamped −3.0.
        assert_eq!(h.counts[1], 2); // 2.5 and 2.6.
        assert_eq!(h.counts[4], 1); // Clamped 42.0.
    }

    /// NaN used to clamp into bin 0 via `idx.max(0.0)` (NaN comparisons
    /// are false, so `max` returned 0.0); non-finite values must be
    /// dropped instead of polluting the first bin.
    #[test]
    fn histogram_skips_non_finite() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(1.0);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        h.add(f64::NEG_INFINITY);
        assert_eq!(h.total(), 1);
        assert_eq!(h.counts[0], 1);
        // Edge bins saw no spill from the infinities either.
        assert_eq!(h.counts[4], 0);
    }

    #[test]
    fn histogram_exact_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.999);
        h.add(1.0);
        h.add(9.999);
        h.add(10.0); // Clamps into the last bin.
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[9], 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fraction_between() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.add(i as f64 / 10.0 + 0.05);
        }
        // Middle 30–70 %: bins 3,4,5,6 → 0.4 of the mass.
        assert!((h.fraction_between(0.3, 0.7) - 0.4).abs() < 1e-12);
        assert!((h.fraction_between(0.0, 1.0) - 1.0).abs() < 1e-12);
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between
/// the empirical CDFs of `a` and `b` ∈ [0, 1]. Used to quantify whether
/// two measured distributions (e.g. sunny vs. rainy reception ratios)
/// actually differ, rather than eyeballing them.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

#[cfg(test)]
mod ks_tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(ks_statistic(&v, &v) < 1e-12);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_distributions_have_intermediate_distance() {
        let a: Vec<f64> = (0..1_000).map(|i| (i % 100) as f64).collect();
        let b: Vec<f64> = (0..1_000).map(|i| (i % 100) as f64 + 25.0).collect();
        let d = ks_statistic(&a, &b);
        assert!((d - 0.25).abs() < 0.02, "d {d}");
        // Symmetric.
        assert!((ks_statistic(&b, &a) - d).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(ks_statistic(&[], &[1.0]), 0.0);
        assert_eq!(ks_statistic(&[1.0], &[]), 0.0);
    }

    #[test]
    fn unequal_sizes_work() {
        let a = [1.0, 2.0, 3.0];
        let b: Vec<f64> = (0..300).map(|i| 1.0 + 2.0 * (i as f64 / 299.0)).collect();
        let d = ks_statistic(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!(d < 0.5);
    }
}
