//! Theoretical vs. effective contact windows.
//!
//! The paper's central availability analysis (§3.1): a *theoretical*
//! window is the SGP4-predicted interval a satellite spends above the
//! elevation mask; the *effective* window is the span between the first
//! and last **received** beacon inside it. The gap between the two —
//! 73.7–89.2 % across constellations — is the headline finding.

use crate::stats::Summary;

/// A theoretical contact window (from pass prediction), in campaign
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoreticalWindow {
    /// Window start (AOS), s.
    pub start_s: f64,
    /// Window end (LOS), s.
    pub end_s: f64,
}

impl TheoreticalWindow {
    /// Duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The effective (measured) portion of one theoretical window.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveWindow {
    /// The predicting window.
    pub theoretical: TheoreticalWindow,
    /// First received beacon, s (None → complete outage).
    pub first_rx_s: Option<f64>,
    /// Last received beacon, s.
    pub last_rx_s: Option<f64>,
    /// Beacons received inside the window.
    pub received: usize,
    /// Beacons transmitted inside the window (if known).
    pub transmitted: usize,
}

impl EffectiveWindow {
    /// Effective duration, seconds (0 when nothing was received).
    pub fn effective_duration_s(&self) -> f64 {
        match (self.first_rx_s, self.last_rx_s) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Effective/theoretical duration ratio ∈ [0, 1].
    pub fn duty_ratio(&self) -> f64 {
        let th = self.theoretical.duration_s();
        if th <= 0.0 {
            0.0
        } else {
            (self.effective_duration_s() / th).clamp(0.0, 1.0)
        }
    }

    /// Beacon delivery ratio inside the window (None if tx count unknown).
    pub fn beacon_reception_ratio(&self) -> Option<f64> {
        if self.transmitted == 0 {
            None
        } else {
            Some(self.received as f64 / self.transmitted as f64)
        }
    }
}

/// Assign received beacon timestamps (sorted or not) to theoretical
/// windows and compute the effective windows.
///
/// `windows` must be non-overlapping; beacons outside every window are
/// ignored (they would be spurious detections in a real campaign).
/// `transmitted_per_window` supplies the per-window beacon transmission
/// counts when known (pass an empty slice otherwise).
pub fn effective_windows(
    windows: &[TheoreticalWindow],
    beacon_times_s: &[f64],
    transmitted_per_window: &[usize],
) -> Vec<EffectiveWindow> {
    let mut sorted_times = beacon_times_s.to_vec();
    sorted_times.sort_by(|a, b| a.total_cmp(b));
    windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let lo = sorted_times.partition_point(|&t| t < w.start_s);
            let hi = sorted_times.partition_point(|&t| t <= w.end_s);
            let inside = &sorted_times[lo..hi];
            EffectiveWindow {
                theoretical: *w,
                first_rx_s: inside.first().copied(),
                last_rx_s: inside.last().copied(),
                received: inside.len(),
                transmitted: transmitted_per_window.get(i).copied().unwrap_or(0),
            }
        })
        .collect()
}

/// Aggregate statistics over a set of effective windows — the numbers the
/// paper's Figure 4 and §3.1 text report.
#[derive(Debug, Clone)]
pub struct ContactStats {
    /// Summary of theoretical durations, minutes.
    pub theoretical_min: Summary,
    /// Summary of effective durations (non-outage windows), minutes.
    pub effective_min: Summary,
    /// Mean shrink of effective vs. theoretical duration ∈ [0, 1]
    /// (the paper's "73.7–89.2 % shorter").
    pub duration_shrink: f64,
    /// Summary of theoretical inter-contact gaps, minutes.
    pub theoretical_interval_min: Summary,
    /// Summary of effective inter-contact gaps, minutes.
    pub effective_interval_min: Summary,
    /// Windows with zero receptions.
    pub outage_windows: usize,
    /// Total windows.
    pub total_windows: usize,
}

/// Merge overlapping windows (sorted or not) into union windows: with a
/// multi-satellite constellation, "a contact with the constellation" is
/// the union of simultaneous per-satellite passes — the quantity the
/// paper's interval analysis (Fig 4b) uses.
pub fn merge_overlapping(windows: &[EffectiveWindow]) -> Vec<EffectiveWindow> {
    let mut sorted: Vec<EffectiveWindow> = windows.to_vec();
    sorted.sort_by(|a, b| a.theoretical.start_s.total_cmp(&b.theoretical.start_s));
    let mut merged: Vec<EffectiveWindow> = Vec::with_capacity(sorted.len());
    for w in sorted {
        match merged.last_mut() {
            Some(last) if w.theoretical.start_s <= last.theoretical.end_s => {
                last.theoretical.end_s = last.theoretical.end_s.max(w.theoretical.end_s);
                last.received += w.received;
                last.transmitted += w.transmitted;
                last.first_rx_s = match (last.first_rx_s, w.first_rx_s) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                last.last_rx_s = match (last.last_rx_s, w.last_rx_s) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
            _ => merged.push(w),
        }
    }
    merged
}

impl ContactStats {
    /// Compute aggregate contact statistics. Windows must be in
    /// chronological order.
    pub fn compute(windows: &[EffectiveWindow]) -> ContactStats {
        Self::compute_grouped(std::slice::from_ref(&windows.to_vec()))
    }

    /// Compute statistics over several independent timelines (e.g. one
    /// per measurement site): durations pool directly, inter-contact gaps
    /// are computed within each timeline, and overlapping windows inside
    /// a timeline are unioned first.
    pub fn compute_grouped(groups: &[Vec<EffectiveWindow>]) -> ContactStats {
        let mut theoretical: Vec<f64> = Vec::new();
        let mut effective: Vec<f64> = Vec::new();
        let mut th_gaps: Vec<f64> = Vec::new();
        let mut eff_gaps: Vec<f64> = Vec::new();
        let mut total_th = 0.0;
        let mut total_eff = 0.0;
        let mut outage_windows = 0;
        let mut total_windows = 0;

        for group in groups {
            // Durations compare per-satellite passes (the paper's Fig 4a
            // quantity: each scheduled pass has a theoretical and an
            // effective span)…
            let mut per_pass: Vec<EffectiveWindow> = group.clone();
            per_pass.sort_by(|a, b| a.theoretical.start_s.total_cmp(&b.theoretical.start_s));
            total_windows += per_pass.len();
            outage_windows += per_pass.iter().filter(|w| w.received == 0).count();
            for w in &per_pass {
                let th = w.theoretical.duration_s() / 60.0;
                theoretical.push(th);
                total_th += th;
                let eff = w.effective_duration_s() / 60.0;
                total_eff += eff;
                if w.received > 0 {
                    effective.push(eff);
                }
            }
            // …while inter-contact gaps treat the constellation as one
            // service: simultaneous passes union into a single contact
            // (the paper's Fig 4b quantity).
            let windows = merge_overlapping(group);
            // Theoretical gaps: LOS → next AOS (within this timeline).
            for pair in windows.windows(2) {
                th_gaps.push((pair[1].theoretical.start_s - pair[0].theoretical.end_s) / 60.0);
            }
            // Effective gaps: last reception → next first reception;
            // outage windows extend the gap, as in the paper.
            let mut prev_last: Option<f64> = None;
            for w in &windows {
                if let (Some(first), Some(last)) = (w.first_rx_s, w.last_rx_s) {
                    if let Some(p) = prev_last {
                        eff_gaps.push((first - p) / 60.0);
                    }
                    prev_last = Some(last);
                }
            }
        }

        // Shrink compares total effective time against total theoretical
        // time (outages count as zero effective time).
        let duration_shrink = if total_th > 0.0 {
            1.0 - total_eff / total_th
        } else {
            0.0
        };

        ContactStats {
            theoretical_min: Summary::of(&theoretical),
            effective_min: Summary::of(&effective),
            duration_shrink,
            theoretical_interval_min: Summary::of(&th_gaps),
            effective_interval_min: Summary::of(&eff_gaps),
            outage_windows,
            total_windows,
        }
    }

    /// Ratio of mean effective gap to mean theoretical gap (the paper's
    /// "6.1–44.9× longer" intervals).
    pub fn interval_expansion(&self) -> f64 {
        if self.theoretical_interval_min.mean <= 0.0 {
            0.0
        } else {
            self.effective_interval_min.mean / self.theoretical_interval_min.mean
        }
    }
}

/// Normalised positions (0–1) of receptions within their windows — the
/// paper's Figure 9 series.
pub fn normalized_reception_positions(
    windows: &[EffectiveWindow],
    beacon_times_s: &[f64],
) -> Vec<f64> {
    let mut out = Vec::new();
    for w in windows {
        let d = w.theoretical.duration_s();
        if d <= 0.0 {
            continue;
        }
        for &t in beacon_times_s {
            if t >= w.theoretical.start_s && t <= w.theoretical.end_s {
                out.push((t - w.theoretical.start_s) / d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(start: f64, end: f64) -> TheoreticalWindow {
        TheoreticalWindow {
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn beacons_map_into_windows() {
        let windows = [win(0.0, 600.0), win(1_800.0, 2_400.0)];
        let beacons = [150.0, 300.0, 450.0, 2_000.0, 2_100.0, 5_000.0];
        let eff = effective_windows(&windows, &beacons, &[120, 120]);
        assert_eq!(eff.len(), 2);
        assert_eq!(eff[0].received, 3);
        assert_eq!(eff[0].first_rx_s, Some(150.0));
        assert_eq!(eff[0].last_rx_s, Some(450.0));
        assert!((eff[0].effective_duration_s() - 300.0).abs() < 1e-12);
        assert!((eff[0].duty_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(eff[1].received, 2);
        assert!((eff[1].beacon_reception_ratio().unwrap() - 2.0 / 120.0).abs() < 1e-12);
        // The 5000 s beacon falls outside both windows and is ignored.
    }

    #[test]
    fn outage_window_has_zero_duration() {
        let windows = [win(0.0, 600.0)];
        let eff = effective_windows(&windows, &[], &[]);
        assert_eq!(eff[0].received, 0);
        assert_eq!(eff[0].effective_duration_s(), 0.0);
        assert_eq!(eff[0].duty_ratio(), 0.0);
        assert_eq!(eff[0].beacon_reception_ratio(), None);
    }

    #[test]
    fn unsorted_beacons_are_handled() {
        let windows = [win(0.0, 600.0)];
        let eff = effective_windows(&windows, &[450.0, 150.0, 300.0], &[]);
        assert_eq!(eff[0].first_rx_s, Some(150.0));
        assert_eq!(eff[0].last_rx_s, Some(450.0));
    }

    #[test]
    fn contact_stats_shrink_and_expansion() {
        // Three 10-min windows spaced 90 min apart; receptions only in a
        // central 2-min slice of windows 1 and 3, nothing in window 2.
        let windows = [
            win(0.0, 600.0),
            win(6_000.0, 6_600.0),
            win(12_000.0, 12_600.0),
        ];
        let beacons = [240.0, 300.0, 360.0, 12_240.0, 12_300.0, 12_360.0];
        let eff = effective_windows(&windows, &beacons, &[]);
        let stats = ContactStats::compute(&eff);
        assert_eq!(stats.total_windows, 3);
        assert_eq!(stats.outage_windows, 1);
        // Effective total = 2+2 min of 30 min theoretical → shrink ≈ 0.867.
        assert!((stats.duration_shrink - (1.0 - 4.0 / 30.0)).abs() < 1e-9);
        // Theoretical gaps: 90 min each. Effective gap: from 360 s to
        // 12 240 s = 198 min (spanning the outage window).
        assert!((stats.theoretical_interval_min.mean - 90.0).abs() < 1e-9);
        assert!((stats.effective_interval_min.mean - 198.0).abs() < 1e-9);
        assert!((stats.interval_expansion() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn normalized_positions() {
        let windows = [win(0.0, 1_000.0)];
        let eff = effective_windows(&windows, &[0.0, 250.0, 500.0, 1_000.0], &[]);
        let pos = normalized_reception_positions(&eff, &[0.0, 250.0, 500.0, 1_000.0]);
        assert_eq!(pos, vec![0.0, 0.25, 0.5, 1.0]);
    }

    #[test]
    fn empty_inputs() {
        let stats = ContactStats::compute(&[]);
        assert_eq!(stats.total_windows, 0);
        assert_eq!(stats.duration_shrink, 0.0);
        assert_eq!(stats.interval_expansion(), 0.0);
        assert!(effective_windows(&[], &[1.0], &[]).is_empty());
    }
}
