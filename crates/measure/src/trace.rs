//! Packet-trace records.
//!
//! [`BeaconTrace`] mirrors what the paper's customised TinyGS stations
//! log for every received beacon (§2.2): timestamp, RSSI, SNR, and sender
//! metadata (constellation, satellite, elevation, distance, Doppler).

/// One received beacon, as logged by a ground station.
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconTrace {
    /// Reception time, seconds since campaign start.
    pub time_s: f64,
    /// Receiving site label (e.g. `"HK"`).
    pub site: String,
    /// Ground-station index within the site.
    pub station: u32,
    /// Constellation label (e.g. `"Tianqi"`).
    pub constellation: String,
    /// Satellite identifier within the catalog.
    pub sat_id: u32,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Elevation of the satellite at reception, degrees.
    pub elevation_deg: f64,
    /// Slant range at reception, km.
    pub distance_km: f64,
    /// Doppler shift at reception, Hz.
    pub doppler_hz: f64,
    /// Weather at the site at reception (`"sunny"` / `"cloudy"` /
    /// `"rainy"`).
    pub weather: &'static str,
}

/// A collection of beacon traces with the filters the analyses need.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    /// The traces, in reception order.
    pub traces: Vec<BeaconTrace>,
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a trace.
    pub fn push(&mut self, t: BeaconTrace) {
        self.traces.push(t);
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Traces from one constellation.
    pub fn by_constellation<'a>(
        &'a self,
        constellation: &'a str,
    ) -> impl Iterator<Item = &'a BeaconTrace> {
        self.traces
            .iter()
            .filter(move |t| t.constellation == constellation)
    }

    /// Traces from one site.
    pub fn by_site<'a>(&'a self, site: &'a str) -> impl Iterator<Item = &'a BeaconTrace> {
        self.traces.iter().filter(move |t| t.site == site)
    }

    /// All RSSI values for a constellation (for Fig 3b).
    pub fn rssi_of(&self, constellation: &str) -> Vec<f64> {
        self.by_constellation(constellation)
            .map(|t| t.rssi_dbm)
            .collect()
    }

    /// All slant distances for a constellation (for Fig 8).
    pub fn distances_of(&self, constellation: &str) -> Vec<f64> {
        self.by_constellation(constellation)
            .map(|t| t.distance_km)
            .collect()
    }

    /// Distinct constellation labels, in first-seen order.
    pub fn constellations(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for t in &self.traces {
            if !seen.contains(&t.constellation) {
                seen.push(t.constellation.clone());
            }
        }
        seen
    }

    /// Distinct satellites seen, as (constellation, sat_id) pairs.
    pub fn satellites(&self) -> Vec<(String, u32)> {
        let mut seen: Vec<(String, u32)> = Vec::new();
        for t in &self.traces {
            let key = (t.constellation.clone(), t.sat_id);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(time_s: f64, constellation: &str, site: &str, sat_id: u32) -> BeaconTrace {
        BeaconTrace {
            time_s,
            site: site.to_string(),
            station: 0,
            constellation: constellation.to_string(),
            sat_id,
            rssi_dbm: -125.0,
            snr_db: -8.0,
            elevation_deg: 35.0,
            distance_km: 1200.0,
            doppler_hz: 4500.0,
            weather: "sunny",
        }
    }

    #[test]
    fn filters_work() {
        let mut set = TraceSet::new();
        set.push(trace(0.0, "Tianqi", "HK", 1));
        set.push(trace(1.0, "FOSSA", "HK", 2));
        set.push(trace(2.0, "Tianqi", "SYD", 1));
        assert_eq!(set.len(), 3);
        assert_eq!(set.by_constellation("Tianqi").count(), 2);
        assert_eq!(set.by_site("HK").count(), 2);
        assert_eq!(set.rssi_of("FOSSA").len(), 1);
        assert_eq!(set.distances_of("Tianqi"), vec![1200.0, 1200.0]);
    }

    #[test]
    fn distinct_listings_preserve_order() {
        let mut set = TraceSet::new();
        set.push(trace(0.0, "Tianqi", "HK", 7));
        set.push(trace(1.0, "FOSSA", "HK", 3));
        set.push(trace(2.0, "Tianqi", "HK", 7));
        set.push(trace(3.0, "Tianqi", "HK", 8));
        assert_eq!(set.constellations(), vec!["Tianqi", "FOSSA"]);
        assert_eq!(
            set.satellites(),
            vec![
                ("Tianqi".to_string(), 7),
                ("FOSSA".to_string(), 3),
                ("Tianqi".to_string(), 8)
            ]
        );
    }

    #[test]
    fn empty_set() {
        let set = TraceSet::new();
        assert!(set.is_empty());
        assert!(set.constellations().is_empty());
        assert!(set.satellites().is_empty());
    }
}
