//! # satiot-measure
//!
//! The analysis layer: trace records, contact-window extraction, summary
//! statistics, and report rendering. This is the code path that turns raw
//! campaign output into the paper's tables and figures, and it is shared
//! by every `exp_*` binary in `satiot-bench`.
//!
//! * [`trace`] — packet-trace records (what a TinyGS-style station logs
//!   per received beacon, and what the active deployment logs per packet).
//! * [`stats`] — mean/percentile/CDF/histogram summaries.
//! * [`contact`] — theoretical vs. *effective* contact windows: the
//!   paper's central analysis (Fig 4a/4b/9) of how much of each predicted
//!   pass actually carries decodable beacons.
//! * [`reliability`] — sequence-ID based end-to-end delivery analysis
//!   (the paper's Appendix B methodology).
//! * [`latency`] — per-packet latency decomposition (Fig 5c/5d).
//! * [`table`] — plain-text table/series rendering for the experiment
//!   binaries.
//! * [`csv`] — dependency-free CSV/JSONL persistence for trace sets (the
//!   paper publishes its dataset as packet traces; so do we).
//! * [`sketch`] — mergeable streaming sketches (Welford moments,
//!   fixed-width quantile sketches, P² estimators) so month-long
//!   campaigns summarise in O(sites) memory instead of O(traces).

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod contact;
pub mod csv;
pub mod latency;
pub mod reliability;
pub mod sketch;
pub mod stats;
pub mod table;
pub mod trace;

pub use contact::{effective_windows, ContactStats, EffectiveWindow};
pub use sketch::{MetricSketch, P2Quantile, QuantileSketch, StreamSummary, TraceAggregate};
pub use stats::{cdf_points, Histogram, Summary};
pub use table::Table;
pub use trace::BeaconTrace;
