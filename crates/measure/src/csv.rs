//! CSV and JSONL persistence for beacon traces.
//!
//! The paper publishes its dataset as packet traces; this module gives
//! campaigns the same archival path — a dependency-free codec for
//! [`BeaconTrace`] sets, so a seven-month run can be written once and
//! re-analysed offline without re-simulating. Both formats are also the
//! on-disk side of the spill sinks in `satiot_core::sink`, which stream
//! traces out of RAM during a campaign.
//!
//! Two data-integrity rules hold on both paths:
//!
//! * **Hostile names round-trip.** Site and constellation labels that
//!   contain commas, quotes, or newlines are quoted RFC 4180-style on
//!   write and unquoted on read (clean labels keep the plain fast
//!   path). Historically `write_traces` emitted fields raw and
//!   `read_traces` did a bare `split(',')`, so one comma in a label
//!   silently shifted every later column.
//! * **Non-finite floats are rejected.** `"NaN".parse::<f64>()`
//!   succeeds, so a corrupted archive used to inject NaN/inf `time_s`
//!   or RSSI straight into a [`TraceSet`], bypassing the simulate-phase
//!   NaN-proofing. Readers now fail with [`CsvError::Malformed`] naming
//!   the offending column, mirroring `OrbitError::NonFiniteScan`.

use crate::trace::{BeaconTrace, TraceSet};
use std::io::{self, BufRead, Write};

/// The column header, in field order.
pub const HEADER: &str =
    "time_s,site,station,constellation,sat_id,rssi_dbm,snr_db,elevation_deg,distance_km,doppler_hz,weather";

/// Column names, indexed like the fields of a row.
const COLUMNS: [&str; 11] = [
    "time_s",
    "site",
    "station",
    "constellation",
    "sat_id",
    "rssi_dbm",
    "snr_db",
    "elevation_deg",
    "distance_km",
    "doppler_hz",
    "weather",
];

/// Errors while reading a trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed row (1-based line number and reason).
    Malformed {
        /// Line number (1 = header).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io: {e}"),
            CsvError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Whether a field needs RFC 4180 quoting before it can sit in a row.
fn needs_quoting(field: &str) -> bool {
    field
        .bytes()
        .any(|b| matches!(b, b',' | b'"' | b'\n' | b'\r'))
}

/// Quote a field RFC 4180-style: wrap in double quotes, double any
/// embedded double quote. Only called on fields that need it — clean
/// fields keep the allocation-free fast path.
fn quote_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len() + 2);
    out.push('"');
    for c in field.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Write one string field, quoting only when necessary.
fn write_field<W: Write>(w: &mut W, field: &str) -> io::Result<()> {
    if needs_quoting(field) {
        w.write_all(quote_field(field).as_bytes())
    } else {
        w.write_all(field.as_bytes())
    }
}

/// Serialise a trace set as CSV (header + one row per trace). Site and
/// constellation labels containing commas, quotes, or newlines are
/// quoted so they survive the round trip through [`read_traces`].
pub fn write_traces<W: Write>(traces: &TraceSet, mut w: W) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in &traces.traces {
        write_trace_row(&mut w, t)?;
    }
    Ok(())
}

/// Write a single CSV row (no header) — the incremental unit the spill
/// sink uses to stream traces to disk during a campaign.
pub fn write_trace_row<W: Write>(w: &mut W, t: &BeaconTrace) -> io::Result<()> {
    write!(w, "{:.3},", t.time_s)?;
    write_field(w, &t.site)?;
    write!(w, ",{},", t.station)?;
    write_field(w, &t.constellation)?;
    writeln!(
        w,
        ",{},{:.2},{:.2},{:.3},{:.3},{:.1},{}",
        t.sat_id, t.rssi_dbm, t.snr_db, t.elevation_deg, t.distance_km, t.doppler_hz, t.weather,
    )
}

/// Split one logical CSV record into fields, honouring RFC 4180 quoting.
/// The record must already be a complete logical line (quote parity even
/// — [`read_traces`] joins physical lines first).
fn split_record(record: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    // Fast path: no quotes anywhere → a bare split is correct.
    if !record.contains('"') {
        return Ok(record.split(',').map(str::to_string).collect());
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                '"' => {
                    return Err(CsvError::Malformed {
                        line: line_no,
                        reason: "quote inside unquoted field".to_string(),
                    })
                }
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed {
            line: line_no,
            reason: "unterminated quoted field".to_string(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Parse a finite float from a field, rejecting NaN/±inf by column name
/// (`"NaN".parse::<f64>()` succeeds, so a plain parse would let a
/// corrupted archive inject non-finite values into the trace set).
fn parse_finite(field: &str, col: usize, line_no: usize) -> Result<f64, CsvError> {
    let v: f64 = field.parse().map_err(|_| CsvError::Malformed {
        line: line_no,
        reason: format!("bad float in column {}: {field:?}", COLUMNS[col]),
    })?;
    if !v.is_finite() {
        return Err(CsvError::Malformed {
            line: line_no,
            reason: format!("non-finite value in column {}: {field:?}", COLUMNS[col]),
        });
    }
    Ok(v)
}

/// Intern a weather label against the fixed vocabulary.
fn parse_weather(field: &str, line_no: usize) -> Result<&'static str, CsvError> {
    match field {
        "sunny" => Ok("sunny"),
        "cloudy" => Ok("cloudy"),
        "rainy" => Ok("rainy"),
        other => Err(CsvError::Malformed {
            line: line_no,
            reason: format!("unknown weather {other:?}"),
        }),
    }
}

/// Build a trace from split fields.
fn trace_from_fields(fields: &[String], line_no: usize) -> Result<BeaconTrace, CsvError> {
    if fields.len() != 11 {
        return Err(CsvError::Malformed {
            line: line_no,
            reason: format!("expected 11 fields, got {}", fields.len()),
        });
    }
    let parse_u = |i: usize| -> Result<u32, CsvError> {
        fields[i].parse().map_err(|_| CsvError::Malformed {
            line: line_no,
            reason: format!("bad integer in column {}: {:?}", COLUMNS[i], fields[i]),
        })
    };
    Ok(BeaconTrace {
        time_s: parse_finite(&fields[0], 0, line_no)?,
        site: fields[1].clone(),
        station: parse_u(2)?,
        constellation: fields[3].clone(),
        sat_id: parse_u(4)?,
        rssi_dbm: parse_finite(&fields[5], 5, line_no)?,
        snr_db: parse_finite(&fields[6], 6, line_no)?,
        elevation_deg: parse_finite(&fields[7], 7, line_no)?,
        distance_km: parse_finite(&fields[8], 8, line_no)?,
        doppler_hz: parse_finite(&fields[9], 9, line_no)?,
        weather: parse_weather(&fields[10], line_no)?,
    })
}

/// Parse a trace CSV produced by [`write_traces`]. Quoted fields (and
/// quoted fields spanning physical lines) are unescaped; non-finite
/// floats are rejected with the offending column named.
pub fn read_traces<R: BufRead>(r: R) -> Result<TraceSet, CsvError> {
    let mut set = TraceSet::new();
    let mut lines = r.lines().enumerate();
    let mut saw_header = false;
    while let Some((idx, line)) = lines.next() {
        let mut record = line?;
        let line_no = idx + 1;
        if !saw_header {
            if record.trim() != HEADER {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!("unexpected header {record:?}"),
                });
            }
            saw_header = true;
            continue;
        }
        if record.trim().is_empty() {
            continue;
        }
        // A record whose quote count is odd continues on the next
        // physical line (a quoted label contained a newline). Doubled
        // escape quotes keep parity even, so this terminates exactly
        // when the quoted field closes.
        while record.bytes().filter(|&b| b == b'"').count() % 2 == 1 {
            match lines.next() {
                Some((_, next)) => {
                    record.push('\n');
                    record.push_str(&next?);
                }
                None => {
                    return Err(CsvError::Malformed {
                        line: line_no,
                        reason: "unterminated quoted field at end of file".to_string(),
                    })
                }
            }
        }
        let fields = split_record(&record, line_no)?;
        set.push(trace_from_fields(&fields, line_no)?);
    }
    if !saw_header {
        return Err(CsvError::Malformed {
            line: 1,
            reason: "empty input (missing header)".to_string(),
        });
    }
    Ok(set)
}

// ---------------------------------------------------------------------------
// JSONL: one flat JSON object per line
// ---------------------------------------------------------------------------

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialise a trace set as JSONL (one flat object per line, no header).
pub fn write_traces_jsonl<W: Write>(traces: &TraceSet, mut w: W) -> io::Result<()> {
    for t in &traces.traces {
        write_trace_jsonl(&mut w, t)?;
    }
    Ok(())
}

/// Write a single JSONL record — the incremental unit the JSONL spill
/// sink uses.
pub fn write_trace_jsonl<W: Write>(w: &mut W, t: &BeaconTrace) -> io::Result<()> {
    writeln!(
        w,
        concat!(
            "{{\"time_s\":{:.3},\"site\":\"{}\",\"station\":{},",
            "\"constellation\":\"{}\",\"sat_id\":{},\"rssi_dbm\":{:.2},",
            "\"snr_db\":{:.2},\"elevation_deg\":{:.3},\"distance_km\":{:.3},",
            "\"doppler_hz\":{:.1},\"weather\":\"{}\"}}"
        ),
        t.time_s,
        json_escape(&t.site),
        t.station,
        json_escape(&t.constellation),
        t.sat_id,
        t.rssi_dbm,
        t.snr_db,
        t.elevation_deg,
        t.distance_km,
        t.doppler_hz,
        t.weather,
    )
}

/// Pull one `"key": value` pair out of a flat JSON object body,
/// returning the raw value text and the rest of the input.
fn json_take_pair(rest: &str, line_no: usize) -> Result<(String, String, &str), CsvError> {
    let malformed = |reason: String| CsvError::Malformed {
        line: line_no,
        reason,
    };
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| malformed("expected key".to_string()))?;
    let key_end = rest
        .find('"')
        .ok_or_else(|| malformed("unterminated key".to_string()))?;
    let key = rest[..key_end].to_string();
    let rest = rest[key_end + 1..].trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| malformed(format!("expected ':' after key {key:?}")))?;
    let rest = rest.trim_start();
    if let Some(body) = rest.strip_prefix('"') {
        // String value: scan for the closing quote, honouring escapes.
        let mut value = String::new();
        let mut chars = body.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((key, value, &body[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, 'r')) => value.push('\r'),
                    Some((_, 't')) => value.push('\t'),
                    Some((j, 'u')) => {
                        let hex = body
                            .get(j + 1..j + 5)
                            .ok_or_else(|| malformed("truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| malformed(format!("bad \\u escape {hex:?}")))?;
                        value.push(
                            char::from_u32(code)
                                .ok_or_else(|| malformed(format!("invalid codepoint \\u{hex}")))?,
                        );
                        // Skip the four hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => {
                        return Err(malformed(format!("bad escape {other:?}")));
                    }
                },
                c => value.push(c),
            }
        }
        Err(malformed("unterminated string value".to_string()))
    } else {
        // Bare value (number): runs to the next ',' or '}'.
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| malformed("unterminated value".to_string()))?;
        Ok((key, rest[..end].trim().to_string(), &rest[end..]))
    }
}

/// Parse a JSONL trace archive produced by [`write_traces_jsonl`].
/// Enforces the same integrity rules as [`read_traces`]: hostile labels
/// unescape, non-finite floats are rejected by column name.
pub fn read_traces_jsonl<R: BufRead>(r: R) -> Result<TraceSet, CsvError> {
    let mut set = TraceSet::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let malformed = |reason: String| CsvError::Malformed {
            line: line_no,
            reason,
        };
        let body = trimmed
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| malformed("expected a JSON object".to_string()))?;
        // Collect values into CSV column order, then reuse the shared
        // field-level validation.
        let mut fields: Vec<Option<String>> = vec![None; COLUMNS.len()];
        let mut rest = body;
        loop {
            let (key, value, after) = json_take_pair(rest, line_no)?;
            let col = COLUMNS
                .iter()
                .position(|c| *c == key)
                .ok_or_else(|| malformed(format!("unknown key {key:?}")))?;
            if fields[col].replace(value).is_some() {
                return Err(malformed(format!("duplicate key {key:?}")));
            }
            let after = after.trim_start();
            match after.strip_prefix(',') {
                Some(next) => rest = next,
                None if after.is_empty() => break,
                None => {
                    return Err(malformed(format!("trailing garbage {after:?}")));
                }
            }
        }
        let fields: Vec<String> = fields
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.ok_or_else(|| malformed(format!("missing key {:?}", COLUMNS[i]))))
            .collect::<Result<_, _>>()?;
        set.push(trace_from_fields(&fields, line_no)?);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new();
        for i in 0..5 {
            set.push(BeaconTrace {
                time_s: i as f64 * 8.5,
                site: "HK".into(),
                station: i % 3,
                constellation: if i % 2 == 0 { "Tianqi" } else { "FOSSA" }.into(),
                sat_id: i,
                rssi_dbm: -125.0 - i as f64,
                snr_db: -8.25,
                elevation_deg: 30.0 + i as f64,
                distance_km: 1_200.5,
                doppler_hz: -4_321.0,
                weather: "sunny",
            });
        }
        set
    }

    fn hostile_set() -> TraceSet {
        let mut set = TraceSet::new();
        let names = [
            ("HK, Kowloon", "Tianqi"),
            ("SYD", "FOSSA \"beta\""),
            ("Lagos,\nVI", "Swarm, Inc."),
            ("plain", "also_plain"),
            ("trailing,", ",leading"),
            ("\"", "\"\""),
        ];
        for (i, (site, constellation)) in names.iter().enumerate() {
            set.push(BeaconTrace {
                time_s: i as f64,
                site: site.to_string(),
                station: i as u32,
                constellation: constellation.to_string(),
                sat_id: i as u32,
                rssi_dbm: -120.0,
                snr_db: -5.5,
                elevation_deg: 45.0,
                distance_km: 900.25,
                doppler_hz: 1_000.0,
                weather: "cloudy",
            });
        }
        set
    }

    #[test]
    fn round_trip_preserves_everything_relevant() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_traces(&set, &mut buf).unwrap();
        let back = read_traces(&buf[..]).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in set.traces.iter().zip(&back.traces) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.constellation, b.constellation);
            assert_eq!(a.sat_id, b.sat_id);
            assert_eq!(a.weather, b.weather);
            assert!((a.time_s - b.time_s).abs() < 1e-3);
            assert!((a.rssi_dbm - b.rssi_dbm).abs() < 0.01);
            assert!((a.distance_km - b.distance_km).abs() < 1e-3);
        }
    }

    /// A comma in a site name used to shift every later column; quotes
    /// used to vanish. Hostile labels must round-trip byte-for-byte.
    #[test]
    fn hostile_names_round_trip() {
        let set = hostile_set();
        let mut buf = Vec::new();
        write_traces(&set, &mut buf).unwrap();
        let back = read_traces(&buf[..]).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in set.traces.iter().zip(&back.traces) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.constellation, b.constellation);
            assert_eq!(a.station, b.station);
        }
    }

    /// Clean labels must not get gratuitous quotes (the fast path).
    #[test]
    fn clean_names_stay_unquoted() {
        let mut buf = Vec::new();
        write_traces(&sample_set(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            !text.contains('"'),
            "clean archive contains quotes:\n{text}"
        );
    }

    #[test]
    fn non_finite_floats_are_rejected_by_column() {
        let good_row = "1.0,HK,0,Tianqi,1,-125.0,-8.0,30.0,1200.0,-4000.0,sunny";
        for (needle, col) in [
            ("1.0,", "time_s"),
            ("-125.0", "rssi_dbm"),
            ("-8.0", "snr_db"),
            ("30.0", "elevation_deg"),
            ("1200.0", "distance_km"),
            ("-4000.0", "doppler_hz"),
        ] {
            for bad in ["NaN", "inf", "-inf", "infinity"] {
                let row = if needle == "1.0," {
                    good_row.replacen("1.0,", &format!("{bad},"), 1)
                } else {
                    good_row.replace(needle, bad)
                };
                let text = format!("{HEADER}\n{row}\n");
                let err = read_traces(text.as_bytes()).unwrap_err();
                match err {
                    CsvError::Malformed { reason, .. } => {
                        assert!(
                            reason.contains("non-finite") && reason.contains(col),
                            "row {row:?}: reason {reason:?} should name column {col}"
                        );
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        // The good row itself still parses.
        let text = format!("{HEADER}\n{good_row}\n");
        assert_eq!(read_traces(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn header_is_validated() {
        let bad = "wrong,header\n1,2\n";
        assert!(matches!(
            read_traces(bad.as_bytes()),
            Err(CsvError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let mut buf = Vec::new();
        write_traces(&sample_set(), &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("only,three,fields\n");
        let err = read_traces(text.as_bytes()).unwrap_err();
        match err {
            CsvError::Malformed { line, reason } => {
                assert_eq!(line, 7);
                assert!(reason.contains("11 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_numbers_and_weather_are_rejected() {
        let good_row = "1.0,HK,0,Tianqi,1,-125.0,-8.0,30.0,1200.0,-4000.0,sunny";
        let cases = [
            good_row.replace("-125.0", "not-a-number"),
            good_row.replace("sunny", "hailstorm"),
            good_row.replace(",0,", ",minus-one,"),
        ];
        for bad in cases {
            let text = format!("{HEADER}\n{bad}\n");
            assert!(read_traces(text.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unterminated_quotes_are_rejected() {
        let text = format!("{HEADER}\n1.0,\"HK,0,Tianqi,1,-125.0,-8.0,30.0,1200.0,-4000.0,sunny\n");
        assert!(matches!(
            read_traces(text.as_bytes()),
            Err(CsvError::Malformed { .. })
        ));
        // Stray quote mid-field.
        let text = format!("{HEADER}\n1.0,H\"K,0,Tianqi,1,-125.0,-8.0,30.0,1200.0,-4000.0,sunny\n");
        assert!(matches!(
            read_traces(text.as_bytes()),
            Err(CsvError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let text = format!("{HEADER}\n\n\n");
        assert!(read_traces(text.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn jsonl_round_trip_with_hostile_names() {
        for set in [sample_set(), hostile_set()] {
            let mut buf = Vec::new();
            write_traces_jsonl(&set, &mut buf).unwrap();
            let back = read_traces_jsonl(&buf[..]).unwrap();
            assert_eq!(back.len(), set.len());
            for (a, b) in set.traces.iter().zip(&back.traces) {
                assert_eq!(a.site, b.site);
                assert_eq!(a.constellation, b.constellation);
                assert_eq!(a.station, b.station);
                assert_eq!(a.weather, b.weather);
                assert!((a.time_s - b.time_s).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn jsonl_rejects_non_finite_and_garbage() {
        let good = r#"{"time_s":1.0,"site":"HK","station":0,"constellation":"Tianqi","sat_id":1,"rssi_dbm":-125.0,"snr_db":-8.0,"elevation_deg":30.0,"distance_km":1200.0,"doppler_hz":-4000.0,"weather":"sunny"}"#;
        assert_eq!(read_traces_jsonl(good.as_bytes()).unwrap().len(), 1);
        let cases = [
            good.replace("-125.0", "NaN"),
            good.replace("1200.0", "inf"),
            good.replace("\"sunny\"", "\"hail\""),
            good.replace("\"site\"", "\"sight\""),
            good.replace('}', ""),
            "not json at all".to_string(),
        ];
        for bad in cases {
            assert!(
                read_traces_jsonl(bad.as_bytes()).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
