//! CSV persistence for beacon traces.
//!
//! The paper publishes its dataset as packet traces; this module gives
//! campaigns the same archival path — a dependency-free CSV codec for
//! [`BeaconTrace`] sets, so a seven-month run can be written once and
//! re-analysed offline without re-simulating.

use crate::trace::{BeaconTrace, TraceSet};
use std::io::{self, BufRead, Write};

/// The column header, in field order.
pub const HEADER: &str =
    "time_s,site,station,constellation,sat_id,rssi_dbm,snr_db,elevation_deg,distance_km,doppler_hz,weather";

/// Errors while reading a trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed row (1-based line number and reason).
    Malformed {
        /// Line number (1 = header).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io: {e}"),
            CsvError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialise a trace set as CSV (header + one row per trace).
pub fn write_traces<W: Write>(traces: &TraceSet, mut w: W) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in &traces.traces {
        writeln!(
            w,
            "{:.3},{},{},{},{},{:.2},{:.2},{:.3},{:.3},{:.1},{}",
            t.time_s,
            t.site,
            t.station,
            t.constellation,
            t.sat_id,
            t.rssi_dbm,
            t.snr_db,
            t.elevation_deg,
            t.distance_km,
            t.doppler_hz,
            t.weather,
        )?;
    }
    Ok(())
}

/// Parse a trace CSV produced by [`write_traces`].
pub fn read_traces<R: BufRead>(r: R) -> Result<TraceSet, CsvError> {
    let mut set = TraceSet::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        if idx == 0 {
            if line.trim() != HEADER {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: format!("expected 11 fields, got {}", fields.len()),
            });
        }
        let parse_f = |i: usize| -> Result<f64, CsvError> {
            fields[i].parse().map_err(|_| CsvError::Malformed {
                line: line_no,
                reason: format!("bad float in column {i}: {:?}", fields[i]),
            })
        };
        let parse_u = |i: usize| -> Result<u32, CsvError> {
            fields[i].parse().map_err(|_| CsvError::Malformed {
                line: line_no,
                reason: format!("bad integer in column {i}: {:?}", fields[i]),
            })
        };
        let weather = match fields[10] {
            "sunny" => "sunny",
            "cloudy" => "cloudy",
            "rainy" => "rainy",
            other => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!("unknown weather {other:?}"),
                })
            }
        };
        set.push(BeaconTrace {
            time_s: parse_f(0)?,
            site: fields[1].to_string(),
            station: parse_u(2)?,
            constellation: fields[3].to_string(),
            sat_id: parse_u(4)?,
            rssi_dbm: parse_f(5)?,
            snr_db: parse_f(6)?,
            elevation_deg: parse_f(7)?,
            distance_km: parse_f(8)?,
            doppler_hz: parse_f(9)?,
            weather,
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new();
        for i in 0..5 {
            set.push(BeaconTrace {
                time_s: i as f64 * 8.5,
                site: "HK".into(),
                station: i % 3,
                constellation: if i % 2 == 0 { "Tianqi" } else { "FOSSA" }.into(),
                sat_id: i,
                rssi_dbm: -125.0 - i as f64,
                snr_db: -8.25,
                elevation_deg: 30.0 + i as f64,
                distance_km: 1_200.5,
                doppler_hz: -4_321.0,
                weather: "sunny",
            });
        }
        set
    }

    #[test]
    fn round_trip_preserves_everything_relevant() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_traces(&set, &mut buf).unwrap();
        let back = read_traces(&buf[..]).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in set.traces.iter().zip(&back.traces) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.constellation, b.constellation);
            assert_eq!(a.sat_id, b.sat_id);
            assert_eq!(a.weather, b.weather);
            assert!((a.time_s - b.time_s).abs() < 1e-3);
            assert!((a.rssi_dbm - b.rssi_dbm).abs() < 0.01);
            assert!((a.distance_km - b.distance_km).abs() < 1e-3);
        }
    }

    #[test]
    fn header_is_validated() {
        let bad = "wrong,header\n1,2\n";
        assert!(matches!(
            read_traces(bad.as_bytes()),
            Err(CsvError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let mut buf = Vec::new();
        write_traces(&sample_set(), &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("only,three,fields\n");
        let err = read_traces(text.as_bytes()).unwrap_err();
        match err {
            CsvError::Malformed { line, reason } => {
                assert_eq!(line, 7);
                assert!(reason.contains("11 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_numbers_and_weather_are_rejected() {
        let good_row = "1.0,HK,0,Tianqi,1,-125.0,-8.0,30.0,1200.0,-4000.0,sunny";
        let cases = [
            good_row.replace("-125.0", "not-a-number"),
            good_row.replace("sunny", "hailstorm"),
            good_row.replace(",0,", ",minus-one,"),
        ];
        for bad in cases {
            let text = format!("{HEADER}\n{bad}\n");
            assert!(read_traces(text.as_bytes()).is_err(), "accepted {bad:?}");
        }
        // The good row itself parses.
        let text = format!("{HEADER}\n{good_row}\n");
        assert_eq!(read_traces(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let text = format!("{HEADER}\n\n\n");
        assert!(read_traces(text.as_bytes()).unwrap().is_empty());
    }
}
