//! Plain-text table and series rendering for the experiment binaries.
//!
//! Every `exp_*` binary prints the same rows/series the paper's tables
//! and figures report; this module keeps the formatting in one place.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are pre-formatted strings).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(|s| s.as_str()).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&fmt_row(&self.headers, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a `(x, y)` series (e.g. a CDF) as aligned two-column text.
pub fn render_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("== {title} ==\n{x_label:>12}  {y_label}\n");
    for (x, y) in series {
        out.push_str(&format!("{x:>12.3}  {y:.4}\n"));
    }
    out
}

/// Format a float with `digits` decimals — the standard cell formatter.
pub fn num(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["City", "# GS", "Traces"]);
        t.row_str(&["HK", "6", "31330"]);
        t.row_str(&["Pittsburgh", "3", "15612"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("City"));
        // Column alignment: both data rows have the numbers starting at
        // the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let hk = lines.iter().find(|l| l.starts_with("HK")).unwrap();
        let pgh = lines.iter().find(|l| l.starts_with("Pittsburgh")).unwrap();
        assert_eq!(hk.find("31330").unwrap(), pgh.find("15612").unwrap());
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("Empty", &["A", "B"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("A"));
        assert_eq!(s.lines().count(), 3); // Title, header, rule.
    }

    #[test]
    fn series_renders_every_point() {
        let s = render_series("CDF", "latency", "P", &[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("1.000"));
        assert!(s.contains("0.5000"));
    }

    #[test]
    fn formatters() {
        assert_eq!(num(3.85642, 2), "3.86");
        assert_eq!(pct(0.914), "91.4%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new("Ragged", &["A", "B"]);
        t.row_str(&["only-one"]);
        t.row_str(&["x", "y"]);
        let s = t.render();
        assert!(s.contains("only-one"));
        assert_eq!(t.len(), 2);
    }
}
