//! Mergeable streaming sketches: bounded-memory statistics for
//! campaigns too large to hold as full trace vectors.
//!
//! The paper's passive dataset is 121,744 beacon traces over seven
//! months; the ROADMAP's mega-constellation regime is orders of
//! magnitude beyond that. This module supplies the statistics layer the
//! streaming sink architecture (`satiot_core::sink`) feeds: per-shard
//! estimators that observe one value at a time in O(1), and that
//! **merge** across shards so pooled per-site workers can combine their
//! partials in configuration order with memory O(sites), not O(traces).
//!
//! Three estimators, with distinct accuracy contracts:
//!
//! * [`StreamSummary`] — count / mean / variance / min / max via
//!   Welford's online update, merged with Chan's parallel formula.
//!   Merge is exact in counts and extremes; mean/variance agree with
//!   the pooled computation to floating-point reassociation (the
//!   property tests bound this at ~1e-9 relative).
//! * [`QuantileSketch`] — a fixed-width bucket map over the full real
//!   line (`BTreeMap<i64, u64>` keyed by `floor(v / width)`).
//!   **Hard contract**: `quantile(p)` is within `width / 2` of the
//!   nearest-rank exact percentile ([`stats::nearest_rank_sorted`]),
//!   and `merge` is *exact* — integer counts add, so merged-per-shard
//!   and global sketches are bit-identical regardless of sharding or
//!   merge order (associative and commutative; property-tested).
//! * [`P2Quantile`] — the Jain–Chlamtac P² online percentile estimator:
//!   five markers, O(1) state, no buckets. **Hard contract** on
//!   arbitrary finite inputs: exact for n ≤ 5, always within the
//!   observed `[min, max]`, monotone marker heights. Its tighter
//!   accuracy (typically well under 1 % of the interquartile range on
//!   i.i.d. streams) is empirical, not guaranteed, and it does *not*
//!   merge — use it per-stream or for refinement, and use
//!   [`QuantileSketch`] wherever the merge law or a hard error band is
//!   required.
//!
//! Non-finite observations are dropped and counted (mirrored into the
//! `obs.invariants.non_finite_flagged` data-quality counter), matching
//! [`crate::stats::Histogram`] and [`crate::stats::Summary`].
//!
//! [`TraceAggregate`] composes these into the per-constellation trace
//! statistics the aggregating campaign sink retains instead of the
//! traces themselves.

use crate::stats::percentile_sorted;
use crate::trace::BeaconTrace;
use satiot_obs::invariants::flag_non_finite;
use std::collections::BTreeMap;

/// Bucket width of the RSSI quantile sketch, dBm.
pub const RSSI_WIDTH_DBM: f64 = 0.25;
/// Bucket width of the SNR quantile sketch, dB.
pub const SNR_WIDTH_DB: f64 = 0.25;
/// Bucket width of the slant-distance quantile sketch, km.
pub const DISTANCE_WIDTH_KM: f64 = 5.0;
/// Bucket width of the elevation quantile sketch, degrees.
pub const ELEVATION_WIDTH_DEG: f64 = 0.5;
/// Bucket width of the end-to-end latency quantile sketch, minutes.
pub const LATENCY_WIDTH_MIN: f64 = 1.0;

// ---------------------------------------------------------------------------
// StreamSummary: mergeable moments
// ---------------------------------------------------------------------------

/// Mergeable streaming moments: count, mean, M2 (sum of squared
/// deviations), min, max. Welford's update per observation; Chan's
/// parallel formula per merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamSummary {
    /// Finite observations.
    pub count: u64,
    /// Running mean (0 until the first observation).
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
    /// Minimum finite observation (+∞ until the first).
    pub min: f64,
    /// Maximum finite observation (−∞ until the first).
    pub max: f64,
    /// Non-finite observations dropped (also flagged through
    /// `satiot_obs`).
    pub non_finite_dropped: u64,
}

impl StreamSummary {
    /// An empty summary.
    pub fn new() -> StreamSummary {
        StreamSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite_dropped: 0,
        }
    }

    /// Observe one value. Non-finite values are dropped and counted.
    pub fn observe(&mut self, v: f64) {
        if !flag_non_finite("measure::sketch::StreamSummary::observe", v) {
            self.non_finite_dropped += 1;
            return;
        }
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another shard into this one (Chan's parallel update).
    /// Counts and extremes merge exactly; mean/M2 agree with the pooled
    /// stream up to floating-point reassociation.
    pub fn merge(&mut self, other: &StreamSummary) {
        self.non_finite_dropped += other.non_finite_dropped;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let nf = self.non_finite_dropped;
            *self = other.clone();
            self.non_finite_dropped = nf;
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let total = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / total;
        self.m2 += other.m2 + delta * delta * na * nb / total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Population variance (0 for fewer than one observation).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample (n−1) standard deviation; 0 for fewer than two
    /// observations.
    pub fn sample_std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0).sqrt()
        }
    }

    /// Half-width of the 95 % normal-approximation confidence interval
    /// on the mean, using the sample standard deviation.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }
}

// ---------------------------------------------------------------------------
// QuantileSketch: mergeable fixed-width bucket map
// ---------------------------------------------------------------------------

/// A mergeable quantile sketch: integer counts in fixed-width buckets
/// keyed by `floor(v / width)` over the whole real line.
///
/// Memory is O(distinct buckets) — bounded by the data's spread divided
/// by the width, independent of the observation count. `merge` adds
/// counts, so it is exact, associative, and commutative: merging
/// per-site shards in any order yields bit-identical quantiles to one
/// global sketch over the pooled stream (the streaming merge law the
/// campaign sinks rely on; property-tested in `prop_measure`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    width: f64,
    counts: BTreeMap<i64, u64>,
    count: u64,
    min: f64,
    max: f64,
    /// Non-finite observations dropped (also flagged through
    /// `satiot_obs`).
    pub non_finite_dropped: u64,
}

impl QuantileSketch {
    /// A sketch with the given bucket width (must be finite, > 0).
    pub fn new(width: f64) -> QuantileSketch {
        assert!(
            width.is_finite() && width > 0.0,
            "degenerate sketch width {width}"
        );
        QuantileSketch {
            width,
            counts: BTreeMap::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite_dropped: 0,
        }
    }

    /// The configured bucket width (the quantile error band is
    /// `width / 2`).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Finite observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum finite observation (+∞ while empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum finite observation (−∞ while empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Distinct buckets currently held (the memory footprint).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// The raw `(bucket key, count)` pairs in ascending key order — the
    /// exact mergeable state. Checkpointing code serialises this and
    /// rebuilds through [`QuantileSketch::from_parts`], so a resumed
    /// sweep merges bit-identically to an uninterrupted one.
    pub fn bucket_iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(k, n)| (*k, *n))
    }

    /// Rebuild a sketch from parts previously exported via the public
    /// accessors ([`QuantileSketch::width`], [`QuantileSketch::min`],
    /// [`QuantileSketch::max`], [`QuantileSketch::count`],
    /// [`QuantileSketch::bucket_iter`]). Validates the invariants
    /// `new`/`observe` maintain and rejects inconsistent parts with a
    /// description, so checkpoint loaders can treat a bad record as
    /// corrupt instead of merging garbage.
    pub fn from_parts(
        width: f64,
        min: f64,
        max: f64,
        count: u64,
        non_finite_dropped: u64,
        buckets: impl IntoIterator<Item = (i64, u64)>,
    ) -> Result<QuantileSketch, String> {
        if !(width.is_finite() && width > 0.0) {
            return Err(format!("degenerate sketch width {width}"));
        }
        let mut counts = BTreeMap::new();
        let mut total = 0u64;
        for (k, n) in buckets {
            if n == 0 {
                return Err(format!("empty bucket {k}"));
            }
            if counts.insert(k, n).is_some() {
                return Err(format!("duplicate bucket {k}"));
            }
            total = total
                .checked_add(n)
                .ok_or_else(|| "bucket counts overflow u64".to_string())?;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, expected {count}"));
        }
        if count == 0 {
            if min != f64::INFINITY || max != f64::NEG_INFINITY {
                return Err(format!("empty sketch with extremes [{min}, {max}]"));
            }
        } else if !(min.is_finite() && max.is_finite() && min <= max) {
            return Err(format!("inconsistent extremes [{min}, {max}]"));
        }
        Ok(QuantileSketch {
            width,
            counts,
            count,
            min,
            max,
            non_finite_dropped,
        })
    }

    /// Observe one value. Non-finite values are dropped and counted.
    pub fn observe(&mut self, v: f64) {
        if !flag_non_finite("measure::sketch::QuantileSketch::observe", v) {
            self.non_finite_dropped += 1;
            return;
        }
        // `as i64` saturates at the i64 range, so astronomically large
        // magnitudes clamp into the edge buckets instead of wrapping.
        let key = (v / self.width).floor() as i64;
        *self.counts.entry(key).or_insert(0) += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another shard into this one. Panics if the widths differ
    /// (sketches are only comparable bucket-for-bucket).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.width == other.width,
            "merging sketches of widths {} and {}",
            self.width,
            other.width
        );
        for (k, n) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += n;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.non_finite_dropped += other.non_finite_dropped;
    }

    /// Quantile estimate for `p` ∈ [0, 100]: the midpoint of the bucket
    /// holding the nearest-rank order statistic, clamped into the
    /// observed `[min, max]`. Guaranteed within `width / 2` of
    /// [`crate::stats::nearest_rank_sorted`] on the same data. Returns
    /// 0 for an empty sketch.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // Same rank convention as `nearest_rank_sorted`.
        let target = (p / 100.0 * (self.count - 1) as f64).round() as u64;
        // The extreme order statistics are tracked exactly.
        if target == 0 {
            return self.min;
        }
        if target == self.count - 1 {
            return self.max;
        }
        let mut cum = 0u64;
        for (k, n) in &self.counts {
            cum += n;
            if cum > target {
                let mid = (*k as f64 + 0.5) * self.width;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max // Unreachable for a consistent sketch; degrade safely.
    }
}

// ---------------------------------------------------------------------------
// P2Quantile: Jain–Chlamtac online percentile estimator
// ---------------------------------------------------------------------------

/// The P² (piecewise-parabolic) online estimator of one percentile:
/// five markers tracking min, the p/2, p, and (1+p)/2 percentiles, and
/// max, adjusted per observation without storing the sample.
///
/// Hard guarantees on arbitrary finite inputs (property-tested): exact
/// for n ≤ 5 (it simply sorts its buffer), the estimate always lies in
/// the observed `[min, max]`, and marker heights stay monotone. Its
/// much tighter accuracy on i.i.d. streams is empirical; where a hard
/// error band or a merge law is needed, use [`QuantileSketch`].
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    p: f64,
    /// First five observations, sorted lazily at marker initialisation.
    initial: Vec<f64>,
    /// Marker heights (valid once `count >= 5`).
    q: [f64; 5],
    /// Marker positions, 1-based (valid once `count >= 5`).
    pos: [f64; 5],
    /// Finite observations so far.
    count: u64,
    /// Non-finite observations dropped (also flagged through
    /// `satiot_obs`).
    pub non_finite_dropped: u64,
}

impl P2Quantile {
    /// An estimator for quantile `p` ∈ (0, 1) (e.g. 0.5 for the
    /// median).
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0, "P2 quantile {p} outside (0, 1)");
        P2Quantile {
            p,
            initial: Vec::with_capacity(5),
            q: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            count: 0,
            non_finite_dropped: 0,
        }
    }

    /// Finite observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observe one value. Non-finite values are dropped and counted.
    pub fn observe(&mut self, x: f64) {
        if !flag_non_finite("measure::sketch::P2Quantile::observe", x) {
            self.non_finite_dropped += 1;
            return;
        }
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                for (i, v) in self.initial.iter().enumerate() {
                    self.q[i] = *v;
                }
            }
            return;
        }

        // Locate the cell and update the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // Largest i in 0..=3 with q[i] <= x.
            (0..4).rev().find(|&i| self.q[i] <= x).unwrap_or(0)
        };
        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }

        // Desired positions for the current count.
        let n = self.count as f64;
        let p = self.p;
        let desired = [
            1.0,
            1.0 + (n - 1.0) * p / 2.0,
            1.0 + (n - 1.0) * p,
            1.0 + (n - 1.0) * (1.0 + p) / 2.0,
            n,
        ];

        // Adjust the three interior markers. Indexed: each step reads
        // both neighbours and writes marker `i`, so an iterator over
        // `desired` cannot express the borrow pattern.
        #[allow(clippy::needless_range_loop)]
        for i in 1..4 {
            let d = desired[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let qn = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qn && qn < self.q[i + 1] {
                    qn
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved
    /// by `d` ∈ {−1, +1}.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let np = &self.pos;
        q[i] + d / (np[i + 1] - np[i - 1])
            * ((np[i] - np[i - 1] + d) * (q[i + 1] - q[i]) / (np[i + 1] - np[i])
                + (np[i + 1] - np[i] - d) * (q[i] - q[i - 1]) / (np[i] - np[i - 1]))
    }

    /// Linear fallback when the parabolic prediction leaves the
    /// neighbouring heights.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
    }

    /// The current estimate of the target quantile. Exact (the sorted
    /// buffer's interpolated percentile) for n ≤ 5; 0 for an empty
    /// estimator.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            return percentile_sorted(&sorted, self.p * 100.0);
        }
        self.q[2]
    }

    /// Minimum finite observation (marker 0), 0 while empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.count <= 5 {
            self.initial.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            self.q[0]
        }
    }

    /// Maximum finite observation (marker 4), 0 while empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.count <= 5 {
            self.initial
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            self.q[4]
        }
    }
}

// ---------------------------------------------------------------------------
// MetricSketch + TraceAggregate: what the aggregating sink retains
// ---------------------------------------------------------------------------

/// Streaming statistics for one metric: mergeable moments plus a
/// mergeable quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSketch {
    /// Moments (count, mean, variance, extremes).
    pub summary: StreamSummary,
    /// Quantiles (hard `width / 2` band, exact merge).
    pub quantiles: QuantileSketch,
}

impl MetricSketch {
    /// A metric sketch whose quantile buckets are `width` wide.
    pub fn new(width: f64) -> MetricSketch {
        MetricSketch {
            summary: StreamSummary::new(),
            quantiles: QuantileSketch::new(width),
        }
    }

    /// Observe one value into both estimators.
    pub fn observe(&mut self, v: f64) {
        self.summary.observe(v);
        self.quantiles.observe(v);
    }

    /// Fold another shard into this one.
    pub fn merge(&mut self, other: &MetricSketch) {
        self.summary.merge(&other.summary);
        self.quantiles.merge(&other.quantiles);
    }
}

/// Streaming per-constellation statistics over one trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstellationSketch {
    /// Constellation label.
    pub constellation: String,
    /// Traces observed for this constellation.
    pub count: u64,
    /// RSSI distribution, dBm (Fig 3b's quantity).
    pub rssi_dbm: MetricSketch,
    /// SNR distribution, dB.
    pub snr_db: MetricSketch,
    /// Slant-distance distribution, km (Fig 8's quantity).
    pub distance_km: MetricSketch,
    /// Elevation distribution, degrees.
    pub elevation_deg: MetricSketch,
    /// Per-site trace counts, in first-seen order.
    pub sites: Vec<(String, u64)>,
}

impl ConstellationSketch {
    fn new(constellation: &str) -> ConstellationSketch {
        ConstellationSketch {
            constellation: constellation.to_string(),
            count: 0,
            rssi_dbm: MetricSketch::new(RSSI_WIDTH_DBM),
            snr_db: MetricSketch::new(SNR_WIDTH_DB),
            distance_km: MetricSketch::new(DISTANCE_WIDTH_KM),
            elevation_deg: MetricSketch::new(ELEVATION_WIDTH_DEG),
            sites: Vec::new(),
        }
    }

    fn observe(&mut self, t: &BeaconTrace) {
        self.count += 1;
        self.rssi_dbm.observe(t.rssi_dbm);
        self.snr_db.observe(t.snr_db);
        self.distance_km.observe(t.distance_km);
        self.elevation_deg.observe(t.elevation_deg);
        match self.sites.iter_mut().find(|(s, _)| *s == t.site) {
            Some((_, n)) => *n += 1,
            None => self.sites.push((t.site.clone(), 1)),
        }
    }

    fn merge(&mut self, other: &ConstellationSketch) {
        self.count += other.count;
        self.rssi_dbm.merge(&other.rssi_dbm);
        self.snr_db.merge(&other.snr_db);
        self.distance_km.merge(&other.distance_km);
        self.elevation_deg.merge(&other.elevation_deg);
        for (site, n) in &other.sites {
            match self.sites.iter_mut().find(|(s, _)| s == site) {
                Some((_, mine)) => *mine += n,
                None => self.sites.push((site.clone(), *n)),
            }
        }
    }
}

/// Streaming aggregate over a whole trace stream: one
/// [`ConstellationSketch`] per constellation, in first-seen order, plus
/// total counts. This is everything the aggregating campaign sink
/// retains — memory O(constellations × buckets), not O(traces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    /// Total traces observed.
    pub total: u64,
    /// Per-constellation sketches, in first-seen order.
    pub groups: Vec<ConstellationSketch>,
}

impl TraceAggregate {
    /// An empty aggregate.
    pub fn new() -> TraceAggregate {
        TraceAggregate::default()
    }

    /// Observe one trace.
    pub fn observe(&mut self, t: &BeaconTrace) {
        self.total += 1;
        match self
            .groups
            .iter_mut()
            .find(|g| g.constellation == t.constellation)
        {
            Some(g) => g.observe(t),
            None => {
                let mut g = ConstellationSketch::new(&t.constellation);
                g.observe(t);
                self.groups.push(g);
            }
        }
    }

    /// Fold another shard into this one. Campaign drivers merge
    /// per-site shards in configuration order, so first-seen group
    /// order is deterministic; the sketch *contents* are
    /// order-independent (exact for counts and quantile buckets).
    pub fn merge(&mut self, other: &TraceAggregate) {
        self.total += other.total;
        for g in &other.groups {
            match self
                .groups
                .iter_mut()
                .find(|mine| mine.constellation == g.constellation)
            {
                Some(mine) => mine.merge(g),
                None => self.groups.push(g.clone()),
            }
        }
    }

    /// The sketch for one constellation, if any trace carried it.
    pub fn constellation(&self, label: &str) -> Option<&ConstellationSketch> {
        self.groups.iter().find(|g| g.constellation == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::nearest_rank_sorted;

    fn lcg(seed: &mut u64) -> f64 {
        // Deterministic uniform in [0, 1): a plain LCG keeps the test
        // free of the campaign RNG.
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn quantile_sketch_round_trips_through_parts() {
        let mut seed = 7u64;
        let mut s = QuantileSketch::new(0.25);
        for _ in 0..500 {
            s.observe(lcg(&mut seed) * 40.0 - 10.0);
        }
        s.observe(f64::NAN);
        let rebuilt = QuantileSketch::from_parts(
            s.width(),
            s.min(),
            s.max(),
            s.count(),
            s.non_finite_dropped,
            s.bucket_iter(),
        )
        .expect("exported parts are consistent");
        assert_eq!(rebuilt, s);

        // Empty sketches round-trip too (sentinel extremes).
        let empty = QuantileSketch::new(1.0);
        let rebuilt = QuantileSketch::from_parts(1.0, f64::INFINITY, f64::NEG_INFINITY, 0, 0, [])
            .expect("empty parts are consistent");
        assert_eq!(rebuilt, empty);

        // Corrupt parts are rejected, not merged.
        assert!(QuantileSketch::from_parts(0.0, 0.0, 1.0, 1, 0, [(0, 1)]).is_err());
        assert!(QuantileSketch::from_parts(1.0, 0.0, 1.0, 2, 0, [(0, 1)]).is_err());
        assert!(QuantileSketch::from_parts(1.0, 0.0, 1.0, 2, 0, [(0, 1), (0, 1)]).is_err());
        assert!(QuantileSketch::from_parts(1.0, 5.0, 1.0, 2, 0, [(0, 2)]).is_err());
        assert!(QuantileSketch::from_parts(1.0, 0.0, 1.0, 1, 0, [(0, 0), (1, 1)]).is_err());
    }

    #[test]
    fn stream_summary_matches_exact_moments() {
        let mut s = StreamSummary::new();
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for v in values {
            s.observe(v);
        }
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample std = pop std * sqrt(n / (n-1)).
        let expected = 2.0 * (8.0f64 / 7.0).sqrt();
        assert!((s.sample_std_dev() - expected).abs() < 1e-12);
    }

    #[test]
    fn stream_summary_drops_non_finite() {
        let mut s = StreamSummary::new();
        s.observe(1.0);
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        assert_eq!(s.count, 1);
        assert_eq!(s.non_finite_dropped, 2);
        assert_eq!(s.mean, 1.0);
    }

    #[test]
    fn stream_summary_merge_matches_pooled() {
        let mut seed = 42;
        let all: Vec<f64> = (0..1000).map(|_| lcg(&mut seed) * 50.0 - 25.0).collect();
        let mut pooled = StreamSummary::new();
        for v in &all {
            pooled.observe(*v);
        }
        let mut merged = StreamSummary::new();
        for chunk in all.chunks(137) {
            let mut shard = StreamSummary::new();
            for v in chunk {
                shard.observe(*v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.count, pooled.count);
        assert_eq!(merged.min, pooled.min);
        assert_eq!(merged.max, pooled.max);
        assert!((merged.mean - pooled.mean).abs() < 1e-9);
        assert!((merged.std_dev() - pooled.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn quantile_sketch_within_half_width() {
        let mut seed = 7;
        let mut values: Vec<f64> = (0..2000).map(|_| lcg(&mut seed) * 80.0 - 140.0).collect();
        let mut sk = QuantileSketch::new(RSSI_WIDTH_DBM);
        for v in &values {
            sk.observe(*v);
        }
        values.sort_by(|a, b| a.total_cmp(b));
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let exact = nearest_rank_sorted(&values, p);
            let est = sk.quantile(p);
            assert!(
                (est - exact).abs() <= RSSI_WIDTH_DBM / 2.0 + 1e-9,
                "p{p}: sketch {est} vs exact {exact}"
            );
        }
        assert_eq!(sk.quantile(0.0), values[0]);
        assert_eq!(sk.quantile(100.0), values[values.len() - 1]);
    }

    #[test]
    fn quantile_sketch_merge_is_exact() {
        let mut seed = 9;
        let all: Vec<f64> = (0..500).map(|_| lcg(&mut seed) * 100.0).collect();
        let mut global = QuantileSketch::new(0.5);
        for v in &all {
            global.observe(*v);
        }
        // Shard, merge in a *different* order than observation order.
        let mut shards: Vec<QuantileSketch> = all
            .chunks(61)
            .map(|c| {
                let mut s = QuantileSketch::new(0.5);
                for v in c {
                    s.observe(*v);
                }
                s
            })
            .collect();
        shards.reverse();
        let mut merged = QuantileSketch::new(0.5);
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, global);
    }

    #[test]
    fn quantile_sketch_drops_non_finite_and_survives_extremes() {
        let mut sk = QuantileSketch::new(1.0);
        sk.observe(f64::NAN);
        sk.observe(1e300); // Saturates into the edge bucket, no wrap.
        sk.observe(-1e300);
        sk.observe(5.0);
        assert_eq!(sk.count(), 3);
        assert_eq!(sk.non_finite_dropped, 1);
        let q = sk.quantile(50.0);
        assert!(q.is_finite());
    }

    #[test]
    fn p2_exact_for_small_samples() {
        let mut p2 = P2Quantile::new(0.5);
        for v in [3.0, 1.0, 2.0] {
            p2.observe(v);
        }
        assert_eq!(p2.estimate(), 2.0);
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut seed = 1;
        let mut p2 = P2Quantile::new(0.5);
        let mut values = Vec::new();
        for _ in 0..5000 {
            let v = lcg(&mut seed) * 200.0 - 100.0;
            p2.observe(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.total_cmp(b));
        let exact = nearest_rank_sorted(&values, 50.0);
        let est = p2.estimate();
        // Empirical accuracy on an i.i.d. stream: well inside 1 % of
        // the range.
        assert!((est - exact).abs() < 2.0, "p2 {est} vs exact {exact}");
        assert!(est >= p2.min() && est <= p2.max());
    }

    #[test]
    fn p2_estimate_bounded_and_drops_non_finite() {
        let mut p2 = P2Quantile::new(0.9);
        p2.observe(f64::NAN);
        assert_eq!(p2.count(), 0);
        assert_eq!(p2.non_finite_dropped, 1);
        for i in 0..100 {
            p2.observe(if i % 7 == 0 { 1000.0 } else { 0.0 });
        }
        let est = p2.estimate();
        assert!((0.0..=1000.0).contains(&est));
    }

    fn trace(constellation: &str, site: &str, rssi: f64) -> BeaconTrace {
        BeaconTrace {
            time_s: 0.0,
            site: site.to_string(),
            station: 0,
            constellation: constellation.to_string(),
            sat_id: 1,
            rssi_dbm: rssi,
            snr_db: -8.0,
            elevation_deg: 35.0,
            distance_km: 1200.0,
            doppler_hz: 4500.0,
            weather: "sunny",
        }
    }

    #[test]
    fn trace_aggregate_groups_and_merges() {
        let mut a = TraceAggregate::new();
        a.observe(&trace("Tianqi", "HK", -120.0));
        a.observe(&trace("FOSSA", "HK", -130.0));
        let mut b = TraceAggregate::new();
        b.observe(&trace("Tianqi", "SYD", -122.0));
        a.merge(&b);
        assert_eq!(a.total, 3);
        let tq = a.constellation("Tianqi").unwrap();
        assert_eq!(tq.count, 2);
        assert_eq!(
            tq.sites,
            vec![("HK".to_string(), 1), ("SYD".to_string(), 1)]
        );
        assert_eq!(tq.rssi_dbm.summary.count, 2);
        assert!((tq.rssi_dbm.summary.mean - -121.0).abs() < 1e-12);
        assert!(a.constellation("Iridium").is_none());
    }
}
