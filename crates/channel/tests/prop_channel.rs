//! Property-based tests for the channel models.

use proptest::prelude::*;
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::atmosphere::{clutter_loss_db, tropo_loss_db};
use satiot_channel::budget::LinkBudget;
use satiot_channel::fspl::{distance_for_fspl_km, fspl_db};
use satiot_channel::weather::{Weather, WeatherParams, WeatherProcess};
use satiot_sim::{Rng, SimTime};

proptest! {
    /// FSPL is strictly monotone in distance and frequency and inverts
    /// exactly.
    #[test]
    fn fspl_monotone_and_invertible(
        d in 0.01_f64..5_000.0,
        f in 100.0_f64..1_000.0,
        factor in 1.01_f64..5.0,
    ) {
        prop_assert!(fspl_db(d * factor, f) > fspl_db(d, f));
        prop_assert!(fspl_db(d, f * factor) > fspl_db(d, f));
        let loss = fspl_db(d, f);
        prop_assert!((distance_for_fspl_km(loss, f) - d).abs() / d < 1e-9);
    }

    /// Deterministic path losses are finite, non-negative, and monotone
    /// toward the horizon.
    #[test]
    fn atmospheric_losses_behave(el_deg in 0.0_f64..90.0, delta in 0.1_f64..10.0) {
        let el = el_deg.to_radians();
        let lower = (el_deg - delta).max(0.0).to_radians();
        prop_assert!(tropo_loss_db(el) >= 0.0);
        prop_assert!(tropo_loss_db(lower) >= tropo_loss_db(el) - 1e-9);
        prop_assert!(clutter_loss_db(el) >= 0.0);
        prop_assert!(clutter_loss_db(lower) >= clutter_loss_db(el) - 1e-9);
    }

    /// Antenna gains stay bounded and defined over the full quadrant.
    #[test]
    fn antenna_gains_bounded(el_deg in -10.0_f64..100.0) {
        for antenna in [
            AntennaPattern::Isotropic,
            AntennaPattern::Dipole,
            AntennaPattern::QuarterWaveMonopole,
            AntennaPattern::FiveEighthsWaveMonopole,
        ] {
            let g = antenna.gain_dbi(el_deg.to_radians());
            prop_assert!((-12.0..=8.0).contains(&g), "{antenna:?}: {g}");
        }
    }

    /// A link sample equals the deterministic mean plus shadowing plus a
    /// bounded fast fade, and SNR is RSSI minus the floor — for arbitrary
    /// geometry, weather, and seed.
    #[test]
    fn sample_decomposes(
        seed in any::<u64>(),
        d in 200.0_f64..4_000.0,
        el_deg in 0.0_f64..90.0,
        shadow in -10.0_f64..10.0,
        wx_idx in 0usize..3,
    ) {
        let weather = [Weather::Sunny, Weather::Cloudy, Weather::Rainy][wx_idx];
        let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let el = el_deg.to_radians();
        let mut rng = Rng::from_seed(seed);
        let s = budget.sample(d, el, weather, shadow, &mut rng);
        let mean = budget.mean_rssi_dbm(d, el, weather);
        let fade = s.rssi_dbm - mean - shadow;
        // Rician power gain is bounded well within ±30 dB in practice;
        // the hard floor in the sampler is −90 dB.
        prop_assert!((-95.0..25.0).contains(&fade), "fade {fade}");
        prop_assert!((s.snr_db - (s.rssi_dbm - budget.noise_floor_dbm())).abs() < 1e-12);
    }

    /// Weather fractions over any horizon sum to one and every query
    /// returns a state.
    #[test]
    fn weather_partitions_time(seed in any::<u64>(), days in 1.0_f64..90.0) {
        let horizon = SimTime::from_days(days);
        let w = WeatherProcess::generate(
            &WeatherParams::default(),
            horizon,
            &mut Rng::from_seed(seed),
        );
        let total: f64 = [Weather::Sunny, Weather::Cloudy, Weather::Rainy]
            .iter()
            .map(|s| w.fraction_in(*s, horizon))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }
}
