//! Property-based bit-identity for the SoA batch kernels: across random
//! geometry, weather, link budgets, and seeds, the batched channel chain
//! must reproduce the scalar chain exactly — same bits, same RNG stream.

use proptest::prelude::*;
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::batch::ChannelBatch;
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::Weather;
use satiot_sim::Rng;

fn budget_for(idx: usize) -> LinkBudget {
    match idx {
        0 => LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole),
        1 => LinkBudget::dts_uplink(433.0, AntennaPattern::FiveEighthsWaveMonopole),
        _ => LinkBudget::terrestrial(470.0),
    }
}

proptest! {
    /// The deterministic kernels (mean RSSI, Rician K-factor) are
    /// bit-identical to their scalar counterparts for every element,
    /// including across chunk boundaries and ragged tails.
    #[test]
    fn batched_kernels_bit_identical_to_scalar(
        seed in any::<u64>(),
        n in 1usize..700,
        b_idx in 0usize..3,
        wx_idx in 0usize..3,
    ) {
        let weather = [Weather::Sunny, Weather::Cloudy, Weather::Rainy][wx_idx];
        let budget = budget_for(b_idx);
        let mut geom = Rng::from_seed(seed);
        let range: Vec<f64> = (0..n).map(|_| geom.uniform(0.01, 4_500.0)).collect();
        let el: Vec<f64> = (0..n).map(|_| geom.uniform(-0.3, 1.9)).collect();
        let mut batch = ChannelBatch::default();
        for i in 0..n {
            batch.push(range[i], el[i]);
        }
        batch.run(&budget, weather);
        for i in 0..n {
            prop_assert_eq!(
                batch.mean_rssi_dbm[i].to_bits(),
                budget.mean_rssi_dbm(range[i], el[i], weather).to_bits(),
                "mean RSSI diverged at element {}", i
            );
            prop_assert_eq!(
                batch.k_linear[i].to_bits(),
                budget.fading.k_linear(el[i]).to_bits(),
                "K-factor diverged at element {}", i
            );
        }
    }

    /// The stochastic tail: finishing kernel outputs with
    /// `sample_prepared` yields bit-identical link samples to the scalar
    /// `sample` call *and* consumes the RNG in the same sequence, so a
    /// campaign switching between the paths replays identically.
    #[test]
    fn prepared_samples_bit_identical_to_scalar(
        seed in any::<u64>(),
        n in 1usize..200,
        wx_idx in 0usize..3,
        shadow in -12.0_f64..12.0,
    ) {
        let weather = [Weather::Sunny, Weather::Cloudy, Weather::Rainy][wx_idx];
        let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let noise = budget.noise_floor_dbm();
        let mut geom = Rng::from_seed(seed ^ 0x9E37_79B9_7F4A_7C15);
        let range: Vec<f64> = (0..n).map(|_| geom.uniform(200.0, 4_000.0)).collect();
        let el: Vec<f64> = (0..n).map(|_| geom.uniform(0.0, 1.5)).collect();
        let mut batch = ChannelBatch::default();
        for i in 0..n {
            batch.push(range[i], el[i]);
        }
        batch.run(&budget, weather);
        let mut scalar_rng = Rng::from_seed(seed);
        let mut batched_rng = Rng::from_seed(seed);
        for i in 0..n {
            let s = budget.sample(range[i], el[i], weather, shadow, &mut scalar_rng);
            let p = budget.sample_prepared(
                range[i],
                el[i],
                weather,
                batch.mean_rssi_dbm[i],
                batch.k_linear[i],
                shadow,
                noise,
                &mut batched_rng,
            );
            prop_assert_eq!(s.rssi_dbm.to_bits(), p.rssi_dbm.to_bits());
            prop_assert_eq!(s.snr_db.to_bits(), p.snr_db.to_bits());
        }
        // Identical draw counts: the streams stay aligned afterwards.
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }
}
