//! Antenna gain patterns.
//!
//! The paper's hardware: satellites carry simple dipoles (no beamforming —
//! §2.1), ground stations and IoT nodes use vertical whip monopoles. The
//! active-measurement experiment compares ¼-wave and ⅝-wave whips
//! (Fig 5b), so the patterns must reproduce two properties:
//!
//! 1. a vertical whip has its null at zenith and its gain maximum at low
//!    elevation — partially compensating the longer slant path, and
//! 2. the ⅝-wave whip has ≈ 3 dB more peak gain with a slightly flatter
//!    low-angle lobe, which is why it retransmits less in the paper.
//!
//! Patterns are analytic approximations of the classic monopole/dipole
//! elevation cuts, floored to represent real-world nulls being filled by
//! multipath.

/// Antenna models used by the measured systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AntennaPattern {
    /// Ideal isotropic radiator (analysis baseline).
    Isotropic,
    /// Half-wave dipole (satellite side), 2.15 dBi peak broadside.
    Dipole,
    /// Ground ¼-wave whip monopole, ~2.15 dBi peak toward low elevation.
    QuarterWaveMonopole,
    /// Ground ⅝-wave whip monopole, ~5.15 dBi peak, flatter low-angle lobe.
    FiveEighthsWaveMonopole,
}

/// Gain floor for ground whips: deep pattern nulls are filled in practice
/// by ground reflections and finite ground planes.
const NULL_FLOOR_DBI: f64 = -6.0;

/// Gain floor for the satellite dipole: nanosatellites tumble or hold
/// coarse attitude, so the ground target is rarely parked exactly in the
/// pattern null — averaged over attitude, the null fills to about −3 dBi.
const SAT_DIPOLE_FLOOR_DBI: f64 = -3.0;

impl AntennaPattern {
    /// Gain (dBi) toward a satellite at `elevation_rad` above the local
    /// horizon. For the satellite-side [`AntennaPattern::Dipole`] the
    /// argument is interpreted as the complement of the off-nadir angle of
    /// the ground target, which for a nadir-aligned dipole gives the same
    /// functional shape (peak toward the limb, null at nadir).
    pub fn gain_dbi(self, elevation_rad: f64) -> f64 {
        let el = elevation_rad.clamp(0.0, core::f64::consts::FRAC_PI_2);
        match self {
            AntennaPattern::Isotropic => 0.0,
            AntennaPattern::Dipole => {
                // cos²(el) power pattern (sin² of the angle from the axis).
                let p = el.cos().powi(2);
                (2.15 + 10.0 * p.max(1e-6).log10()).max(SAT_DIPOLE_FLOOR_DBI)
            }
            AntennaPattern::QuarterWaveMonopole => {
                let p = el.cos().powi(2);
                (2.15 + 10.0 * p.max(1e-6).log10()).max(NULL_FLOOR_DBI)
            }
            AntennaPattern::FiveEighthsWaveMonopole => {
                // Higher peak, slightly narrower main lobe (cos³ power),
                // with the first-null fill typical of ⅝-wave whips.
                let p = el.cos().powi(3);
                (5.15 + 10.0 * p.max(1e-6).log10()).max(NULL_FLOOR_DBI)
            }
        }
    }

    /// Short, stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AntennaPattern::Isotropic => "isotropic",
            AntennaPattern::Dipole => "dipole",
            AntennaPattern::QuarterWaveMonopole => "1/4-wave",
            AntennaPattern::FiveEighthsWaveMonopole => "5/8-wave",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::FRAC_PI_2;

    #[test]
    fn isotropic_is_flat() {
        for deg in [0, 30, 60, 90] {
            assert_eq!(
                AntennaPattern::Isotropic.gain_dbi((deg as f64).to_radians()),
                0.0
            );
        }
    }

    #[test]
    fn whips_null_at_zenith_peak_at_horizon() {
        for ant in [
            AntennaPattern::Dipole,
            AntennaPattern::QuarterWaveMonopole,
            AntennaPattern::FiveEighthsWaveMonopole,
        ] {
            let horizon = ant.gain_dbi(0.0);
            let zenith = ant.gain_dbi(FRAC_PI_2);
            assert!(horizon > zenith, "{ant:?}: {horizon} !> {zenith}");
            let floor = if ant == AntennaPattern::Dipole {
                -3.0
            } else {
                -6.0
            };
            assert_eq!(zenith, floor, "{ant:?} null should hit the floor");
        }
    }

    #[test]
    fn five_eighths_beats_quarter_wave_at_low_elevation() {
        for deg in [0.0_f64, 10.0, 25.0, 40.0] {
            let q = AntennaPattern::QuarterWaveMonopole.gain_dbi(deg.to_radians());
            let f = AntennaPattern::FiveEighthsWaveMonopole.gain_dbi(deg.to_radians());
            assert!(f > q, "at {deg}°: 5/8 {f} !> 1/4 {q}");
        }
        // Peak advantage ≈ 3 dB.
        let dq = AntennaPattern::FiveEighthsWaveMonopole.gain_dbi(0.0)
            - AntennaPattern::QuarterWaveMonopole.gain_dbi(0.0);
        assert!((dq - 3.0).abs() < 0.1, "peak delta {dq}");
    }

    #[test]
    fn gains_are_bounded() {
        for ant in [
            AntennaPattern::Dipole,
            AntennaPattern::QuarterWaveMonopole,
            AntennaPattern::FiveEighthsWaveMonopole,
        ] {
            for deg in 0..=90 {
                let g = ant.gain_dbi((deg as f64).to_radians());
                assert!((-6.0..=6.0).contains(&g), "{ant:?} at {deg}°: {g}");
            }
        }
    }

    #[test]
    fn out_of_range_elevations_clamp() {
        let a = AntennaPattern::QuarterWaveMonopole;
        assert_eq!(a.gain_dbi(-0.3), a.gain_dbi(0.0));
        assert_eq!(a.gain_dbi(2.0), a.gain_dbi(FRAC_PI_2));
    }

    #[test]
    fn labels() {
        assert_eq!(AntennaPattern::QuarterWaveMonopole.label(), "1/4-wave");
        assert_eq!(AntennaPattern::FiveEighthsWaveMonopole.label(), "5/8-wave");
    }
}
