//! Stochastic fading: slow log-normal shadowing and fast Rician fading.
//!
//! Split follows the land-mobile-satellite literature: a *shadowing* term
//! that stays correlated over a pass (drawn once per pass per link) and a
//! *fast fading* term decorrelating packet-to-packet. The Rician K-factor
//! rises with elevation — near zenith the line-of-sight path dominates;
//! near the horizon multipath takes over, which is a second mechanism
//! (after the deterministic tropospheric loss) pushing packet losses to
//! the edges of every contact window.

use crate::weather::Weather;
use satiot_sim::Rng;

/// Parameters of the composite fading model.
#[derive(Debug, Clone, Copy)]
pub struct FadingParams {
    /// Log-normal shadowing standard deviation on a sunny day, dB.
    pub shadow_sigma_sunny_db: f64,
    /// Extra shadowing σ in rain (scatter is more variable), dB.
    pub shadow_sigma_rain_extra_db: f64,
    /// Rician K-factor at zenith, dB.
    pub k_zenith_db: f64,
    /// Rician K-factor at the horizon, dB.
    pub k_horizon_db: f64,
}

impl Default for FadingParams {
    fn default() -> Self {
        FadingParams {
            shadow_sigma_sunny_db: 2.2,
            shadow_sigma_rain_extra_db: 1.3,
            k_zenith_db: 12.0,
            k_horizon_db: 2.0,
        }
    }
}

impl FadingParams {
    /// Shadowing σ (dB) under the given weather.
    pub fn shadow_sigma_db(&self, weather: Weather) -> f64 {
        match weather {
            Weather::Sunny => self.shadow_sigma_sunny_db,
            Weather::Cloudy => self.shadow_sigma_sunny_db + 0.4 * self.shadow_sigma_rain_extra_db,
            Weather::Rainy => self.shadow_sigma_sunny_db + self.shadow_sigma_rain_extra_db,
        }
    }

    /// Rician K-factor (linear) at `elevation_rad`, interpolated in dB
    /// between the horizon and zenith anchors.
    pub fn k_linear(&self, elevation_rad: f64) -> f64 {
        let el = elevation_rad.clamp(0.0, core::f64::consts::FRAC_PI_2);
        let frac = el / core::f64::consts::FRAC_PI_2;
        let k_db = self.k_horizon_db + (self.k_zenith_db - self.k_horizon_db) * frac;
        10f64.powf(k_db / 10.0)
    }

    /// Draw a per-pass shadowing value, dB (zero-mean).
    pub fn draw_shadowing_db(&self, weather: Weather, rng: &mut Rng) -> f64 {
        rng.normal(0.0, self.shadow_sigma_db(weather))
    }

    /// Draw a per-packet fast-fading value, dB (Rician power gain with
    /// elevation-dependent K; expectation ≈ 0 dB).
    pub fn draw_fast_fading_db(&self, elevation_rad: f64, rng: &mut Rng) -> f64 {
        let gain = rng.rician_power_gain(self.k_linear(elevation_rad));
        10.0 * gain.max(1e-9).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_interpolates_between_anchors() {
        let p = FadingParams::default();
        let k_h = 10.0 * p.k_linear(0.0).log10();
        let k_z = 10.0 * p.k_linear(core::f64::consts::FRAC_PI_2).log10();
        assert!((k_h - p.k_horizon_db).abs() < 1e-9);
        assert!((k_z - p.k_zenith_db).abs() < 1e-9);
        let k_mid = 10.0 * p.k_linear(core::f64::consts::FRAC_PI_4).log10();
        assert!((k_mid - 0.5 * (p.k_horizon_db + p.k_zenith_db)).abs() < 1e-9);
    }

    #[test]
    fn shadowing_sigma_grows_with_worse_weather() {
        let p = FadingParams::default();
        assert!(p.shadow_sigma_db(Weather::Rainy) > p.shadow_sigma_db(Weather::Cloudy));
        assert!(p.shadow_sigma_db(Weather::Cloudy) > p.shadow_sigma_db(Weather::Sunny));
    }

    #[test]
    fn fast_fading_is_harsher_at_horizon() {
        let p = FadingParams::default();
        let n = 30_000;
        let mut rng = Rng::from_seed(77);
        let deep_horizon = (0..n)
            .filter(|_| p.draw_fast_fading_db(0.0, &mut rng) < -6.0)
            .count();
        let deep_zenith = (0..n)
            .filter(|_| p.draw_fast_fading_db(core::f64::consts::FRAC_PI_2, &mut rng) < -6.0)
            .count();
        assert!(
            deep_horizon > 4 * deep_zenith.max(1),
            "horizon {deep_horizon} vs zenith {deep_zenith}"
        );
    }

    #[test]
    fn fast_fading_mean_power_is_near_unity() {
        let p = FadingParams::default();
        let mut rng = Rng::from_seed(101);
        let n = 100_000;
        let mean_pow: f64 = (0..n)
            .map(|_| 10f64.powf(p.draw_fast_fading_db(0.5, &mut rng) / 10.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean_pow - 1.0).abs() < 0.02, "mean power {mean_pow}");
    }

    #[test]
    fn shadowing_is_zero_mean_with_requested_sigma() {
        let p = FadingParams::default();
        let mut rng = Rng::from_seed(103);
        let n = 100_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| p.draw_shadowing_db(Weather::Sunny, &mut rng))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var.sqrt() - p.shadow_sigma_sunny_db).abs() < 0.05,
            "sigma {}",
            var.sqrt()
        );
    }
}
