//! # satiot-channel
//!
//! RF propagation models for Direct-to-Satellite (DtS) IoT links in the
//! 400–450 MHz band, plus the short terrestrial links of the LoRaWAN
//! baseline.
//!
//! The module stack mirrors a real link budget:
//!
//! * [`fspl`] — free-space path loss.
//! * [`atmosphere`] — elevation-dependent tropospheric excess loss and
//!   weather-dependent attenuation (antenna wetting / scatter on rainy
//!   days; pure gaseous absorption is negligible at UHF and is folded into
//!   the same term).
//! * [`weather`] — a three-state Markov weather process (sunny / cloudy /
//!   rainy) driving the attenuation and fading statistics, so campaign
//!   traces show the weather dependence the paper measures (Fig 3d, 5b).
//! * [`antenna`] — gain-vs-elevation patterns for the hardware the paper
//!   deploys: satellite dipole, ground ¼-wave and ⅝-wave monopoles.
//! * [`fading`] — slow log-normal shadowing (drawn per pass) and fast
//!   Rician fading (drawn per packet) with elevation-dependent K-factor.
//! * [`noise`] — thermal noise floor for a given bandwidth/noise figure.
//! * [`budget`] — the end-to-end composition: geometry + hardware +
//!   weather + fading → RSSI and SNR for one packet.
//! * [`batch`] — structure-of-arrays kernels evaluating the
//!   deterministic part of the chain over `&[f64]` slices in fixed-size
//!   chunks, bit-identical to the scalar path (the campaign simulate
//!   hot path).
//!
//! Every stochastic draw takes an explicit [`satiot_sim::Rng`], keeping
//! campaigns reproducible.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod antenna;
pub mod atmosphere;
pub mod batch;
pub mod budget;
pub mod fading;
pub mod fspl;
pub mod noise;
pub mod weather;

pub use antenna::AntennaPattern;
pub use budget::{LinkBudget, LinkSample};
pub use noise::noise_floor_dbm;
pub use weather::{Weather, WeatherProcess};
