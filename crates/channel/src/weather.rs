//! A three-state Markov weather process.
//!
//! The paper's Figures 3d and 5b split measurements by weather (sunny vs.
//! rainy); to regenerate those splits the campaign needs a weather
//! timeline per site. We model weather as a continuous-time Markov chain
//! over {Sunny, Cloudy, Rainy} with exponentially distributed dwell times,
//! which captures the relevant property — multi-hour correlated spells —
//! without pretending to be a climate model.

use satiot_sim::{Rng, SimTime};

/// Sky condition at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weather {
    /// Clear sky.
    Sunny,
    /// Overcast, no precipitation.
    Cloudy,
    /// Active precipitation (the paper's "rainy day").
    Rainy,
}

impl Weather {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Weather::Sunny => "sunny",
            Weather::Cloudy => "cloudy",
            Weather::Rainy => "rainy",
        }
    }
}

/// Parameters of the weather chain: mean dwell time in each state (hours)
/// and the transition preferences out of each state.
#[derive(Debug, Clone, Copy)]
pub struct WeatherParams {
    /// Mean sunny spell, hours.
    pub mean_sunny_h: f64,
    /// Mean cloudy spell, hours.
    pub mean_cloudy_h: f64,
    /// Mean rainy spell, hours.
    pub mean_rainy_h: f64,
    /// From Sunny, probability the next state is Cloudy (vs. Rainy).
    pub sunny_to_cloudy: f64,
    /// From Cloudy, probability the next state is Rainy (vs. Sunny).
    pub cloudy_to_rainy: f64,
    /// From Rainy, probability the next state is Cloudy (vs. Sunny).
    pub rainy_to_cloudy: f64,
}

impl Default for WeatherParams {
    /// A humid-subtropical default (Hong Kong-like): mostly sunny with
    /// multi-hour cloudy/rainy interludes.
    fn default() -> Self {
        WeatherParams {
            mean_sunny_h: 30.0,
            mean_cloudy_h: 10.0,
            mean_rainy_h: 6.0,
            sunny_to_cloudy: 0.85,
            cloudy_to_rainy: 0.55,
            rainy_to_cloudy: 0.7,
        }
    }
}

impl WeatherParams {
    /// A drier temperate climate (fewer, shorter rain spells).
    pub fn temperate_dry() -> Self {
        WeatherParams {
            mean_sunny_h: 48.0,
            mean_rainy_h: 4.0,
            ..Default::default()
        }
    }

    /// A maritime climate (London-like: long cloudy spells, frequent rain).
    pub fn maritime() -> Self {
        WeatherParams {
            mean_sunny_h: 16.0,
            mean_cloudy_h: 20.0,
            mean_rainy_h: 7.0,
            sunny_to_cloudy: 0.9,
            cloudy_to_rainy: 0.6,
            rainy_to_cloudy: 0.65,
        }
    }
}

/// One segment of the precomputed weather timeline.
#[derive(Debug, Clone, Copy)]
struct Spell {
    start: SimTime,
    state: Weather,
}

/// A precomputed weather timeline for one site.
///
/// Built once per campaign (deterministically from the campaign seed) and
/// then queried by time; lookups are O(log n).
///
/// ```
/// use satiot_channel::weather::{Weather, WeatherParams, WeatherProcess};
/// use satiot_sim::{Rng, SimTime};
///
/// let horizon = SimTime::from_days(30.0);
/// let weather = WeatherProcess::generate(
///     &WeatherParams::default(), horizon, &mut Rng::from_seed(7));
/// let fractions: f64 = [Weather::Sunny, Weather::Cloudy, Weather::Rainy]
///     .iter().map(|s| weather.fraction_in(*s, horizon)).sum();
/// assert!((fractions - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct WeatherProcess {
    spells: Vec<Spell>,
}

impl WeatherProcess {
    /// Generate a timeline covering `[0, horizon]`.
    pub fn generate(params: &WeatherParams, horizon: SimTime, rng: &mut Rng) -> Self {
        let mut spells = Vec::new();
        let mut t = SimTime::ZERO;
        // Start from the chain's rough stationary mix.
        let mut state = match rng.next_f64() {
            x if x < 0.62 => Weather::Sunny,
            x if x < 0.85 => Weather::Cloudy,
            _ => Weather::Rainy,
        };
        while t <= horizon {
            spells.push(Spell { start: t, state });
            let mean_h = match state {
                Weather::Sunny => params.mean_sunny_h,
                Weather::Cloudy => params.mean_cloudy_h,
                Weather::Rainy => params.mean_rainy_h,
            };
            let dwell_s = rng.exponential(mean_h * 3_600.0).max(600.0);
            t += dwell_s;
            state = match state {
                Weather::Sunny => {
                    if rng.chance(params.sunny_to_cloudy) {
                        Weather::Cloudy
                    } else {
                        Weather::Rainy
                    }
                }
                Weather::Cloudy => {
                    if rng.chance(params.cloudy_to_rainy) {
                        Weather::Rainy
                    } else {
                        Weather::Sunny
                    }
                }
                Weather::Rainy => {
                    if rng.chance(params.rainy_to_cloudy) {
                        Weather::Cloudy
                    } else {
                        Weather::Sunny
                    }
                }
            };
        }
        WeatherProcess { spells }
    }

    /// A timeline that is permanently `state` (for controlled experiments
    /// like the paper's sunny-vs-rainy antenna comparison).
    pub fn constant(state: Weather) -> Self {
        WeatherProcess {
            spells: vec![Spell {
                start: SimTime::ZERO,
                state,
            }],
        }
    }

    /// Weather at time `t` (clamped to the last generated spell).
    pub fn at(&self, t: SimTime) -> Weather {
        match self.spells.binary_search_by(|s| s.start.cmp(&t)) {
            Ok(i) => self.spells[i].state,
            Err(0) => self.spells[0].state,
            Err(i) => self.spells[i - 1].state,
        }
    }

    /// Fraction of `[0, horizon]` spent in `state`.
    pub fn fraction_in(&self, state: Weather, horizon: SimTime) -> f64 {
        let mut total = 0.0;
        for (i, spell) in self.spells.iter().enumerate() {
            if spell.start > horizon {
                break;
            }
            let end = self
                .spells
                .get(i + 1)
                .map(|s| s.start)
                .unwrap_or(horizon)
                .min(horizon);
            if spell.state == state {
                total += end - spell.start;
            }
        }
        total / horizon.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_process_is_constant() {
        let w = WeatherProcess::constant(Weather::Rainy);
        assert_eq!(w.at(SimTime::ZERO), Weather::Rainy);
        assert_eq!(w.at(SimTime::from_days(100.0)), Weather::Rainy);
        assert!((w.fraction_in(Weather::Rainy, SimTime::from_days(10.0)) - 1.0).abs() < 1e-12);
        assert_eq!(w.fraction_in(Weather::Sunny, SimTime::from_days(10.0)), 0.0);
    }

    #[test]
    fn generated_timeline_is_deterministic() {
        let horizon = SimTime::from_days(60.0);
        let params = WeatherParams::default();
        let a = WeatherProcess::generate(&params, horizon, &mut Rng::from_seed(5));
        let b = WeatherProcess::generate(&params, horizon, &mut Rng::from_seed(5));
        for d in 0..600 {
            let t = SimTime::from_hours(d as f64 * 2.4);
            assert_eq!(a.at(t), b.at(t));
        }
    }

    #[test]
    fn default_climate_is_mostly_sunny_with_some_rain() {
        let horizon = SimTime::from_days(365.0);
        let w =
            WeatherProcess::generate(&WeatherParams::default(), horizon, &mut Rng::from_seed(9));
        let sunny = w.fraction_in(Weather::Sunny, horizon);
        let rainy = w.fraction_in(Weather::Rainy, horizon);
        let cloudy = w.fraction_in(Weather::Cloudy, horizon);
        assert!((sunny + rainy + cloudy - 1.0).abs() < 1e-9);
        assert!(sunny > 0.4, "sunny fraction {sunny}");
        assert!(rainy > 0.02 && rainy < 0.4, "rainy fraction {rainy}");
    }

    #[test]
    fn maritime_is_rainier_than_temperate_dry() {
        let horizon = SimTime::from_days(365.0);
        let mut rng = Rng::from_seed(21);
        let maritime = WeatherProcess::generate(&WeatherParams::maritime(), horizon, &mut rng);
        let mut rng = Rng::from_seed(21);
        let dry = WeatherProcess::generate(&WeatherParams::temperate_dry(), horizon, &mut rng);
        assert!(
            maritime.fraction_in(Weather::Rainy, horizon)
                > dry.fraction_in(Weather::Rainy, horizon)
        );
    }

    #[test]
    fn lookups_between_spells_use_preceding_state() {
        let w = WeatherProcess {
            spells: vec![
                Spell {
                    start: SimTime::ZERO,
                    state: Weather::Sunny,
                },
                Spell {
                    start: SimTime::from_hours(5.0),
                    state: Weather::Rainy,
                },
            ],
        };
        assert_eq!(w.at(SimTime::from_hours(2.0)), Weather::Sunny);
        assert_eq!(w.at(SimTime::from_hours(5.0)), Weather::Rainy);
        assert_eq!(w.at(SimTime::from_hours(9.0)), Weather::Rainy);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Weather::Sunny.label(), "sunny");
        assert_eq!(Weather::Cloudy.label(), "cloudy");
        assert_eq!(Weather::Rainy.label(), "rainy");
    }
}
