//! Receiver noise.

/// Thermal noise density at 290 K, dBm/Hz.
pub const THERMAL_NOISE_DBM_HZ: f64 = -174.0;

/// Receiver noise floor (dBm) for `bandwidth_hz` and `noise_figure_db`.
///
/// `N = −174 + 10·log₁₀(BW) + NF`
pub fn noise_floor_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    THERMAL_NOISE_DBM_HZ + 10.0 * bandwidth_hz.log10() + noise_figure_db
}

/// Typical noise figure of the SX126x-class LoRa receivers the paper's
/// ground stations use, dB.
pub const SX126X_NOISE_FIGURE_DB: f64 = 6.0;

/// Noise figure of the satellite gateway receiver (better front-end), dB.
pub const SATELLITE_RX_NOISE_FIGURE_DB: f64 = 4.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_floor_for_125khz() {
        // −174 + 10·log10(125e3) ≈ −123.03; +6 dB NF → −117.03 dBm.
        let n = noise_floor_dbm(125_000.0, SX126X_NOISE_FIGURE_DB);
        assert!((n - (-117.03)).abs() < 0.05, "floor {n}");
    }

    #[test]
    fn wider_bandwidth_raises_floor() {
        let narrow = noise_floor_dbm(125_000.0, 6.0);
        let wide = noise_floor_dbm(250_000.0, 6.0);
        assert!((wide - narrow - 3.01).abs() < 0.01);
    }

    #[test]
    fn noise_figure_adds_directly() {
        let a = noise_floor_dbm(125_000.0, 0.0);
        let b = noise_floor_dbm(125_000.0, 6.0);
        assert!((b - a - 6.0).abs() < 1e-12);
    }
}
