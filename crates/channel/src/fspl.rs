//! Free-space path loss.

/// Free-space path loss in dB for a link of `distance_km` at
/// `frequency_mhz`.
///
/// `FSPL = 20·log₁₀(d_km) + 20·log₁₀(f_MHz) + 32.4478`
///
/// The constant is `20·log₁₀(4π/c)` with `c` expressed in km·MHz.
/// Distances below one metre are clamped so degenerate terrestrial
/// geometries cannot produce negative loss.
pub fn fspl_db(distance_km: f64, frequency_mhz: f64) -> f64 {
    let d = distance_km.max(1e-3);
    20.0 * d.log10() + 20.0 * frequency_mhz.log10() + 32.447_783
}

/// Inverse helper: the distance (km) at which the path loss equals
/// `loss_db` at `frequency_mhz`. Used by tests and the coverage analyses.
pub fn distance_for_fspl_km(loss_db: f64, frequency_mhz: f64) -> f64 {
    10f64.powf((loss_db - 32.447_783 - 20.0 * frequency_mhz.log10()) / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // 1 km @ 1 GHz ≈ 92.45 dB (classic checkpoint).
        assert!((fspl_db(1.0, 1000.0) - 92.447_783).abs() < 1e-3);
        // 1000 km @ 433 MHz ≈ 145.2 dB.
        let v = fspl_db(1000.0, 433.0);
        assert!((v - 145.18).abs() < 0.05, "got {v}");
        // 900 km @ 400.45 MHz (Tianqi zenith) ≈ 143.6 dB.
        let v = fspl_db(900.0, 400.45);
        assert!((v - 143.6).abs() < 0.1, "got {v}");
    }

    #[test]
    fn doubling_distance_adds_6_db() {
        let base = fspl_db(500.0, 433.0);
        assert!((fspl_db(1000.0, 433.0) - base - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn doubling_frequency_adds_6_db() {
        let base = fspl_db(500.0, 200.0);
        assert!((fspl_db(500.0, 400.0) - base - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn inverse_round_trips() {
        for d in [0.1, 2.0, 550.0, 3500.0] {
            let loss = fspl_db(d, 400.45);
            let back = distance_for_fspl_km(loss, 400.45);
            assert!((back - d).abs() / d < 1e-9);
        }
    }

    #[test]
    fn tiny_distances_are_clamped() {
        assert_eq!(fspl_db(0.0, 433.0), fspl_db(1e-3, 433.0));
        assert!(fspl_db(0.0, 433.0) > 0.0);
    }
}
