//! Tropospheric excess loss for slant paths at UHF.
//!
//! At 400–450 MHz, gaseous absorption is tiny (≈ 0.05 dB at zenith) and
//! classic rain attenuation is negligible — yet the paper measures clear
//! weather dependence (more retransmissions on rainy days) and strong
//! extra loss at low elevation. The dominant physical mechanisms are
//! tropospheric multipath/defocusing on long, shallow paths and antenna
//! wetting/near-field detuning in rain. We model both as deterministic
//! loss terms (the *stochastic* part of low-elevation behaviour lives in
//! `fading`):
//!
//! * a zenith gas loss scaled by the cosecant of elevation (flat-Earth
//!   approximation, capped at the horizon to the equivalent of ~3°), and
//! * a per-weather offset calibrated so sunny/rainy splits match the
//!   paper's Figure 5b ordering.

use crate::weather::Weather;

/// Zenith gaseous absorption at UHF, dB.
pub const ZENITH_GAS_LOSS_DB: f64 = 0.05;

/// Elevation floor for the cosecant scaling (≈ 3°): below this the
/// flat-Earth cosecant model diverges, while the true air mass saturates
/// around 20–38×.
const MIN_ELEVATION_RAD: f64 = 0.052;

/// Deterministic tropospheric excess loss (dB) for a path at
/// `elevation_rad`.
///
/// Besides gas absorption this includes the mean defocusing/multipath
/// penalty of shallow paths, which grows steeply below ~10° — this is the
/// mechanism behind the paper's finding that beacons are lost at the
/// beginning and end of every contact window (Appendix C).
pub fn tropo_loss_db(elevation_rad: f64) -> f64 {
    let el = elevation_rad.max(MIN_ELEVATION_RAD);
    let airmass = 1.0 / el.sin();
    let gas = ZENITH_GAS_LOSS_DB * airmass;
    // Mean low-elevation multipath/defocusing penalty: negligible above
    // ~15°, a few dB near the horizon. Empirical shape: quadratic in
    // airmass with a small coefficient, calibrated against the mid-window
    // reception concentration (~70 % within the 30–70 % window span).
    let defocus = 0.012 * airmass * airmass;
    gas + defocus
}

/// Additional attenuation (dB) due to the sky condition: antenna wetting,
/// wet foliage, and rain scatter. Calibrated to reproduce the sunny/rainy
/// retransmission gap of the paper's Figure 5b.
pub fn weather_loss_db(weather: Weather) -> f64 {
    match weather {
        Weather::Sunny => 0.0,
        Weather::Cloudy => 0.6,
        Weather::Rainy => 2.4,
    }
}

/// Elevation below which local horizon clutter (buildings, terrain,
/// vegetation) starts obstructing the path, degrees. The paper's ground
/// stations sit in cities (HK, London, Shanghai…) and its IoT nodes on a
/// plantation — none has a clean 0° radio horizon.
pub const CLUTTER_ELEVATION_DEG: f64 = 22.0;

/// Clutter loss at 0° elevation, dB.
pub const CLUTTER_MAX_DB: f64 = 28.0;

/// Local-horizon clutter loss (dB): zero above
/// [`CLUTTER_ELEVATION_DEG`], ramping to [`CLUTTER_MAX_DB`] at 0°.
///
/// This is the dominant mechanism behind the paper's headline finding
/// that effective contact windows are 73.7–89.2 % shorter than the
/// TLE-predicted ones: the first and last minutes of every pass are
/// spent below the local clutter line, where beacons rarely decode
/// (Appendix C, Figure 9).
pub fn clutter_loss_db(elevation_rad: f64) -> f64 {
    let el_deg = elevation_rad.to_degrees();
    if el_deg >= CLUTTER_ELEVATION_DEG {
        return 0.0;
    }
    let frac = (CLUTTER_ELEVATION_DEG - el_deg.max(0.0)) / CLUTTER_ELEVATION_DEG;
    CLUTTER_MAX_DB * frac.powf(1.6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zenith_loss_is_small() {
        let l = tropo_loss_db(core::f64::consts::FRAC_PI_2);
        assert!(l < 0.1, "zenith loss {l}");
    }

    #[test]
    fn loss_grows_monotonically_toward_horizon() {
        let mut prev = tropo_loss_db(core::f64::consts::FRAC_PI_2);
        for deg in (1..=89).rev() {
            let l = tropo_loss_db((deg as f64).to_radians());
            assert!(l >= prev, "non-monotone at {deg}°: {l} < {prev}");
            prev = l;
        }
    }

    #[test]
    fn horizon_loss_is_several_db() {
        let l = tropo_loss_db(0.0);
        assert!(l > 3.0 && l < 10.0, "horizon loss {l}");
        // 5° is already much better than 0°.
        assert!(tropo_loss_db(5.0_f64.to_radians()) < l / 2.0);
    }

    #[test]
    fn below_horizon_clamps() {
        assert_eq!(tropo_loss_db(-0.2), tropo_loss_db(0.0));
    }

    #[test]
    fn clutter_is_zero_above_the_line_and_steep_below() {
        assert_eq!(clutter_loss_db(23.0_f64.to_radians()), 0.0);
        assert_eq!(clutter_loss_db(CLUTTER_ELEVATION_DEG.to_radians()), 0.0);
        let at8 = clutter_loss_db(8.0_f64.to_radians());
        let at3 = clutter_loss_db(3.0_f64.to_radians());
        let at0 = clutter_loss_db(0.0);
        assert!(at8 > 8.0 && at8 < 18.0, "8°: {at8}");
        assert!(at3 > at8);
        assert!((at0 - CLUTTER_MAX_DB).abs() < 1e-9);
        // Below the horizon clamps to the maximum.
        assert_eq!(clutter_loss_db(-0.1), at0);
    }

    #[test]
    fn weather_ordering() {
        assert_eq!(weather_loss_db(Weather::Sunny), 0.0);
        assert!(weather_loss_db(Weather::Cloudy) > 0.0);
        assert!(weather_loss_db(Weather::Rainy) > weather_loss_db(Weather::Cloudy));
        // Rain penalty stays small in absolute terms at UHF (no Ka-band
        // style washouts).
        assert!(weather_loss_db(Weather::Rainy) < 5.0);
    }
}
