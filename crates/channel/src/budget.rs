//! End-to-end link budget composition.
//!
//! `RSSI = Ptx + Gtx(el) + Grx(el) − FSPL(d) − tropo(el) − weather −
//!         impl_loss + shadowing + fast_fading`
//!
//! `SNR = RSSI − noise_floor`
//!
//! The deterministic part ([`LinkBudget::mean_rssi_dbm`]) is separated
//! from the stochastic part ([`LinkBudget::sample`]) so analyses can
//! reason about the geometry in isolation, and so per-pass shadowing can
//! be drawn once and threaded through many per-packet samples.

use crate::antenna::AntennaPattern;
use crate::atmosphere::{clutter_loss_db, tropo_loss_db, weather_loss_db};
use crate::fading::FadingParams;
use crate::fspl::fspl_db;
use crate::noise::{noise_floor_dbm, SATELLITE_RX_NOISE_FIGURE_DB, SX126X_NOISE_FIGURE_DB};
use crate::weather::Weather;
use satiot_obs::metrics::{Counter, Histogram};
use satiot_sim::Rng;

/// Packet-level link samples drawn (metrics).
static LINK_SAMPLES: Counter = Counter::new("channel.budget.samples");
/// Distribution of the sampled link margin — SNR relative to a 0 dB
/// reference — in dB (metrics).
static SNR_DB: Histogram = Histogram::new(
    "channel.budget.snr_db",
    &[-30.0, -20.0, -15.0, -10.0, -5.0, 0.0, 5.0, 10.0, 20.0],
);
/// Samples drawn under each weather state (metrics).
static WEATHER_SUNNY: Counter = Counter::new("channel.budget.weather_sunny");
static WEATHER_CLOUDY: Counter = Counter::new("channel.budget.weather_cloudy");
static WEATHER_RAINY: Counter = Counter::new("channel.budget.weather_rainy");

/// A fully parameterised radio link.
///
/// ```
/// use satiot_channel::antenna::AntennaPattern;
/// use satiot_channel::budget::LinkBudget;
/// use satiot_channel::weather::Weather;
///
/// let link = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
/// // A mid-elevation Tianqi pass closes the link with margin…
/// let good = link.mean_rssi_dbm(1_250.0, 40.0_f64.to_radians(), Weather::Sunny);
/// // …while the horizon geometry does not.
/// let bad = link.mean_rssi_dbm(3_500.0, 2.0_f64.to_radians(), Weather::Sunny);
/// assert!(good - bad > 15.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Carrier frequency, MHz.
    pub frequency_mhz: f64,
    /// Transmit power at the antenna port, dBm.
    pub tx_power_dbm: f64,
    /// Transmit antenna pattern.
    pub tx_antenna: AntennaPattern,
    /// Receive antenna pattern.
    pub rx_antenna: AntennaPattern,
    /// Receiver bandwidth, Hz.
    pub rx_bandwidth_hz: f64,
    /// Receiver noise figure, dB.
    pub rx_noise_figure_db: f64,
    /// Fixed implementation loss (cables, matching, polarisation), dB.
    pub implementation_loss_db: f64,
    /// Scale on the local-horizon clutter loss (1.0 = the default
    /// urban/terrain profile of [`crate::atmosphere::clutter_loss_db`];
    /// 0.0 = a clean horizon).
    pub clutter_scale: f64,
    /// Fading statistics.
    pub fading: FadingParams,
}

/// One sampled packet-level link realisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio in the receiver bandwidth, dB.
    pub snr_db: f64,
}

impl LinkBudget {
    /// Satellite → ground beacon/downlink in the DtS band: satellite
    /// dipole TX, ground whip RX, SX126x-class front-end.
    ///
    /// The 22 dBm transmit power matches the class of UHF transmitters
    /// flown on IoT nanosatellites.
    pub fn dts_downlink(frequency_mhz: f64, ground_antenna: AntennaPattern) -> Self {
        LinkBudget {
            frequency_mhz,
            tx_power_dbm: 22.0,
            tx_antenna: AntennaPattern::Dipole,
            rx_antenna: ground_antenna,
            rx_bandwidth_hz: 125_000.0,
            rx_noise_figure_db: SX126X_NOISE_FIGURE_DB,
            implementation_loss_db: 1.0,
            clutter_scale: 1.0,
            fading: FadingParams::default(),
        }
    }

    /// Ground node → satellite uplink: node whip TX, satellite dipole RX
    /// with the better space-grade front-end.
    pub fn dts_uplink(frequency_mhz: f64, node_antenna: AntennaPattern) -> Self {
        LinkBudget {
            frequency_mhz,
            tx_power_dbm: 22.0,
            tx_antenna: node_antenna,
            rx_antenna: AntennaPattern::Dipole,
            rx_bandwidth_hz: 125_000.0,
            rx_noise_figure_db: SATELLITE_RX_NOISE_FIGURE_DB,
            implementation_loss_db: 1.0,
            clutter_scale: 1.0,
            fading: FadingParams::default(),
        }
    }

    /// A short terrestrial LoRaWAN link (node → gateway, few km). The
    /// elevation-dependent machinery is reused with elevation ≈ 0 but a
    /// benign fading profile (fixed antennas, engineered siting).
    pub fn terrestrial(frequency_mhz: f64) -> Self {
        LinkBudget {
            frequency_mhz,
            tx_power_dbm: 14.0,
            tx_antenna: AntennaPattern::Isotropic,
            rx_antenna: AntennaPattern::Isotropic,
            rx_bandwidth_hz: 125_000.0,
            rx_noise_figure_db: SX126X_NOISE_FIGURE_DB,
            implementation_loss_db: 1.0,
            clutter_scale: 0.0,
            fading: FadingParams {
                shadow_sigma_sunny_db: 1.5,
                shadow_sigma_rain_extra_db: 0.5,
                k_zenith_db: 10.0,
                k_horizon_db: 10.0,
            },
        }
    }

    /// Receiver noise floor, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        noise_floor_dbm(self.rx_bandwidth_hz, self.rx_noise_figure_db)
    }

    /// Deterministic mean RSSI (dBm) for a path of `distance_km` at
    /// `elevation_rad` under `weather` — no shadowing or fast fading.
    pub fn mean_rssi_dbm(&self, distance_km: f64, elevation_rad: f64, weather: Weather) -> f64 {
        self.tx_power_dbm
            + self.tx_antenna.gain_dbi(elevation_rad)
            + self.rx_antenna.gain_dbi(elevation_rad)
            - fspl_db(distance_km, self.frequency_mhz)
            - tropo_loss_db(elevation_rad)
            - self.clutter_scale * clutter_loss_db(elevation_rad)
            - weather_loss_db(weather)
            - self.implementation_loss_db
    }

    /// Sample one packet: mean RSSI plus the provided per-pass
    /// `shadowing_db` plus a fresh fast-fading draw.
    pub fn sample(
        &self,
        distance_km: f64,
        elevation_rad: f64,
        weather: Weather,
        shadowing_db: f64,
        rng: &mut Rng,
    ) -> LinkSample {
        satiot_obs::invariants::check_elevation_rad("budget::sample", elevation_rad);
        satiot_obs::invariants::check_non_negative("budget::sample distance", distance_km);
        let fast = self.fading.draw_fast_fading_db(elevation_rad, rng);
        let rssi = self.mean_rssi_dbm(distance_km, elevation_rad, weather) + shadowing_db + fast;
        let snr_db = rssi - self.noise_floor_dbm();
        LINK_SAMPLES.inc();
        SNR_DB.record(snr_db);
        match weather {
            Weather::Sunny => WEATHER_SUNNY.inc(),
            Weather::Cloudy => WEATHER_CLOUDY.inc(),
            Weather::Rainy => WEATHER_RAINY.inc(),
        }
        LinkSample {
            rssi_dbm: rssi,
            snr_db,
        }
    }

    /// Finish one packet sample from kernel-precomputed terms: the
    /// batched counterpart of [`LinkBudget::sample`].
    ///
    /// `mean_rssi_dbm` and `k_linear` come from the
    /// [`batch`](crate::batch) kernels (bit-identical to
    /// [`mean_rssi_dbm`](Self::mean_rssi_dbm) /
    /// [`FadingParams::k_linear`](crate::fading::FadingParams::k_linear)),
    /// and `noise_floor_dbm` is hoisted once per budget. The invariant
    /// checks, the single Rician fast-fading draw, and the metric
    /// side-effects all happen here in the same order as the scalar
    /// path, so the RNG stream and the returned sample stay
    /// bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_prepared(
        &self,
        distance_km: f64,
        elevation_rad: f64,
        weather: Weather,
        mean_rssi_dbm: f64,
        k_linear: f64,
        shadowing_db: f64,
        noise_floor_dbm: f64,
        rng: &mut Rng,
    ) -> LinkSample {
        satiot_obs::invariants::check_elevation_rad("budget::sample", elevation_rad);
        satiot_obs::invariants::check_non_negative("budget::sample distance", distance_km);
        // Same draw as `FadingParams::draw_fast_fading_db`, with the
        // K-factor precomputed by the batch kernel.
        let gain = rng.rician_power_gain(k_linear);
        let fast = 10.0 * gain.max(1e-9).log10();
        let rssi = mean_rssi_dbm + shadowing_db + fast;
        let snr_db = rssi - noise_floor_dbm;
        LINK_SAMPLES.inc();
        SNR_DB.record(snr_db);
        match weather {
            Weather::Sunny => WEATHER_SUNNY.inc(),
            Weather::Cloudy => WEATHER_CLOUDY.inc(),
            Weather::Rainy => WEATHER_RAINY.inc(),
        }
        LinkSample {
            rssi_dbm: rssi,
            snr_db,
        }
    }

    /// Draw the per-pass shadowing term for this link, dB.
    pub fn draw_shadowing_db(&self, weather: Weather, rng: &mut Rng) -> f64 {
        self.fading.draw_shadowing_db(weather, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianqi_zenith_rssi_is_in_papers_band() {
        // Tianqi high shell: ~900 km overhead pass at 400.45 MHz.
        let lb = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let rssi = lb.mean_rssi_dbm(900.0, core::f64::consts::FRAC_PI_2, Weather::Sunny);
        // Paper Fig 3b/3c: satellite signals arrive at −140…−110 dBm.
        assert!((-140.0..=-110.0).contains(&rssi), "zenith RSSI {rssi} dBm");
    }

    #[test]
    fn mid_elevation_is_the_sweet_spot() {
        // The whip's zenith null and the horizon's path loss + troposphere
        // make mid-elevation geometry the best link — the mechanism behind
        // the paper's Figure 9 (receptions concentrate mid-window).
        let lb = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let zenith = lb.mean_rssi_dbm(900.0, core::f64::consts::FRAC_PI_2, Weather::Sunny);
        let mid = lb.mean_rssi_dbm(1_250.0, 40.0_f64.to_radians(), Weather::Sunny);
        let horizon = lb.mean_rssi_dbm(3_500.0, 0.03, Weather::Sunny);
        assert!(mid > zenith, "mid {mid} !> zenith {zenith}");
        // Below the clutter line the link collapses entirely — this is
        // what truncates effective contact windows.
        assert!(mid - horizon > 20.0, "mid {mid} vs horizon {horizon}");
        assert!(zenith > horizon, "zenith {zenith} !> horizon {horizon}");
        assert!(
            (-170.0..=-145.0).contains(&horizon),
            "horizon RSSI {horizon}"
        );
    }

    #[test]
    fn snr_is_rssi_minus_floor() {
        let lb = LinkBudget::dts_downlink(433.0, AntennaPattern::QuarterWaveMonopole);
        let mut rng = Rng::from_seed(1);
        let s = lb.sample(1_000.0, 0.5, Weather::Sunny, 0.0, &mut rng);
        assert!((s.snr_db - (s.rssi_dbm - lb.noise_floor_dbm())).abs() < 1e-12);
    }

    #[test]
    fn rain_lowers_rssi() {
        let lb = LinkBudget::dts_downlink(433.0, AntennaPattern::QuarterWaveMonopole);
        let sunny = lb.mean_rssi_dbm(1_000.0, 0.5, Weather::Sunny);
        let rainy = lb.mean_rssi_dbm(1_000.0, 0.5, Weather::Rainy);
        assert!(sunny - rainy > 1.0, "sunny {sunny} rainy {rainy}");
    }

    #[test]
    fn better_antenna_raises_rssi_at_low_elevation() {
        let q = LinkBudget::dts_uplink(400.45, AntennaPattern::QuarterWaveMonopole);
        let f = LinkBudget::dts_uplink(400.45, AntennaPattern::FiveEighthsWaveMonopole);
        let el = 15.0_f64.to_radians();
        assert!(
            f.mean_rssi_dbm(2_000.0, el, Weather::Sunny)
                > q.mean_rssi_dbm(2_000.0, el, Weather::Sunny)
        );
    }

    #[test]
    fn terrestrial_link_has_huge_margin() {
        // 2 km LoRaWAN link: SNR should be comfortably above any SF
        // threshold — this is why the paper's terrestrial baseline sits at
        // ~100 % reliability.
        let lb = LinkBudget::terrestrial(470.0);
        let rssi = lb.mean_rssi_dbm(2.0, 0.0, Weather::Sunny);
        let snr = rssi - lb.noise_floor_dbm();
        assert!(snr > 10.0, "terrestrial SNR {snr}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let lb = LinkBudget::dts_downlink(433.0, AntennaPattern::QuarterWaveMonopole);
        let mut a = Rng::from_seed(9);
        let mut b = Rng::from_seed(9);
        for _ in 0..32 {
            let sa = lb.sample(1_500.0, 0.3, Weather::Cloudy, -1.0, &mut a);
            let sb = lb.sample(1_500.0, 0.3, Weather::Cloudy, -1.0, &mut b);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn shadowing_shifts_rssi_one_for_one() {
        let lb = LinkBudget::dts_downlink(433.0, AntennaPattern::QuarterWaveMonopole);
        let mut a = Rng::from_seed(10);
        let mut b = Rng::from_seed(10);
        let s0 = lb.sample(1_000.0, 0.4, Weather::Sunny, 0.0, &mut a);
        let s5 = lb.sample(1_000.0, 0.4, Weather::Sunny, -5.0, &mut b);
        assert!((s0.rssi_dbm - s5.rssi_dbm - 5.0).abs() < 1e-9);
    }
}
