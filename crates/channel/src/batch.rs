//! Structure-of-arrays batched channel kernels.
//!
//! The campaign simulate phase evaluates the same deterministic channel
//! chain — antenna gains, FSPL, tropospheric loss, clutter, weather,
//! noise — for every beacon of every pass. Doing that one beacon at a
//! time scatters the working set across the pass loop; doing it over
//! `&[f64]` slices in fixed-size chunks keeps the inputs hot in cache
//! and lets the compiler vectorise the polynomial parts of the chain.
//!
//! ## Bit-identity contract
//!
//! Every kernel performs **exactly the same floating-point operations
//! in exactly the same order** as the scalar path it batches:
//!
//! * [`ChannelBatch::run`] evaluates, per element, the same expression
//!   as [`LinkBudget::mean_rssi_dbm`] (terms hoisted out of the loop —
//!   weather loss, implementation loss — are loop-invariant *values*,
//!   so the per-element arithmetic is unchanged);
//! * the fading K-factor kernel calls [`FadingParams::k_linear`]
//!   per element;
//! * the stochastic tail (fast-fading draw, SNR, metrics) is finished
//!   per element, in original emission order, by
//!   [`LinkBudget::sample_prepared`], which consumes the RNG in the
//!   same sequence as [`LinkBudget::sample`].
//!
//! The `prop_batch` property test asserts the batched and scalar paths
//! produce bit-identical outputs across random geometry and weather.
//!
//! Batches are *gathered* (filled from pass geometry), *run* (kernels
//! over the SoA columns), and *scattered* (outcomes written back in
//! emission order) — the driver lives in `satiot_core`; this module
//! owns the reusable arena and the kernels.

use crate::antenna::AntennaPattern;
use crate::atmosphere::{clutter_loss_db, tropo_loss_db, weather_loss_db};
use crate::budget::LinkBudget;
use crate::fspl::fspl_db;
use crate::weather::Weather;
use satiot_obs::metrics::Counter;

/// Arena fills (one per gathered pass) (metrics).
static BATCH_FILLS: Counter = Counter::new("channel.batch.fills");
/// Kernel flushes — chunked sweeps over a filled arena (metrics).
static BATCH_FLUSHES: Counter = Counter::new("channel.batch.flushes");
/// Total elements pushed through the kernels (metrics).
static BATCH_ELEMENTS: Counter = Counter::new("channel.batch.elements");

/// Elements per kernel chunk. 256 f64 lanes per column keep a full
/// gather (4 input + 2 output columns) around 12 KiB — inside L1 on
/// anything this workspace targets — while amortising loop overhead.
pub const CHUNK: usize = 256;

/// A reusable SoA arena holding one pass's gathered link geometry and
/// the kernel outputs derived from it.
///
/// Columns are parallel: element `i` of every column describes the same
/// beacon emission. The arena never shrinks its allocations — clear and
/// refill it across passes to amortise allocation.
///
/// ```
/// use satiot_channel::antenna::AntennaPattern;
/// use satiot_channel::batch::ChannelBatch;
/// use satiot_channel::budget::LinkBudget;
/// use satiot_channel::weather::Weather;
///
/// let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
/// let mut batch = ChannelBatch::default();
/// batch.clear();
/// batch.push(1_250.0, 40.0_f64.to_radians());
/// batch.run(&budget, Weather::Sunny);
/// let scalar = budget.mean_rssi_dbm(1_250.0, 40.0_f64.to_radians(), Weather::Sunny);
/// assert_eq!(batch.mean_rssi_dbm[0].to_bits(), scalar.to_bits());
/// ```
#[derive(Debug, Default)]
pub struct ChannelBatch {
    /// Slant range per element, km (input).
    pub range_km: Vec<f64>,
    /// Elevation per element, radians (input).
    pub elevation_rad: Vec<f64>,
    /// Deterministic mean RSSI per element, dBm (output of [`run`](Self::run)).
    pub mean_rssi_dbm: Vec<f64>,
    /// Rician K-factor per element, linear (output of [`run`](Self::run)).
    pub k_linear: Vec<f64>,
}

impl ChannelBatch {
    /// Empty the arena, keeping its allocations.
    pub fn clear(&mut self) {
        self.range_km.clear();
        self.elevation_rad.clear();
        self.mean_rssi_dbm.clear();
        self.k_linear.clear();
    }

    /// Number of gathered elements.
    pub fn len(&self) -> usize {
        self.range_km.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.range_km.is_empty()
    }

    /// Gather one element of link geometry.
    #[inline]
    pub fn push(&mut self, range_km: f64, elevation_rad: f64) {
        self.range_km.push(range_km);
        self.elevation_rad.push(elevation_rad);
    }

    /// Run the deterministic kernels over the gathered columns in
    /// [`CHUNK`]-sized chunks, filling [`mean_rssi_dbm`](Self::mean_rssi_dbm)
    /// and [`k_linear`](Self::k_linear).
    pub fn run(&mut self, budget: &LinkBudget, weather: Weather) {
        let n = self.len();
        self.mean_rssi_dbm.clear();
        self.mean_rssi_dbm.resize(n, 0.0);
        self.k_linear.clear();
        self.k_linear.resize(n, 0.0);
        BATCH_FILLS.inc();
        BATCH_ELEMENTS.add(n as u64);
        for start in (0..n).step_by(CHUNK) {
            let end = (start + CHUNK).min(n);
            mean_rssi_into(
                budget,
                weather,
                &self.range_km[start..end],
                &self.elevation_rad[start..end],
                &mut self.mean_rssi_dbm[start..end],
            );
            k_linear_into(
                &budget.fading,
                &self.elevation_rad[start..end],
                &mut self.k_linear[start..end],
            );
            BATCH_FLUSHES.inc();
        }
    }
}

/// Deterministic mean-RSSI kernel: per element, the exact expression of
/// [`LinkBudget::mean_rssi_dbm`]. Loop-invariant terms (weather loss,
/// the antenna patterns, implementation loss) are hoisted as *values* —
/// the per-element arithmetic and its order are unchanged, so outputs
/// are bit-identical to the scalar call.
pub fn mean_rssi_into(
    budget: &LinkBudget,
    weather: Weather,
    range_km: &[f64],
    elevation_rad: &[f64],
    out: &mut [f64],
) {
    assert_eq!(range_km.len(), elevation_rad.len());
    assert_eq!(range_km.len(), out.len());
    let wx_loss = weather_loss_db(weather);
    let tx = budget.tx_antenna;
    let rx = budget.rx_antenna;
    for ((o, d), el) in out.iter_mut().zip(range_km).zip(elevation_rad) {
        *o = budget.tx_power_dbm + tx.gain_dbi(*el) + rx.gain_dbi(*el)
            - fspl_db(*d, budget.frequency_mhz)
            - tropo_loss_db(*el)
            - budget.clutter_scale * clutter_loss_db(*el)
            - wx_loss
            - budget.implementation_loss_db;
    }
}

/// Elevation-dependent Rician K-factor kernel; per element identical to
/// [`FadingParams::k_linear`](crate::fading::FadingParams::k_linear).
pub fn k_linear_into(fading: &crate::fading::FadingParams, elevation_rad: &[f64], out: &mut [f64]) {
    assert_eq!(elevation_rad.len(), out.len());
    for (o, el) in out.iter_mut().zip(elevation_rad) {
        *o = fading.k_linear(*el);
    }
}

/// Standalone FSPL kernel over slices (analysis helpers, tests).
pub fn fspl_into(frequency_mhz: f64, range_km: &[f64], out: &mut [f64]) {
    assert_eq!(range_km.len(), out.len());
    for (o, d) in out.iter_mut().zip(range_km) {
        *o = fspl_db(*d, frequency_mhz);
    }
}

/// Standalone tropospheric-loss kernel over slices.
pub fn tropo_loss_into(elevation_rad: &[f64], out: &mut [f64]) {
    assert_eq!(elevation_rad.len(), out.len());
    for (o, el) in out.iter_mut().zip(elevation_rad) {
        *o = tropo_loss_db(*el);
    }
}

/// Standalone clutter-loss kernel over slices.
pub fn clutter_loss_into(elevation_rad: &[f64], out: &mut [f64]) {
    assert_eq!(elevation_rad.len(), out.len());
    for (o, el) in out.iter_mut().zip(elevation_rad) {
        *o = clutter_loss_db(*el);
    }
}

/// Standalone antenna-gain kernel over slices.
pub fn gain_into(pattern: AntennaPattern, elevation_rad: &[f64], out: &mut [f64]) {
    assert_eq!(elevation_rad.len(), out.len());
    for (o, el) in out.iter_mut().zip(elevation_rad) {
        *o = pattern.gain_dbi(*el);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fading::FadingParams;
    use satiot_sim::Rng;

    fn budgets() -> Vec<LinkBudget> {
        vec![
            LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole),
            LinkBudget::dts_uplink(433.0, AntennaPattern::FiveEighthsWaveMonopole),
            LinkBudget::terrestrial(470.0),
        ]
    }

    #[test]
    fn batched_mean_rssi_is_bit_identical_to_scalar() {
        // Cover several chunks and ragged tails.
        let n = CHUNK * 2 + 37;
        for (b, budget) in budgets().iter().enumerate() {
            let mut rng = Rng::from_seed(40 + b as u64);
            let range: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 4000.0)).collect();
            let el: Vec<f64> = (0..n).map(|_| rng.uniform(-0.2, 1.8)).collect();
            for wx in [Weather::Sunny, Weather::Cloudy, Weather::Rainy] {
                let mut batch = ChannelBatch::default();
                batch.clear();
                for i in 0..n {
                    batch.push(range[i], el[i]);
                }
                batch.run(budget, wx);
                for i in 0..n {
                    let scalar = budget.mean_rssi_dbm(range[i], el[i], wx);
                    assert_eq!(
                        batch.mean_rssi_dbm[i].to_bits(),
                        scalar.to_bits(),
                        "element {i} diverged"
                    );
                    let k = budget.fading.k_linear(el[i]);
                    assert_eq!(batch.k_linear[i].to_bits(), k.to_bits());
                }
            }
        }
    }

    #[test]
    fn sample_prepared_matches_sample_and_rng_stream() {
        let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let noise = budget.noise_floor_dbm();
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        let mut geom = Rng::from_seed(8);
        for _ in 0..64 {
            let d = geom.uniform(400.0, 3500.0);
            let el = geom.uniform(0.0, 1.5);
            let shadow = geom.uniform(-4.0, 4.0);
            let scalar = budget.sample(d, el, Weather::Cloudy, shadow, &mut a);
            let mean = budget.mean_rssi_dbm(d, el, Weather::Cloudy);
            let k = budget.fading.k_linear(el);
            let batched =
                budget.sample_prepared(d, el, Weather::Cloudy, mean, k, shadow, noise, &mut b);
            assert_eq!(scalar.rssi_dbm.to_bits(), batched.rssi_dbm.to_bits());
            assert_eq!(scalar.snr_db.to_bits(), batched.snr_db.to_bits());
        }
        // The two RNGs consumed identical draw sequences.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn standalone_kernels_match_their_scalars() {
        let mut rng = Rng::from_seed(11);
        let el: Vec<f64> = (0..100).map(|_| rng.uniform(-0.3, 1.9)).collect();
        let d: Vec<f64> = (0..100).map(|_| rng.uniform(0.0, 5000.0)).collect();
        let mut out = vec![0.0; 100];
        fspl_into(433.0, &d, &mut out);
        for i in 0..100 {
            assert_eq!(out[i].to_bits(), fspl_db(d[i], 433.0).to_bits());
        }
        tropo_loss_into(&el, &mut out);
        for i in 0..100 {
            assert_eq!(out[i].to_bits(), tropo_loss_db(el[i]).to_bits());
        }
        clutter_loss_into(&el, &mut out);
        for i in 0..100 {
            assert_eq!(out[i].to_bits(), clutter_loss_db(el[i]).to_bits());
        }
        gain_into(AntennaPattern::Dipole, &el, &mut out);
        for i in 0..100 {
            assert_eq!(
                out[i].to_bits(),
                AntennaPattern::Dipole.gain_dbi(el[i]).to_bits()
            );
        }
        let fading = FadingParams::default();
        k_linear_into(&fading, &el, &mut out);
        for i in 0..100 {
            assert_eq!(out[i].to_bits(), fading.k_linear(el[i]).to_bits());
        }
    }

    #[test]
    fn arena_reuse_keeps_columns_consistent() {
        let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
        let mut batch = ChannelBatch::default();
        for round in 0..3u64 {
            batch.clear();
            let n = 10 + round as usize * 300;
            for i in 0..n {
                batch.push(500.0 + i as f64, 0.01 * i as f64);
            }
            batch.run(&budget, Weather::Sunny);
            assert_eq!(batch.len(), n);
            assert_eq!(batch.mean_rssi_dbm.len(), n);
            assert_eq!(batch.k_linear.len(), n);
        }
    }
}
