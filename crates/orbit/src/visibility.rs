//! Vectorised visibility kernels: margin sweeps over ephemeris-grid
//! columns for every observer of one satellite.
//!
//! The legacy coarse scan in [`pass`](crate::pass) walks time
//! per-(site, sat) pair, calling the full look-angle projection
//! (`asin`, `atan2`, range rate) at every probe — the per-timestep
//! scalar anti-pattern. This module replaces the *coarse-scan phase*
//! with a data-parallel sweep:
//!
//! 1. hoist each observer's ECEF site vector, zenith basis vector, and
//!    `sin(mask)` into a structure-of-arrays arena
//!    ([`VisibilitySweep`]) — they are loop-invariant per observer;
//! 2. sweep the satellite's [`EphemerisGrid`] columns **once**,
//!    evaluating the *horizon margin* (not the elevation) for all
//!    observers in fixed-width chunks of [`CHUNK`] columns;
//! 3. emit only sparse [`SweepEvent`]s — sign-change windows and
//!    near-miss candidates — for the existing bisection /
//!    golden-section refinement in [`pass`](crate::pass).
//!
//! ## The margin trick
//!
//! With `ρ = sat − site`, `z = ρ·ζ` (zenith component) and
//! `r = ‖ρ‖`, elevation is `asin(z / r)`. Because `asin` is strictly
//! increasing and `r > 0`,
//!
//! ```text
//! elevation > mask  ⟺  z / r > sin(mask)  ⟺  m := z − r·sin(mask) > 0
//! ```
//!
//! for any mask inside `(−π/2, π/2)` — so the kernel needs one `sqrt`
//! and no transcendentals per (observer, column). The margin's exact
//! time derivative falls out of the grid's stored ECEF velocities:
//! `m′ = v·ζ − sin(mask)·(ρ·v)/r`, which powers near-miss detection
//! below. Both `m` and `m′` are in km and km/s of *zenith-projected
//! slant distance*; near the horizon a margin of 1 km is ≈ 0.02° of
//! elevation at a 2 500 km slant range.
//!
//! ## Sign-change-window contract
//!
//! For each observer the sweep reports `above_at_start` plus an
//! ordered event list. Every horizon crossing inside `[start, end]`
//! is bracketed by exactly one [`SweepEventKind::Rising`] or
//! [`SweepEventKind::Falling`] window no wider than one grid step
//! (≤ [`MAX_STEP_S`](crate::ephemeris::MAX_STEP_S)); a lattice
//! interval whose endpoints are both below the mask but whose margin
//! may peek above it in the interior is reported as a
//! [`SweepEventKind::Candidate`] window. The bracketing argument
//! matches the legacy scan's: LEO passes over one site are ≥ 45 min
//! apart, so one ≤ 180 s lattice interval contains at most one
//! crossing (two crossings inside one interval — a whole pass — is
//! exactly the candidate case).
//!
//! Candidate detection is a three-stage filter on the cubic Hermite
//! model of the margin over the interval (exact endpoint values *and*
//! derivatives, so the model error is the same `h⁴/384·max‖m⁗‖`
//! bound as the grid itself — ≈ 0.03 km at the widest step):
//!
//! 1. a Bézier convex-hull bound (`max` of the four control points)
//!    rejects the overwhelmingly common deep-below intervals in ~8
//!    flops;
//! 2. the exact interior maximum of the cubic (quadratic root solve)
//!    rejects most of the rest;
//! 3. only intervals whose modelled maximum clears
//!    `−`[`CANDIDATE_GUARD_KM`] — twice the combined interpolation +
//!    grid position error — are handed to the golden-section
//!    elevation probe in `pass`. A real pass hiding inside the
//!    interval has a true margin maximum > 0, so its modelled maximum
//!    cannot fall below `−`[`CANDIDATE_GUARD_KM`] and it is never
//!    missed.
//!
//! ## Bit-identity between the scalar and chunked kernels
//!
//! [`VisibilityMode::Scalar`] evaluates the margin element-at-a-time;
//! [`VisibilityMode::On`] evaluates it in [`CHUNK`]-wide batches.
//! Both paths call the *same* inlined [`margin_terms`] expression per
//! element, and the chunked kernel is a straight elementwise loop
//! over fixed-width arrays: auto-vectorisation (including the
//! runtime-dispatched AVX2 recompile on `x86_64`) maps each IEEE-754
//! operation onto per-lane SIMD equivalents with identical rounding,
//! and no reassociation or FMA contraction is enabled. Identical
//! margins ⟹ identical sign changes ⟹ identical event lists ⟹
//! bit-identical refined passes. `SATIOT_VISIBILITY=0`
//! ([`VisibilityMode::Off`]) restores the legacy adaptive scan
//! outright, which refines from *different* (coarser) brackets and is
//! therefore equivalent only to refinement tolerance, not to the bit.

use crate::ephemeris::EphemerisGrid;
use crate::time::JulianDate;
use crate::topo::Observer;
use satiot_obs::metrics::Counter;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// Column sweeps executed (one per satellite grid per scan) (metrics).
static SWEEPS: Counter = Counter::new("orbit.visibility.sweeps");
/// (observer × column) margin evaluations across all sweeps (metrics).
static SWEEP_MARGINS: Counter = Counter::new("orbit.visibility.margins");
/// Sign-change windows emitted for refinement (metrics).
static SWEEP_EVENTS: Counter = Counter::new("orbit.visibility.events");
/// Near-miss candidate windows emitted (metrics).
static SWEEP_CANDIDATES: Counter = Counter::new("orbit.visibility.candidates");

/// Fixed kernel width, in grid columns. 64 f64 lanes = 8 AVX-512 /
/// 16 AVX2 vectors per array: wide enough to hide the `sqrt`/`div`
/// latency chain, small enough that one chunk's six input arrays plus
/// two outputs (4 KiB) live comfortably in L1 beside the observer
/// arena.
pub const CHUNK: usize = 64;

/// Candidate guard band, km of margin. The cubic Hermite margin model
/// is exact at interval endpoints and within ~0.03 km in the interior
/// at the widest grid step (same quartic error bound as the grid),
/// and the grid position contract adds ≤ 0.05 km; a modelled maximum
/// below −0.2 km therefore proves the true margin never reaches 0 and
/// the interval holds no pass.
pub const CANDIDATE_GUARD_KM: f64 = 0.2;

/// How pass prediction scans for horizon crossings (the
/// `SATIOT_VISIBILITY` knob; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisibilityMode {
    /// The legacy adaptive elevation scan (the A/B baseline;
    /// `SATIOT_VISIBILITY=0`).
    Off,
    /// Margin sweep, element-at-a-time (`SATIOT_VISIBILITY=scalar`) —
    /// the bit-identical scalar baseline of the chunked kernels.
    Scalar,
    /// Margin sweep in [`CHUNK`]-wide vector kernels (the default).
    On,
}

// Cached mode: 255 = not yet pinned.
static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

/// The process-wide visibility mode. Defaults to [`VisibilityMode::On`]
/// until pinned with [`set_mode`]; the `SATIOT_VISIBILITY` environment
/// knob reaches this latch through
/// `satiot_core::RunOptions::from_env().apply()` — this module never
/// reads the environment itself.
pub fn mode() -> VisibilityMode {
    match MODE.load(Relaxed) {
        0 => VisibilityMode::Off,
        1 => VisibilityMode::Scalar,
        _ => VisibilityMode::On,
    }
}

/// Pin the mode programmatically (tests and A/B harnesses that cannot
/// restart the process). Call before any campaign runs: the mode must
/// not change mid-run.
pub fn set_mode(m: VisibilityMode) {
    let code = match m {
        VisibilityMode::Off => 0,
        VisibilityMode::Scalar => 1,
        VisibilityMode::On => 2,
    };
    MODE.store(code, Relaxed);
}

/// What a sweep event window asks refinement to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEventKind {
    /// The margin rises through zero inside the window: bisect for AOS.
    Rising,
    /// The margin falls through zero inside the window: bisect for LOS.
    Falling,
    /// Both endpoints are below the mask but the margin model may peek
    /// above it in the interior (a pass shorter than one lattice
    /// interval): probe the elevation peak before deciding.
    Candidate,
}

/// One sign-change (or near-miss) window emitted by a sweep,
/// `t_lo < t_hi`, at most one grid step wide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepEvent {
    /// What refinement should do with the window.
    pub kind: SweepEventKind,
    /// Window start (sample at or below the mask for `Rising`).
    pub t_lo: JulianDate,
    /// Window end.
    pub t_hi: JulianDate,
}

/// Per-observer result of one column sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Whether the margin is above zero at the exact scan start (a
    /// pass already in progress).
    pub above_at_start: bool,
    /// Sign-change and candidate windows, in chronological order.
    pub events: Vec<SweepEvent>,
    /// Points evaluated per observer (boundaries + lattice columns).
    pub points: usize,
}

/// Loop-invariant per-observer parameters, hoisted out of the column
/// sweep: ECEF site vector, zenith basis vector, `sin(mask)`.
#[derive(Debug, Clone, Copy)]
struct ObsParams {
    sx: f64,
    sy: f64,
    sz: f64,
    zx: f64,
    zy: f64,
    zz: f64,
    sin_mask: f64,
}

/// The horizon margin and its exact time derivative for one
/// (observer, satellite-state) pair — the *single* FP expression both
/// the scalar path and the chunked kernels evaluate, which is what
/// makes [`VisibilityMode::Scalar`] and [`VisibilityMode::On`]
/// bit-identical (see the module docs).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // Scalar SoA lanes by design: arrays of structs would defeat vectorisation.
fn margin_terms(px: f64, py: f64, pz: f64, vx: f64, vy: f64, vz: f64, p: ObsParams) -> (f64, f64) {
    let rx = px - p.sx;
    let ry = py - p.sy;
    let rz = pz - p.sz;
    let z = rx * p.zx + ry * p.zy + rz * p.zz;
    let r = (rx * rx + ry * ry + rz * rz).sqrt();
    let m = z - r * p.sin_mask;
    let zdot = vx * p.zx + vy * p.zy + vz * p.zz;
    let rv = rx * vx + ry * vy + rz * vz;
    let dm = zdot - p.sin_mask * (rv / r);
    (m, dm)
}

/// One chunk of satellite grid columns, gathered into fixed-width SoA
/// arrays so the margin kernel is a straight elementwise loop.
struct ColumnChunk {
    px: [f64; CHUNK],
    py: [f64; CHUNK],
    pz: [f64; CHUNK],
    vx: [f64; CHUNK],
    vy: [f64; CHUNK],
    vz: [f64; CHUNK],
}

impl ColumnChunk {
    fn zeroed() -> ColumnChunk {
        ColumnChunk {
            px: [0.0; CHUNK],
            py: [0.0; CHUNK],
            pz: [0.0; CHUNK],
            vx: [0.0; CHUNK],
            vy: [0.0; CHUNK],
            vz: [0.0; CHUNK],
        }
    }
}

/// The portable chunk kernel: [`margin_terms`] over a fixed-width
/// array. A fixed trip count over `[f64; CHUNK]` arrays compiles to
/// branch-free straight-line SIMD under the default target features.
#[inline(always)]
fn margin_chunk_body(
    cols: &ColumnChunk,
    p: ObsParams,
    m: &mut [f64; CHUNK],
    dm: &mut [f64; CHUNK],
) {
    for i in 0..CHUNK {
        let (mi, dmi) = margin_terms(
            cols.px[i], cols.py[i], cols.pz[i], cols.vx[i], cols.vy[i], cols.vz[i], p,
        );
        m[i] = mi;
        dm[i] = dmi;
    }
}

/// The same kernel recompiled with AVX2 enabled (4-wide `f64`
/// `sqrt`/`div` instead of the SSE2 baseline's 2-wide). Per-lane
/// IEEE-754 semantics are identical to the portable build — wider
/// registers change throughput, never rounding — and FMA contraction
/// stays off, so dispatching here preserves bit-identity.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn margin_chunk_avx2(
    cols: &ColumnChunk,
    p: ObsParams,
    m: &mut [f64; CHUNK],
    dm: &mut [f64; CHUNK],
) {
    margin_chunk_body(cols, p, m, dm);
}

/// Evaluate one observer's margins over a gathered column chunk,
/// through the widest kernel the CPU supports.
fn margin_chunk(cols: &ColumnChunk, p: ObsParams, m: &mut [f64; CHUNK], dm: &mut [f64; CHUNK]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 detection above.
            unsafe { margin_chunk_avx2(cols, p, m, dm) };
            return;
        }
    }
    margin_chunk_body(cols, p, m, dm);
}

/// Exact maximum of the cubic Hermite `H` on `[0, 1]` given endpoint
/// values `p0`, `p1` and *step-scaled* endpoint derivatives `v0`, `v1`
/// (the same parameterisation as the grid's interpolant). Interior
/// extrema come from the quadratic `H′(s) = 0`, solved with the
/// sign-stable pairing to avoid cancellation.
fn cubic_max(p0: f64, v0: f64, p1: f64, v1: f64) -> f64 {
    let mut best = p0.max(p1);
    let mut consider = |s: f64| {
        if s > 0.0 && s < 1.0 {
            let s2 = s * s;
            let s3 = s2 * s;
            let h = p0 * (2.0 * s3 - 3.0 * s2 + 1.0)
                + v0 * (s3 - 2.0 * s2 + s)
                + p1 * (-2.0 * s3 + 3.0 * s2)
                + v1 * (s3 - s2);
            if h > best {
                best = h;
            }
        }
    };
    // H′(s) = a·s² + b·s + c.
    let a = 6.0 * p0 + 3.0 * v0 - 6.0 * p1 + 3.0 * v1;
    let b = -6.0 * p0 - 4.0 * v0 + 6.0 * p1 - 2.0 * v1;
    let c = v0;
    if a == 0.0 {
        if b != 0.0 {
            consider(-c / b);
        }
    } else {
        let disc = b * b - 4.0 * a * c;
        if disc >= 0.0 {
            let q = -0.5 * (b + b.signum() * disc.sqrt());
            consider(q / a);
            if q != 0.0 {
                consider(c / q);
            }
        }
    }
    best
}

/// Whether a lattice interval with both endpoints below the mask could
/// still hide a pass (see the module docs for the three-stage filter).
fn near_miss_candidate(m_a: f64, dm_a: f64, m_b: f64, dm_b: f64, dt_s: f64) -> bool {
    if !(m_a.is_finite() && dm_a.is_finite() && m_b.is_finite() && dm_b.is_finite() && dt_s > 0.0) {
        return false; // Invalid samples never promote to probes.
    }
    let v0 = dt_s * dm_a;
    let v1 = dt_s * dm_b;
    // Stage 1: Bézier hull bound — the cubic never exceeds the largest
    // of its four control points.
    let hull = m_a.max(m_a + v0 / 3.0).max(m_b - v1 / 3.0).max(m_b);
    if hull <= -CANDIDATE_GUARD_KM {
        return false;
    }
    // Stage 2: the exact interior maximum of the Hermite model.
    cubic_max(m_a, v0, m_b, v1) > -CANDIDATE_GUARD_KM
}

/// The per-observer sign-change state machine. Consumes `(t, m, m′)`
/// points in chronological order and emits sparse events.
struct Detector {
    started: bool,
    above_at_start: bool,
    t_prev: JulianDate,
    m_prev: f64,
    dm_prev: f64,
    points: usize,
    events: Vec<SweepEvent>,
}

impl Detector {
    fn new() -> Detector {
        Detector {
            started: false,
            above_at_start: false,
            t_prev: JulianDate(0.0),
            m_prev: f64::NAN,
            dm_prev: f64::NAN,
            points: 0,
            events: Vec::new(),
        }
    }

    #[inline]
    fn feed(&mut self, t: JulianDate, m: f64, dm: f64) {
        self.points += 1;
        let above = m > 0.0; // NaN margins read as "below", like the legacy scan.
        if !self.started {
            self.started = true;
            self.above_at_start = above;
        } else {
            let was_above = self.m_prev > 0.0;
            if above != was_above {
                let kind = if above {
                    SweepEventKind::Rising
                } else {
                    SweepEventKind::Falling
                };
                self.events.push(SweepEvent {
                    kind,
                    t_lo: self.t_prev,
                    t_hi: t,
                });
            } else if !above
                && near_miss_candidate(
                    self.m_prev,
                    self.dm_prev,
                    m,
                    dm,
                    t.seconds_since(self.t_prev),
                )
            {
                self.events.push(SweepEvent {
                    kind: SweepEventKind::Candidate,
                    t_lo: self.t_prev,
                    t_hi: t,
                });
            }
        }
        self.t_prev = t;
        self.m_prev = m;
        self.dm_prev = dm;
    }

    /// Advance the detector across `n` samples proven eventless by the
    /// chunk screen (see [`VisibilitySweep::sweep_chunked`]): every
    /// skipped margin — and the carried previous one — sits so far
    /// below the mask that neither a sign change nor a near-miss hull
    /// could fire, so feeding them one by one would only have updated
    /// the carry state this method writes directly. Outcomes therefore
    /// stay bit-identical to the scalar sweep.
    #[inline]
    fn skip_eventless(&mut self, n: usize, t_last: JulianDate, m_last: f64, dm_last: f64) {
        debug_assert!(
            self.started,
            "screen may only skip after the start boundary"
        );
        self.points += n;
        self.t_prev = t_last;
        self.m_prev = m_last;
        self.dm_prev = dm_last;
    }

    fn into_outcome(self) -> SweepOutcome {
        SweepOutcome {
            above_at_start: self.above_at_start,
            events: self.events,
            points: self.points,
        }
    }
}

/// A structure-of-arrays arena of observers sharing one satellite
/// sweep: push every (site, mask) pair once, then [`run`](Self::run)
/// per satellite grid.
///
/// ```
/// use satiot_orbit::elements::Elements;
/// use satiot_orbit::ephemeris::EphemerisGrid;
/// use satiot_orbit::frames::Geodetic;
/// use satiot_orbit::time::JulianDate;
/// use satiot_orbit::topo::Observer;
/// use satiot_orbit::visibility::{VisibilityMode, VisibilitySweep};
///
/// let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
/// let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
/// let grid = EphemerisGrid::build(&sgp4, epoch, epoch + 1.0);
/// let mut sweep = VisibilitySweep::new();
/// sweep.push(&Observer::new(Geodetic::from_degrees(22.32, 114.17, 0.05)), 0.0);
/// sweep.push(&Observer::new(Geodetic::from_degrees(39.9, 116.4, 0.05)), 0.0);
/// let scalar = sweep.run(&grid, epoch, epoch + 1.0, VisibilityMode::Scalar).unwrap();
/// let vector = sweep.run(&grid, epoch, epoch + 1.0, VisibilityMode::On).unwrap();
/// assert_eq!(scalar, vector); // bit-identical events
/// assert!(scalar.iter().any(|o| !o.events.is_empty()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VisibilitySweep {
    sx: Vec<f64>,
    sy: Vec<f64>,
    sz: Vec<f64>,
    zx: Vec<f64>,
    zy: Vec<f64>,
    zz: Vec<f64>,
    sin_mask: Vec<f64>,
}

impl VisibilitySweep {
    /// An empty arena.
    pub fn new() -> VisibilitySweep {
        VisibilitySweep::default()
    }

    /// Hoist one observer's loop invariants into the arena. `mask_rad`
    /// must lie inside `(−π/2, π/2)` for the margin ⟺ elevation
    /// equivalence to hold (callers outside that range use the legacy
    /// scan).
    pub fn push(&mut self, observer: &Observer, mask_rad: f64) {
        let site = observer.position_ecef();
        let zenith = observer.zenith();
        self.sx.push(site.x);
        self.sy.push(site.y);
        self.sz.push(site.z);
        self.zx.push(zenith.x);
        self.zy.push(zenith.y);
        self.zz.push(zenith.z);
        self.sin_mask.push(mask_rad.sin());
    }

    /// Observers in the arena.
    pub fn len(&self) -> usize {
        self.sin_mask.len()
    }

    /// Whether the arena holds no observers.
    pub fn is_empty(&self) -> bool {
        self.sin_mask.is_empty()
    }

    fn params(&self, o: usize) -> ObsParams {
        ObsParams {
            sx: self.sx[o],
            sy: self.sy[o],
            sz: self.sz[o],
            zx: self.zx[o],
            zy: self.zy[o],
            zz: self.zz[o],
            sin_mask: self.sin_mask[o],
        }
    }

    /// Sweep `grid`'s columns across `[start, end]` for every observer
    /// in the arena.
    ///
    /// Answers `None` — callers fall back to the legacy scan — when
    /// the mode is [`VisibilityMode::Off`], the arena is empty, the
    /// window is degenerate, or the grid does not cover the whole
    /// window (including the `SATIOT_EPHEMERIS=0` no-grid world).
    pub fn run(
        &self,
        grid: &EphemerisGrid,
        start: JulianDate,
        end: JulianDate,
        mode: VisibilityMode,
    ) -> Option<Vec<SweepOutcome>> {
        if mode == VisibilityMode::Off || self.is_empty() {
            return None;
        }
        let n = grid.len();
        if n < 2 {
            return None;
        }
        let t0 = grid.sample_time(0);
        let x_start = start.seconds_since(t0) / grid.step_s();
        let x_end = end.seconds_since(t0) / grid.step_s();
        if !(x_start.is_finite() && x_end.is_finite() && x_start >= 0.0) {
            return None;
        }
        if !(x_end <= (n - 1) as f64 && x_end > x_start) {
            return None;
        }
        // Lattice columns strictly inside (start, end); the exact
        // boundaries are fed as interpolated pseudo-columns so a pass
        // in progress at `start` (or truncated at `end`) is seen the
        // same way the legacy scan sees it.
        let k_first = x_start.floor() as usize + 1;
        let k_last = (x_end.ceil() as usize).saturating_sub(1).min(n - 1);

        let mut detectors: Vec<Detector> = (0..self.len()).map(|_| Detector::new()).collect();
        self.feed_boundary(grid, start, &mut detectors);
        if k_first <= k_last {
            match mode {
                VisibilityMode::On => self.sweep_chunked(grid, k_first, k_last, &mut detectors),
                VisibilityMode::Scalar => self.sweep_scalar(grid, k_first, k_last, &mut detectors),
                VisibilityMode::Off => unreachable!("handled above"),
            }
        }
        self.feed_boundary(grid, end, &mut detectors);

        let outcomes: Vec<SweepOutcome> =
            detectors.into_iter().map(Detector::into_outcome).collect();
        SWEEPS.inc();
        SWEEP_MARGINS.add(outcomes.iter().map(|o| o.points as u64).sum());
        SWEEP_EVENTS.add(outcomes.iter().map(|o| o.events.len() as u64).sum());
        SWEEP_CANDIDATES.add(
            outcomes
                .iter()
                .flat_map(|o| &o.events)
                .filter(|e| e.kind == SweepEventKind::Candidate)
                .count() as u64,
        );
        Some(outcomes)
    }

    /// Feed the exact window boundary to every detector, through the
    /// grid's Hermite interpolant and the shared margin expression.
    /// An uninterpolable boundary (NaN bracketing samples) feeds NaN
    /// margins, which read as "below the mask" in both kernel modes.
    fn feed_boundary(&self, grid: &EphemerisGrid, t: JulianDate, detectors: &mut [Detector]) {
        let (p, v) = match grid.state_at(t) {
            Some(s) => (s.position_km, s.velocity_km_s),
            None => {
                for d in detectors.iter_mut() {
                    d.feed(t, f64::NAN, f64::NAN);
                }
                return;
            }
        };
        for (o, d) in detectors.iter_mut().enumerate() {
            let (m, dm) = margin_terms(p.x, p.y, p.z, v.x, v.y, v.z, self.params(o));
            d.feed(t, m, dm);
        }
    }

    /// The chunked sweep: gather [`CHUNK`] columns into SoA arrays
    /// once, then run every observer's kernel over the gathered chunk
    /// while it is hot in L1.
    fn sweep_chunked(
        &self,
        grid: &EphemerisGrid,
        k_first: usize,
        k_last: usize,
        detectors: &mut [Detector],
    ) {
        let samples = grid.samples();
        let mut cols = ColumnChunk::zeroed();
        let mut times = [JulianDate(0.0); CHUNK];
        let mut m = [0.0_f64; CHUNK];
        let mut dm = [0.0_f64; CHUNK];
        let mut k = k_first;
        while k <= k_last {
            let n_real = (k_last - k + 1).min(CHUNK);
            for i in 0..n_real {
                let s = &samples[k + i];
                cols.px[i] = s.position_km.x;
                cols.py[i] = s.position_km.y;
                cols.pz[i] = s.position_km.z;
                cols.vx[i] = s.velocity_km_s.x;
                cols.vy[i] = s.velocity_km_s.y;
                cols.vz[i] = s.velocity_km_s.z;
                times[i] = grid.sample_time(k + i);
            }
            let step_s = grid.step_s();
            for (o, d) in detectors.iter_mut().enumerate() {
                margin_chunk(&cols, self.params(o), &mut m, &mut dm);
                // Chunk screen: the Hermite model of every interval in
                // this chunk (and the bridge from the carried previous
                // sample) lies inside its Bézier hull, which is bounded
                // by `max(m) + dt·max|dm|/3` with `dt ≤ step`. When that
                // bound cannot reach the candidate guard, no crossing or
                // near-miss exists here and the scalar state machine is
                // bypassed wholesale — the dominant case for LEO
                // satellites, which spend most of a day far below any
                // observer's horizon. `f64::max` ignores NaN carries,
                // and NaN margins route to the slow path via the NaN
                // bound, so degraded samples keep their feed semantics.
                let mut max_m = d.m_prev;
                let mut max_abs_dm = d.dm_prev.abs();
                for i in 0..n_real {
                    max_m = max_m.max(m[i]);
                    max_abs_dm = max_abs_dm.max(dm[i].abs());
                }
                if max_m + step_s * max_abs_dm / 3.0 <= -CANDIDATE_GUARD_KM {
                    d.skip_eventless(n_real, times[n_real - 1], m[n_real - 1], dm[n_real - 1]);
                    continue;
                }
                for i in 0..n_real {
                    d.feed(times[i], m[i], dm[i]);
                }
            }
            k += n_real;
        }
    }

    /// The element-at-a-time sweep: the same margin expression and
    /// feed order as [`Self::sweep_chunked`], one column at a time —
    /// the bit-identical scalar baseline the bench matrix measures
    /// the kernels against.
    fn sweep_scalar(
        &self,
        grid: &EphemerisGrid,
        k_first: usize,
        k_last: usize,
        detectors: &mut [Detector],
    ) {
        let samples = grid.samples();
        for (o, d) in detectors.iter_mut().enumerate() {
            let p = self.params(o);
            for (k, s) in samples.iter().enumerate().take(k_last + 1).skip(k_first) {
                let (m, dm) = margin_terms(
                    s.position_km.x,
                    s.position_km.y,
                    s.position_km.z,
                    s.velocity_km_s.x,
                    s.velocity_km_s.y,
                    s.velocity_km_s.z,
                    p,
                );
                d.feed(grid.sample_time(k), m, dm);
            }
        }
    }
}

/// Sweep one observer over one grid — the [`PassPredictor`] entry
/// point. See [`VisibilitySweep::run`] for the `None` contract.
///
/// [`PassPredictor`]: crate::pass::PassPredictor
pub fn sweep_one(
    grid: &EphemerisGrid,
    observer: &Observer,
    mask_rad: f64,
    start: JulianDate,
    end: JulianDate,
    mode: VisibilityMode,
) -> Option<SweepOutcome> {
    let mut sweep = VisibilitySweep::new();
    sweep.push(observer, mask_rad);
    let mut outcomes = sweep.run(grid, start, end, mode)?;
    outcomes.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Elements;
    use crate::frames::Geodetic;
    use crate::sgp4::Sgp4;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn leo(alt_km: f64, incl_deg: f64) -> Sgp4 {
        Elements::circular(alt_km, incl_deg, epoch())
            .to_sgp4()
            .unwrap()
    }

    fn hk() -> Observer {
        Observer::new(Geodetic::from_degrees(22.3193, 114.1694, 0.05))
    }

    #[test]
    fn mode_latch_round_trips() {
        for m in [
            VisibilityMode::Off,
            VisibilityMode::Scalar,
            VisibilityMode::On,
        ] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(VisibilityMode::On);
    }

    #[test]
    fn margin_sign_agrees_with_elevation() {
        // The margin test must agree with `asin(z/r) > mask` at every
        // grid column for a realistic geometry and several masks.
        let sgp4 = leo(550.0, 97.6);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 1.0);
        let obs = hk();
        for mask_deg in [0.0, 5.0, 25.0] {
            let mask = (mask_deg as f64).to_radians();
            let mut sweep = VisibilitySweep::new();
            sweep.push(&obs, mask);
            let p = sweep.params(0);
            for k in 0..grid.len() {
                let s = grid.samples()[k];
                let (m, _) = margin_terms(
                    s.position_km.x,
                    s.position_km.y,
                    s.position_km.z,
                    s.velocity_km_s.x,
                    s.velocity_km_s.y,
                    s.velocity_km_s.z,
                    p,
                );
                let el = obs
                    .look_at_ecef(s.position_km, s.velocity_km_s)
                    .elevation_rad;
                assert_eq!(m > 0.0, el > mask, "column {k} mask {mask_deg}");
            }
        }
    }

    #[test]
    fn margin_derivative_matches_finite_differences() {
        let sgp4 = leo(550.0, 97.6);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 0.5);
        let obs = hk();
        let mut sweep = VisibilitySweep::new();
        sweep.push(&obs, 5.0_f64.to_radians());
        let p = sweep.params(0);
        let eval = |t: JulianDate| {
            let s = grid.state_at(t).unwrap();
            margin_terms(
                s.position_km.x,
                s.position_km.y,
                s.position_km.z,
                s.velocity_km_s.x,
                s.velocity_km_s.y,
                s.velocity_km_s.z,
                p,
            )
        };
        for k in [5, 17, 40] {
            let t = grid.sample_time(k);
            let (_, dm) = eval(t);
            let h = 0.5; // seconds
            let (m_plus, _) = eval(t.plus_seconds(h));
            let (m_minus, _) = eval(t.plus_seconds(-h));
            let fd = (m_plus - m_minus) / (2.0 * h);
            assert!(
                (dm - fd).abs() < 1e-3 * dm.abs().max(1.0),
                "dm {dm} vs finite difference {fd} at column {k}"
            );
        }
    }

    #[test]
    fn scalar_and_chunked_sweeps_are_bit_identical() {
        let sgp4 = leo(550.0, 97.6);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 2.0);
        let mut sweep = VisibilitySweep::new();
        sweep.push(&hk(), 0.0);
        sweep.push(
            &Observer::new(Geodetic::from_degrees(39.9042, 116.4074, 0.04)),
            10.0_f64.to_radians(),
        );
        sweep.push(
            &Observer::new(Geodetic::from_degrees(-33.87, 151.21, 0.03)),
            5.0_f64.to_radians(),
        );
        let start = epoch().plus_seconds(13.0); // off-lattice boundaries
        let end = epoch().plus_seconds(2.0 * 86_400.0 - 29.0);
        let scalar = sweep
            .run(&grid, start, end, VisibilityMode::Scalar)
            .expect("covered window");
        let vector = sweep
            .run(&grid, start, end, VisibilityMode::On)
            .expect("covered window");
        assert_eq!(scalar.len(), vector.len());
        for (a, b) in scalar.iter().zip(&vector) {
            assert_eq!(a.above_at_start, b.above_at_start);
            assert_eq!(a.events.len(), b.events.len());
            for (x, y) in a.events.iter().zip(&b.events) {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.t_lo.0.to_bits(), y.t_lo.0.to_bits());
                assert_eq!(x.t_hi.0.to_bits(), y.t_hi.0.to_bits());
            }
        }
        assert!(scalar.iter().any(|o| !o.events.is_empty()));
    }

    #[test]
    fn events_bracket_every_dense_scan_crossing() {
        // Reference: a dense 5 s elevation scan. Every crossing it
        // finds must fall inside exactly one Rising/Falling window.
        let sgp4 = leo(550.0, 97.6);
        let start = epoch();
        let end = epoch() + 1.0;
        let grid = EphemerisGrid::build(&sgp4, start, end);
        let obs = hk();
        let mask = 5.0_f64.to_radians();
        let outcome = sweep_one(&grid, &obs, mask, start, end, VisibilityMode::On).unwrap();

        let el = |t: JulianDate| {
            let s = grid.state_at(t).unwrap();
            obs.look_at_ecef(s.position_km, s.velocity_km_s)
                .elevation_rad
        };
        let mut crossings = Vec::new();
        let mut t = start;
        let mut above_prev = el(t) > mask;
        while t < end {
            let t_next = t.plus_seconds(5.0);
            let t_next = if t_next > end { end } else { t_next };
            let above = el(t_next) > mask;
            if above != above_prev {
                crossings.push((t, t_next, above));
            }
            above_prev = above;
            t = t_next;
        }
        assert!(!crossings.is_empty(), "test geometry has no passes");
        for (lo, hi, rising) in crossings {
            let hits = outcome
                .events
                .iter()
                .filter(|e| {
                    let kind_ok = if rising {
                        e.kind == SweepEventKind::Rising
                    } else {
                        e.kind == SweepEventKind::Falling
                    };
                    kind_ok && e.t_lo <= hi && e.t_hi >= lo
                })
                .count();
            assert_eq!(hits, 1, "crossing near {lo:?} not bracketed exactly once");
        }
    }

    #[test]
    fn uncovered_windows_fall_back_to_none() {
        let sgp4 = leo(550.0, 97.6);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 0.5);
        let obs = hk();
        // Window extends past the grid.
        assert!(sweep_one(&grid, &obs, 0.0, epoch(), epoch() + 5.0, VisibilityMode::On).is_none());
        // Degenerate / reversed windows.
        assert!(sweep_one(&grid, &obs, 0.0, epoch(), epoch(), VisibilityMode::On).is_none());
        assert!(sweep_one(
            &grid,
            &obs,
            0.0,
            epoch() + 0.4,
            epoch() + 0.1,
            VisibilityMode::On
        )
        .is_none());
        // Off mode always defers to the legacy scan.
        assert!(sweep_one(
            &grid,
            &obs,
            0.0,
            epoch(),
            epoch() + 0.4,
            VisibilityMode::Off
        )
        .is_none());
        // Empty grid.
        let empty = EphemerisGrid::build(&sgp4, epoch(), epoch());
        assert!(sweep_one(
            &empty,
            &obs,
            0.0,
            epoch(),
            epoch() + 0.4,
            VisibilityMode::On
        )
        .is_none());
    }

    #[test]
    fn cubic_max_finds_the_interior_peak() {
        // H(s) = -(s - 0.5)² + 0.25 scaled: p0 = p1 = 0, peak 0.25 at
        // s = 0.5 ⟹ endpoint derivatives ±1.
        let max = cubic_max(0.0, 1.0, 0.0, -1.0);
        assert!((max - 0.25).abs() < 1e-12, "max {max}");
        // Monotone segment: no interior extremum beats the endpoints.
        let max = cubic_max(-3.0, 1.0, -1.0, 1.0);
        assert!((max - (-1.0)).abs() < 1e-12, "max {max}");
    }

    #[test]
    fn near_miss_filter_rejects_deep_intervals_and_keeps_shallow_peaks() {
        // Deep below, flat: hull reject.
        assert!(!near_miss_candidate(-500.0, 0.0, -480.0, 0.01, 60.0));
        // Endpoints at −5 km with derivatives that arch the model to
        // +2.5 km mid-interval: must stay a candidate.
        assert!(near_miss_candidate(-5.0, 0.5, -5.0, -0.5, 60.0));
        // Same arch but the peak stays ~3 km below: rejected by the
        // exact cubic even though one Bézier control point is high.
        assert!(!near_miss_candidate(-10.0, 0.3, -10.0, -0.3, 60.0));
        // Invalid samples never probe.
        assert!(!near_miss_candidate(f64::NAN, 0.0, -1.0, 0.0, 60.0));
        assert!(!near_miss_candidate(-1.0, 0.0, -1.0, 0.0, 0.0));
    }

    #[test]
    fn nan_samples_read_as_below_the_mask() {
        // Failed-propagation samples store NaN state; the margin
        // arithmetic must propagate it and the detector must read NaN
        // margins as "below" (no spurious events, not above at start),
        // matching how the legacy scan reports unanswerable instants.
        let p = ObsParams {
            sx: 0.0,
            sy: 0.0,
            sz: 0.0,
            zx: 1.0,
            zy: 0.0,
            zz: 0.0,
            sin_mask: 0.0,
        };
        let (m, dm) = margin_terms(f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0, p);
        assert!(m.is_nan() && dm.is_nan());
        let mut d = Detector::new();
        d.feed(epoch(), f64::NAN, f64::NAN);
        d.feed(epoch().plus_seconds(60.0), f64::NAN, f64::NAN);
        let out = d.into_outcome();
        assert!(!out.above_at_start && out.events.is_empty());
    }
}
