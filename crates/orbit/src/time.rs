//! Time scales: Julian dates, calendar conversion, TLE epochs, and
//! Greenwich Mean Sidereal Time (GMST).
//!
//! SGP4 works in *minutes since TLE epoch*; everything terrestrial works in
//! UTC. [`JulianDate`] is the bridge: a thin newtype over the UT1≈UTC Julian
//! day number with enough arithmetic to express campaign timelines.

use core::f64::consts::TAU;
use core::ops::{Add, Sub};

/// A Julian date on the UTC timescale (UT1 ≈ UTC is assumed, which is
/// accurate to < 0.9 s — far below the fidelity SGP4 itself offers).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct JulianDate(pub f64);

/// Julian date of the J2000.0 reference epoch (2000-01-01 12:00 TT,
/// treated as UTC here).
pub const JD_J2000: f64 = 2_451_545.0;

/// Seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Minutes per day.
pub const MINUTES_PER_DAY: f64 = 1_440.0;

impl JulianDate {
    /// Build a Julian date from a Gregorian calendar instant (UTC).
    ///
    /// Valid for years 1900–2100, which covers every TLE epoch. Uses the
    /// standard Vallado `JDAY` algorithm.
    pub fn from_calendar(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: f64,
    ) -> Self {
        let y = year as f64;
        let m = month as f64;
        let d = day as f64;
        let jd = 367.0 * y - ((7.0 * (y + ((m + 9.0) / 12.0).floor())) * 0.25).floor()
            + (275.0 * m / 9.0).floor()
            + d
            + 1_721_013.5;
        let day_frac = ((second / 60.0 + minute as f64) / 60.0 + hour as f64) / 24.0;
        JulianDate(jd + day_frac)
    }

    /// Build a Julian date from a TLE-style epoch: a two-digit year and a
    /// fractional day-of-year.
    ///
    /// Years 57–99 map to 1957–1999 and 00–56 to 2000–2056, per the TLE
    /// convention.
    pub fn from_tle_epoch(two_digit_year: u32, day_of_year: f64) -> Self {
        let year = if two_digit_year >= 57 {
            1900 + two_digit_year as i32
        } else {
            2000 + two_digit_year as i32
        };
        // Day 1.0 is Jan 1, 00:00 UTC.
        let jan1 = JulianDate::from_calendar(year, 1, 1, 0, 0, 0.0);
        JulianDate(jan1.0 + (day_of_year - 1.0))
    }

    /// Greenwich Mean Sidereal Time at this instant, in radians ∈ [0, 2π).
    ///
    /// IAU 1982 model (the one SGP4-era tooling uses), evaluated with
    /// UT1 ≈ UTC.
    pub fn gmst_rad(self) -> f64 {
        let tut1 = (self.0 - JD_J2000) / 36_525.0;
        // Seconds of sidereal time.
        let mut temp = -6.2e-6 * tut1 * tut1 * tut1
            + 0.093_104 * tut1 * tut1
            + (876_600.0 * 3_600.0 + 8_640_184.812_866) * tut1
            + 67_310.548_41;
        // 240 sidereal seconds per degree; convert to radians and wrap.
        temp = (temp * core::f64::consts::PI / 180.0 / 240.0) % TAU;
        if temp < 0.0 {
            temp += TAU;
        }
        temp
    }

    /// Days elapsed from `other` to `self` (may be negative).
    #[inline]
    pub fn days_since(self, other: JulianDate) -> f64 {
        self.0 - other.0
    }

    /// Minutes elapsed from `other` to `self` (may be negative).
    #[inline]
    pub fn minutes_since(self, other: JulianDate) -> f64 {
        (self.0 - other.0) * MINUTES_PER_DAY
    }

    /// Seconds elapsed from `other` to `self` (may be negative).
    #[inline]
    pub fn seconds_since(self, other: JulianDate) -> f64 {
        (self.0 - other.0) * SECONDS_PER_DAY
    }

    /// This instant shifted forward by `minutes`.
    #[inline]
    pub fn plus_minutes(self, minutes: f64) -> JulianDate {
        JulianDate(self.0 + minutes / MINUTES_PER_DAY)
    }

    /// This instant shifted forward by `seconds`.
    #[inline]
    pub fn plus_seconds(self, seconds: f64) -> JulianDate {
        JulianDate(self.0 + seconds / SECONDS_PER_DAY)
    }

    /// Decompose back into a Gregorian calendar date (UTC).
    ///
    /// Returns `(year, month, day, hour, minute, second)`. Inverse of
    /// [`JulianDate::from_calendar`] to within floating-point rounding.
    pub fn to_calendar(self) -> (i32, u32, u32, u32, u32, f64) {
        // Vallado `invjday`.
        let temp = self.0 - 2_415_019.5;
        let tu = temp / 365.25;
        let mut year = 1900 + tu.floor() as i32;
        let mut leap_years = (((year - 1901) as f64) * 0.25).floor() as i32;
        let mut days = temp - (((year - 1900) * 365 + leap_years) as f64);
        if days < 1.0 {
            year -= 1;
            leap_years = (((year - 1901) as f64) * 0.25).floor() as i32;
            days = temp - (((year - 1900) * 365 + leap_years) as f64);
        }
        let is_leap = year % 4 == 0;
        let lmonth = [
            31,
            if is_leap { 29 } else { 28 },
            31,
            30,
            31,
            30,
            31,
            31,
            30,
            31,
            30,
            31,
        ];
        let day_of_year = days.floor() as i32;
        let mut day_count = 0;
        let mut month = 0usize;
        while month < 12 && day_count + lmonth[month] < day_of_year {
            day_count += lmonth[month];
            month += 1;
        }
        let day = day_of_year - day_count;
        let frac = days - day_of_year as f64;
        let mut hours = frac * 24.0;
        let hour = hours.floor();
        hours = (hours - hour) * 60.0;
        let minute = hours.floor();
        let second = (hours - minute) * 60.0;
        (
            year,
            (month + 1) as u32,
            day as u32,
            hour as u32,
            minute as u32,
            second,
        )
    }
}

impl Add<f64> for JulianDate {
    type Output = JulianDate;
    /// Shift by whole days.
    #[inline]
    fn add(self, days: f64) -> JulianDate {
        JulianDate(self.0 + days)
    }
}

impl Sub<JulianDate> for JulianDate {
    type Output = f64;
    /// Difference in days.
    #[inline]
    fn sub(self, rhs: JulianDate) -> f64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_reference() {
        let jd = JulianDate::from_calendar(2000, 1, 1, 12, 0, 0.0);
        assert!((jd.0 - JD_J2000).abs() < 1e-9);
    }

    #[test]
    fn known_julian_dates() {
        // Vallado example 3-4: 1996-10-26 14:20:00 UTC = JD 2450383.09722222.
        let jd = JulianDate::from_calendar(1996, 10, 26, 14, 20, 0.0);
        assert!((jd.0 - 2_450_383.097_222_22).abs() < 1e-7);
        // Unix epoch 1970-01-01 00:00 = JD 2440587.5.
        let jd = JulianDate::from_calendar(1970, 1, 1, 0, 0, 0.0);
        assert!((jd.0 - 2_440_587.5).abs() < 1e-9);
    }

    #[test]
    fn tle_epoch_year_windowing() {
        // 80275.98708465: 1980, day 275.98708465 (the classic SGP4 test TLE).
        let jd = JulianDate::from_tle_epoch(80, 275.987_084_65);
        let (y, m, d, h, _, _) = jd.to_calendar();
        assert_eq!((y, m, d), (1980, 10, 1));
        assert_eq!(h, 23);
        // 24001.5 → 2024-01-01 12:00.
        let jd = JulianDate::from_tle_epoch(24, 1.5);
        let (y, m, d, h, _, _) = jd.to_calendar();
        assert_eq!((y, m, d, h), (2024, 1, 1, 12));
        // Year 57 → 1957 (Sputnik era), year 56 → 2056.
        assert!(JulianDate::from_tle_epoch(57, 1.0).0 < JulianDate::from_tle_epoch(56, 1.0).0);
    }

    #[test]
    fn gmst_at_known_instant() {
        // Vallado example 3-5: 1992-08-20 12:14 UT1 → GMST = 152.578787810°.
        let jd = JulianDate::from_calendar(1992, 8, 20, 12, 14, 0.0);
        let gmst_deg = jd.gmst_rad().to_degrees();
        assert!(
            (gmst_deg - 152.578_787_810).abs() < 1e-5,
            "gmst was {gmst_deg}"
        );
    }

    #[test]
    fn gmst_advances_about_361_degrees_per_day() {
        let jd0 = JulianDate::from_calendar(2024, 6, 1, 0, 0, 0.0);
        let jd1 = jd0 + 1.0;
        let mut delta = (jd1.gmst_rad() - jd0.gmst_rad()).to_degrees();
        if delta < 0.0 {
            delta += 360.0;
        }
        // A sidereal day is ~3m56s shorter than a solar day, so GMST gains
        // ~0.9856° per solar day.
        assert!((delta - 0.985_6).abs() < 1e-3, "delta was {delta}");
    }

    #[test]
    fn calendar_round_trip() {
        let cases = [
            (2024, 3, 15, 6, 30, 12.25),
            (1980, 10, 1, 23, 41, 24.11),
            (2025, 12, 31, 0, 0, 0.0),
            (2000, 2, 29, 23, 59, 59.0),
        ];
        for (y, mo, d, h, mi, s) in cases {
            let jd = JulianDate::from_calendar(y, mo, d, h, mi, s);
            let (y2, mo2, d2, h2, mi2, s2) = jd.to_calendar();
            assert_eq!((y, mo, d), (y2, mo2, d2));
            let sec_in = h as f64 * 3600.0 + mi as f64 * 60.0 + s;
            let sec_out = h2 as f64 * 3600.0 + mi2 as f64 * 60.0 + s2;
            assert!((sec_in - sec_out).abs() < 1e-3, "{sec_in} vs {sec_out}");
        }
    }

    #[test]
    fn arithmetic_helpers_are_consistent() {
        let jd = JulianDate::from_calendar(2024, 1, 1, 0, 0, 0.0);
        let later = jd.plus_minutes(90.0);
        assert!((later.minutes_since(jd) - 90.0).abs() < 1e-9);
        assert!((later.seconds_since(jd) - 5400.0).abs() < 1e-6);
        assert!((later.days_since(jd) - 0.0625).abs() < 1e-12);
        assert!(((later - jd) - 0.0625).abs() < 1e-12);
        let by_secs = jd.plus_seconds(5400.0);
        assert!((by_secs.0 - later.0).abs() < 1e-12);
    }
}
