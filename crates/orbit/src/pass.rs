//! Contact-window (pass) prediction.
//!
//! A *pass* is the interval during which a satellite sits above a minimum
//! elevation mask as seen from a ground site — the paper's "theoretical
//! contact window". Prediction uses a coarse scan (default 30 s) to
//! bracket horizon crossings, then bisection to refine AOS/LOS to ~10 ms,
//! and a golden-section search for the culmination (maximum elevation).
//!
//! Every elevation/look-angle query flows through one pluggable sampling
//! backend: direct SGP4 propagation (the default), or a shared
//! [`EphemerisGrid`](crate::ephemeris::EphemerisGrid) attached with
//! [`PassPredictor::with_ephemeris`] — in which case the coarse scan,
//! the crossing bisections, and the culmination search all interpolate
//! instead of propagating, and multiple observers amortise one
//! trajectory.

use crate::ephemeris::EphemerisGrid;
use crate::error::OrbitError;
use crate::frames::{teme_to_ecef, Geodetic, StateEcef};
use crate::sgp4::Sgp4;
use crate::time::JulianDate;
use crate::topo::Observer;
use crate::visibility::{self, SweepEventKind, SweepOutcome, VisibilityMode};
use satiot_obs::metrics::Counter;
use std::sync::Arc;

/// Completed contact windows emitted by all predictors (metrics).
static PASSES_PREDICTED: Counter = Counter::new("orbit.pass.passes_predicted");
/// Pass scans rejected for non-finite bounds or masks (metrics).
static NON_FINITE_SCANS: Counter = Counter::new("orbit.pass.non_finite_scans");
/// Moving-observer legs scanned (metrics).
static LEGS_SCANNED: Counter = Counter::new("orbit.pass.legs_scanned");

/// One leg of a moving observer's itinerary: the observer holds
/// `position` throughout `[start, end]`. Mobility tracks (ships, asset
/// trackers) are discretised into legs upstream — within a leg the pass
/// geometry is that of a fixed site, so each leg reuses the whole
/// fixed-observer machinery (adaptive scan, margin sweeps, shared
/// ephemeris grids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserverLeg {
    /// Leg start (inclusive).
    pub start: JulianDate,
    /// Leg end.
    pub end: JulianDate,
    /// Observer position held for the duration of the leg.
    pub position: Geodetic,
}

/// One predicted contact window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pass {
    /// Acquisition of signal: elevation rises through the mask.
    pub aos: JulianDate,
    /// Loss of signal: elevation falls back through the mask.
    pub los: JulianDate,
    /// Time of culmination (maximum elevation).
    pub tca: JulianDate,
    /// Maximum elevation reached, radians.
    pub max_elevation_rad: f64,
    /// Slant range at culmination, km.
    pub tca_range_km: f64,
}

impl Pass {
    /// Window duration in minutes.
    pub fn duration_min(&self) -> f64 {
        self.los.minutes_since(self.aos)
    }

    /// Window duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.los.seconds_since(self.aos)
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: JulianDate) -> bool {
        t >= self.aos && t <= self.los
    }

    /// Normalised position of `t` within the window ∈ [0, 1]
    /// (used for the paper's Figure 9 analysis).
    pub fn normalized_position(&self, t: JulianDate) -> f64 {
        let d = self.los.seconds_since(self.aos);
        if d <= 0.0 {
            return 0.0;
        }
        (t.seconds_since(self.aos) / d).clamp(0.0, 1.0)
    }
}

/// Predicts passes of one satellite over one ground site.
///
/// ```
/// use satiot_orbit::elements::Elements;
/// use satiot_orbit::frames::Geodetic;
/// use satiot_orbit::pass::PassPredictor;
/// use satiot_orbit::time::JulianDate;
///
/// let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
/// let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
/// let hk = Geodetic::from_degrees(22.32, 114.17, 0.05);
/// let predictor = PassPredictor::new(sgp4, hk, 0.0);
/// let passes = predictor.passes(epoch, epoch + 1.0);
/// assert!(!passes.is_empty());
/// assert!(passes[0].duration_min() < 16.0);
/// ```
#[derive(Debug, Clone)]
pub struct PassPredictor {
    sgp4: Sgp4,
    observer: Observer,
    /// Elevation mask, radians.
    pub min_elevation_rad: f64,
    /// Coarse scan step, seconds. 30 s cannot skip over a LEO pass above
    /// a ≤ 10° mask; lower it for very high masks.
    pub coarse_step_s: f64,
    /// Optional shared ephemeris backend (see [`Self::with_ephemeris`]).
    ephemeris: Option<Arc<EphemerisGrid>>,
    /// How the coarse scan runs (see [`Self::with_visibility`]).
    visibility: VisibilityMode,
}

impl PassPredictor {
    /// Create a predictor for `sgp4` as seen from `site` with the given
    /// elevation mask (radians). Samples by direct SGP4 propagation;
    /// attach a grid with [`Self::with_ephemeris`] to interpolate
    /// instead.
    pub fn new(sgp4: Sgp4, site: Geodetic, min_elevation_rad: f64) -> Self {
        PassPredictor {
            sgp4,
            observer: Observer::new(site),
            min_elevation_rad,
            coarse_step_s: 30.0,
            ephemeris: None,
            visibility: VisibilityMode::Off,
        }
    }

    /// Sample through `grid` instead of propagating: queries the grid
    /// covers are Hermite-interpolated (no SGP4, no GMST, no frame
    /// rotation); queries outside it fall back to direct propagation,
    /// so attaching a grid never changes *which* instants are
    /// answerable — only how cheaply.
    pub fn with_ephemeris(mut self, grid: Arc<EphemerisGrid>) -> Self {
        self.ephemeris = Some(grid);
        self
    }

    /// The attached ephemeris backend, if any.
    pub fn ephemeris(&self) -> Option<&Arc<EphemerisGrid>> {
        self.ephemeris.as_ref()
    }

    /// Choose how the coarse scan runs. [`VisibilityMode::Scalar`] and
    /// [`VisibilityMode::On`] replace the adaptive elevation scan with
    /// a bit-identical pair of margin sweeps over the attached
    /// ephemeris grid's columns (see the [`visibility`] module docs);
    /// they take effect only when a grid is attached *and* covers the
    /// scan window *and* the mask sits inside `(−π/2, π/2)` — the scan
    /// falls back to the legacy loop otherwise, so enabling a sweep
    /// never changes which windows are answerable. Raw constructors
    /// default to [`VisibilityMode::Off`] (the legacy scan);
    /// `satiot_core::sweep` threads the process-wide knob through
    /// here.
    pub fn with_visibility(mut self, mode: VisibilityMode) -> Self {
        self.visibility = mode;
        self
    }

    /// The configured scan mode.
    pub fn visibility(&self) -> VisibilityMode {
        self.visibility
    }

    /// The satellite's ECEF state at `t` through the sampling backend:
    /// grid interpolation when a grid is attached and covers `t`,
    /// direct SGP4 + frame rotation otherwise.
    fn state_ecef_at(&self, t: JulianDate) -> Option<StateEcef> {
        if let Some(grid) = &self.ephemeris {
            if let Some(state) = grid.state_at(t) {
                return Some(state);
            }
        }
        self.sgp4
            .propagate_at(t)
            .ok()
            .map(|state| teme_to_ecef(&state, t))
    }

    /// Elevation above the horizon at `t`, radians. Propagation failures
    /// (decayed elements, …) report as far below the horizon so scanning
    /// code treats them as "not visible".
    pub fn elevation_at(&self, t: JulianDate) -> f64 {
        match self.state_ecef_at(t) {
            Some(state) => {
                self.observer
                    .look_at_ecef(state.position_km, state.velocity_km_s)
                    .elevation_rad
            }
            None => -core::f64::consts::FRAC_PI_2,
        }
    }

    /// Look angles at `t`, if the satellite state is computable.
    pub fn look_at(&self, t: JulianDate) -> Option<crate::topo::LookAngles> {
        self.state_ecef_at(t).map(|state| {
            self.observer
                .look_at_ecef(state.position_km, state.velocity_km_s)
        })
    }

    /// Re-site the predictor: same satellite, sampling backend, mask
    /// and scan configuration, new observer position. Moving-observer
    /// scans re-use one satellite ephemeris grid across every leg this
    /// way — the grid stores the *satellite* trajectory, which is
    /// observer-independent.
    pub fn with_observer_position(mut self, site: Geodetic) -> Self {
        self.observer = Observer::new(site);
        self
    }

    /// Passes seen by a *moving* observer described as piecewise legs:
    /// each leg pins the observer at its position and scans its own
    /// window through [`Self::try_passes`]; the per-leg lists
    /// concatenate in time order.
    ///
    /// Legs must be chronological and non-overlapping (gaps are fine —
    /// nothing is scanned inside them). A contact that straddles a leg
    /// boundary is reported as two truncated passes, one per observer
    /// position — the geometry genuinely changed at the waypoint, and
    /// splitting keeps the result deterministic and driver-independent.
    pub fn passes_over_legs(&self, legs: &[ObserverLeg]) -> Result<Vec<Pass>, OrbitError> {
        for (i, pair) in legs.windows(2).enumerate() {
            if pair[1].start < pair[0].end {
                return Err(OrbitError::UnorderedLegs { index: i + 1 });
            }
        }
        let mut out = Vec::new();
        for leg in legs {
            let sited = self.clone().with_observer_position(leg.position);
            out.extend(sited.try_passes(leg.start, leg.end)?);
            LEGS_SCANNED.inc();
        }
        Ok(out)
    }

    /// The underlying propagator.
    pub fn sgp4(&self) -> &Sgp4 {
        &self.sgp4
    }

    /// The observer site.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Find every pass in `[start, end]`, in chronological order.
    ///
    /// A pass already in progress at `start` is reported with `aos = start`;
    /// one still in progress at `end` is truncated at `end`.
    ///
    /// The coarse scan is *adaptive*: while the satellite sits far below
    /// the horizon the step grows with angular distance (a LEO satellite's
    /// elevation rate as seen from the ground never exceeds ~0.25°/s near
    /// the horizon, so a satellite at −E° needs at least `E/0.25` seconds
    /// to reach it — stepping a quarter of that with a 600 s cap cannot
    /// skip a pass). Multi-month campaign scans become ~6× cheaper.
    ///
    /// Non-finite bounds or masks degrade to an empty pass list (and a
    /// bump of the `orbit.pass.non_finite_scans` metric); callers that
    /// must distinguish the degenerate case use [`Self::try_passes`].
    pub fn passes(&self, start: JulianDate, end: JulianDate) -> Vec<Pass> {
        self.try_passes(start, end).unwrap_or_default()
    }

    /// Fallible sibling of [`Self::passes`]: rejects non-finite scan
    /// bounds and elevation masks with a typed error instead of
    /// degrading to an empty list. A NaN bound is not merely a wrong
    /// answer — `t >= end` never becomes true, so the coarse scan of
    /// the infallible path would otherwise never terminate.
    pub fn try_passes(&self, start: JulianDate, end: JulianDate) -> Result<Vec<Pass>, OrbitError> {
        for (field, value) in [
            ("start", start.0),
            ("end", end.0),
            ("mask", self.min_elevation_rad),
        ] {
            if !value.is_finite() {
                NON_FINITE_SCANS.inc();
                return Err(OrbitError::NonFiniteScan { field, value });
            }
        }
        Ok(self.scan_passes(start, end))
    }

    /// The coarse-scan + refinement loop (bounds already validated).
    fn scan_passes(&self, start: JulianDate, end: JulianDate) -> Vec<Pass> {
        let mut result = Vec::new();
        if end <= start {
            return result;
        }
        // Margin sweep first, when configured and applicable. The mask
        // gate keeps the margin ⟺ elevation equivalence valid (asin is
        // only monotone on (−π/2, π/2)); `sweep_one` itself answers
        // `None` when the grid is absent or does not cover the window,
        // in which case the legacy scan below takes over.
        if self.visibility != VisibilityMode::Off
            && self.min_elevation_rad.abs() < core::f64::consts::FRAC_PI_2
        {
            if let Some(grid) = &self.ephemeris {
                if let Some(sweep) = visibility::sweep_one(
                    grid,
                    &self.observer,
                    self.min_elevation_rad,
                    start,
                    end,
                    self.visibility,
                ) {
                    return self.refine_sweep(&sweep, start, end);
                }
            }
        }
        let mask = self.min_elevation_rad;

        let mut t_prev = start;
        let mut el_prev = self.elevation_at(t_prev);
        let mut above_prev = el_prev > mask;
        let mut aos: Option<JulianDate> = if above_prev { Some(start) } else { None };

        loop {
            let step_s = self.adaptive_step_s(el_prev);
            let t = JulianDate(t_prev.0 + step_s / 86_400.0);
            let t_clamped = if t > end { end } else { t };
            let el = self.elevation_at(t_clamped);
            let above = el > mask;
            if above && !above_prev {
                aos = Some(self.refine_crossing(t_prev, t_clamped));
            } else if !above && above_prev {
                let los = self.refine_crossing(t_prev, t_clamped);
                if let Some(a) = aos.take() {
                    if let Some(pass) = self.finish_pass(a, los) {
                        result.push(pass);
                    }
                }
            }
            above_prev = above;
            el_prev = el;
            t_prev = t_clamped;
            if t_prev >= end {
                break;
            }
        }
        // Pass still in progress at `end`.
        if let Some(a) = aos {
            if let Some(pass) = self.finish_pass(a, end) {
                result.push(pass);
            }
        }
        result
    }

    /// Turn a margin sweep's sparse event list into refined passes,
    /// through the same bisection ([`Self::refine_crossing`]) and
    /// golden-section ([`Self::finish_pass`]) machinery as the legacy
    /// scan — only the *bracketing* changed, from adaptive elevation
    /// probes to grid-column sign changes.
    fn refine_sweep(&self, sweep: &SweepOutcome, start: JulianDate, end: JulianDate) -> Vec<Pass> {
        let mut result = Vec::new();
        let mut aos: Option<JulianDate> = sweep.above_at_start.then_some(start);
        for event in &sweep.events {
            match event.kind {
                SweepEventKind::Rising => {
                    if aos.is_none() {
                        aos = Some(self.refine_crossing(event.t_lo, event.t_hi));
                    }
                }
                SweepEventKind::Falling => {
                    if let Some(a) = aos.take() {
                        let los = self.refine_crossing(event.t_lo, event.t_hi);
                        if let Some(pass) = self.finish_pass(a, los) {
                            result.push(pass);
                        }
                    }
                }
                SweepEventKind::Candidate => {
                    // A pass shorter than one lattice interval may hide
                    // between two below-mask samples; probe the
                    // elevation peak before committing to bisection.
                    if aos.is_none() {
                        let (t_peak, el_peak) = self.peak_probe(event.t_lo, event.t_hi);
                        if el_peak > self.min_elevation_rad {
                            let a = self.refine_crossing(event.t_lo, t_peak);
                            let los = self.refine_crossing(t_peak, event.t_hi);
                            if let Some(pass) = self.finish_pass(a, los) {
                                result.push(pass);
                            }
                        }
                    }
                }
            }
        }
        // Pass still in progress at `end`.
        if let Some(a) = aos {
            if let Some(pass) = self.finish_pass(a, end) {
                result.push(pass);
            }
        }
        result
    }

    /// Golden-section probe for the elevation peak inside `[lo, hi]`
    /// (one lattice interval): the elevation profile of a LEO pass is
    /// unimodal, and a ≤ 180 s below-horizon window holds at most one
    /// approach — the same assumption [`Self::finish_pass`] rests on.
    fn peak_probe(&self, lo: JulianDate, hi: JulianDate) -> (JulianDate, f64) {
        const INV_PHI: f64 = 0.618_033_988_749_894_9; // (√5 − 1) / 2
        let mut lo = lo;
        let mut hi = hi;
        let mut m1 = JulianDate(hi.0 - INV_PHI * (hi.0 - lo.0));
        let mut m2 = JulianDate(lo.0 + INV_PHI * (hi.0 - lo.0));
        let mut e1 = self.elevation_at(m1);
        let mut e2 = self.elevation_at(m2);
        for _ in 0..80 {
            if hi.seconds_since(lo) < 0.05 {
                break;
            }
            if e1 < e2 {
                lo = m1;
                m1 = m2;
                e1 = e2;
                m2 = JulianDate(lo.0 + INV_PHI * (hi.0 - lo.0));
                e2 = self.elevation_at(m2);
            } else {
                hi = m2;
                m2 = m1;
                e2 = e1;
                m1 = JulianDate(hi.0 - INV_PHI * (hi.0 - lo.0));
                e1 = self.elevation_at(m1);
            }
        }
        let t_peak = JulianDate(0.5 * (lo.0 + hi.0));
        (t_peak, self.elevation_at(t_peak))
    }

    /// Coarse-scan step given the current elevation (see [`Self::passes`]).
    ///
    /// Safety argument: a ground observer never sees a LEO satellite's
    /// elevation rise faster than ~0.25°/s (the rate peaks near the
    /// horizon at v/d ≈ 7.6 km/s / 2 300 km). Climbing a deficit of `E`
    /// degrees therefore takes at least `4E` seconds; stepping `2E`
    /// seconds can consume at most half the deficit, so the satellite is
    /// still below the mask at the next sample and no crossing is skipped.
    /// The step never drops below `coarse_step_s` and never exceeds the
    /// 600 s safety cap — even when a caller raises the public
    /// `coarse_step_s` above the cap (`f64::clamp` would panic on an
    /// inverted `min > max` range there).
    fn adaptive_step_s(&self, elevation_rad: f64) -> f64 {
        let deficit_deg = (self.min_elevation_rad - elevation_rad).to_degrees();
        (2.0 * deficit_deg).max(self.coarse_step_s).min(600.0)
    }

    /// Bisection: elevation crosses the mask somewhere in `(lo, hi)`.
    fn refine_crossing(&self, mut lo: JulianDate, mut hi: JulianDate) -> JulianDate {
        let mask = self.min_elevation_rad;
        let lo_above = self.elevation_at(lo) > mask;
        for _ in 0..40 {
            if hi.seconds_since(lo) < 0.01 {
                break;
            }
            let mid = JulianDate(0.5 * (lo.0 + hi.0));
            if (self.elevation_at(mid) > mask) == lo_above {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        JulianDate(0.5 * (lo.0 + hi.0))
    }

    /// Locate culmination within `[aos, los]` and assemble the pass.
    fn finish_pass(&self, aos: JulianDate, los: JulianDate) -> Option<Pass> {
        if los.seconds_since(aos) < 1.0 {
            return None; // Grazing contact below timing resolution.
        }
        // Golden-section search for the elevation maximum (the elevation
        // profile of a LEO pass is unimodal). Unlike the ternary search
        // this replaces, each iteration reuses one interior probe and
        // evaluates only one new point, and the interval shrinks by
        // 0.618 per evaluation instead of 0.667 per two — about a third
        // fewer elevation samples to the same 0.05 s bracket.
        const INV_PHI: f64 = 0.618_033_988_749_894_9; // (√5 − 1) / 2
        let mut lo = aos;
        let mut hi = los;
        let mut m1 = JulianDate(hi.0 - INV_PHI * (hi.0 - lo.0));
        let mut m2 = JulianDate(lo.0 + INV_PHI * (hi.0 - lo.0));
        let mut e1 = self.elevation_at(m1);
        let mut e2 = self.elevation_at(m2);
        for _ in 0..80 {
            if hi.seconds_since(lo) < 0.05 {
                break;
            }
            if e1 < e2 {
                lo = m1;
                m1 = m2;
                e1 = e2;
                m2 = JulianDate(lo.0 + INV_PHI * (hi.0 - lo.0));
                e2 = self.elevation_at(m2);
            } else {
                hi = m2;
                m2 = m1;
                e2 = e1;
                m1 = JulianDate(hi.0 - INV_PHI * (hi.0 - lo.0));
                e1 = self.elevation_at(m1);
            }
        }
        let tca = JulianDate(0.5 * (lo.0 + hi.0));
        let la = self.look_at(tca)?;
        satiot_obs::invariants::check_elevation_rad(
            "pass::finish_pass max elevation",
            la.elevation_rad,
        );
        satiot_obs::invariants::check_non_negative(
            "pass::finish_pass duration",
            los.seconds_since(aos),
        );
        PASSES_PREDICTED.inc();
        Some(Pass {
            aos,
            los,
            tca,
            max_elevation_rad: la.elevation_rad,
            tca_range_km: la.range_km,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgp4::{EARTH_RADIUS_KM, MU_KM3_S2};

    /// A circular polar-ish LEO satellite built from raw elements.
    fn leo_sgp4(alt_km: f64, incl_deg: f64) -> Sgp4 {
        let a = EARTH_RADIUS_KM + alt_km;
        let n = (MU_KM3_S2 / (a * a * a)).sqrt() * 60.0; // rad/min
        Sgp4::from_elements(
            n,
            0.001,
            incl_deg.to_radians(),
            1.0,
            0.0,
            0.0,
            1e-5,
            JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0),
        )
        .unwrap()
    }

    fn hk() -> Geodetic {
        Geodetic::from_degrees(22.3193, 114.1694, 0.05)
    }

    #[test]
    fn finds_passes_within_a_day() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 1.0);
        // A 550 km polar orbit passes over a mid-latitude site ~2–6×/day.
        assert!(
            (2..=8).contains(&passes.len()),
            "found {} passes",
            passes.len()
        );
        for pass in &passes {
            assert!(pass.los > pass.aos);
            assert!(pass.tca >= pass.aos && pass.tca <= pass.los);
            // LEO pass durations above a 0° mask: tens of seconds to ~15 min.
            assert!(pass.duration_min() < 16.0, "dur = {}", pass.duration_min());
            assert!(pass.max_elevation_rad > 0.0);
        }
        // Chronological, non-overlapping.
        for w in passes.windows(2) {
            assert!(w[1].aos >= w[0].los);
        }
    }

    #[test]
    fn elevation_at_mask_boundary_is_tight() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 5.0_f64.to_radians());
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 1.0);
        assert!(!passes.is_empty());
        for pass in &passes {
            let el_aos = p.elevation_at(pass.aos).to_degrees();
            let el_los = p.elevation_at(pass.los).to_degrees();
            assert!((el_aos - 5.0).abs() < 0.05, "AOS elevation {el_aos}");
            assert!((el_los - 5.0).abs() < 0.05, "LOS elevation {el_los}");
        }
    }

    #[test]
    fn higher_mask_gives_fewer_shorter_passes() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let p0 = PassPredictor::new(sgp4.clone(), hk(), 0.0);
        let p25 = PassPredictor::new(sgp4, hk(), 25.0_f64.to_radians());
        let total0: f64 = p0
            .passes(start, start + 2.0)
            .iter()
            .map(|p| p.duration_min())
            .sum();
        let total25: f64 = p25
            .passes(start, start + 2.0)
            .iter()
            .map(|p| p.duration_min())
            .sum();
        assert!(total25 < total0, "{total25} !< {total0}");
    }

    #[test]
    fn max_elevation_is_actually_maximum() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 1.0);
        for pass in passes {
            // Sample the window; nothing should beat max_elevation by more
            // than numerical slack.
            for k in 0..=20 {
                let t = JulianDate(pass.aos.0 + (pass.los.0 - pass.aos.0) * k as f64 / 20.0);
                assert!(p.elevation_at(t) <= pass.max_elevation_rad + 1e-6);
            }
        }
    }

    /// Pinned from `tests/prop_orbit.proptest-regressions` (seed
    /// `1ddc6ac2…`): a 0° mask at an equatorial site, where AOS/LOS
    /// refinement must still land within 0.5° of the mask for every
    /// interior pass.
    #[test]
    fn regression_zero_mask_aos_seed() {
        use crate::elements::Elements;
        let epoch = JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0);
        let e = Elements::circular(565.6677817861646, 45.0, epoch);
        let predictor = PassPredictor::new(
            e.to_sgp4().unwrap(),
            Geodetic::from_degrees(0.0, 24.753319049866068, 0.0),
            0.0,
        );
        let start = epoch;
        let end = start + 1.0;
        let passes = predictor.passes(start, end);
        assert!(!passes.is_empty());
        for p in &passes {
            assert!(p.aos <= p.tca && p.tca <= p.los);
            assert!(p.duration_min() < 20.0);
            assert!(p.max_elevation_rad.to_degrees() >= -0.2);
            if p.aos > start && p.los < end {
                let el_aos = predictor.elevation_at(p.aos).to_degrees();
                let el_los = predictor.elevation_at(p.los).to_degrees();
                assert!(el_aos.abs() < 0.5, "AOS elevation {el_aos}");
                assert!(el_los.abs() < 0.5, "LOS elevation {el_los}");
            }
        }
        for w in passes.windows(2) {
            assert!(w[1].aos >= w[0].los);
        }
    }

    /// A `coarse_step_s` above the 600 s adaptive cap used to panic in
    /// `adaptive_step_s` (`f64::clamp` with min > max); it must instead
    /// saturate at the cap and still find passes.
    #[test]
    fn coarse_step_above_cap_does_not_panic() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let mut p = PassPredictor::new(sgp4, hk(), 0.0);
        p.coarse_step_s = 900.0;
        assert!(p.adaptive_step_s(-0.5) <= 600.0);
        assert!(p.adaptive_step_s(0.5) <= 600.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        // Must not panic; a 600 s effective step can still skip short
        // passes, so only sanity-check what it does find.
        for pass in p.passes(start, start + 1.0) {
            assert!(pass.los > pass.aos);
        }
    }

    /// A NaN scan bound used to hang the coarse scan forever (`t >= end`
    /// never turns true); it must now degrade to an empty list on the
    /// infallible path and a typed error on the fallible one.
    #[test]
    fn non_finite_scan_bounds_are_rejected_not_hung() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4.clone(), hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(p.passes(JulianDate(bad), start + 1.0).is_empty());
            assert!(p.passes(start, JulianDate(bad)).is_empty());
            // matches!, not assert_eq: NaN payloads are never equal.
            assert!(matches!(
                p.try_passes(start, JulianDate(bad)),
                Err(OrbitError::NonFiniteScan { field: "end", .. })
            ));
        }
        let mut nan_mask = PassPredictor::new(sgp4, hk(), 0.0);
        nan_mask.min_elevation_rad = f64::NAN;
        assert!(nan_mask.passes(start, start + 1.0).is_empty());
        assert!(matches!(
            nan_mask.try_passes(start, start + 1.0),
            Err(OrbitError::NonFiniteScan { field: "mask", .. })
        ));
    }

    #[test]
    fn try_passes_agrees_with_passes_on_healthy_input() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let infallible = p.passes(start, start + 1.0);
        let fallible = p.try_passes(start, start + 1.0).expect("finite bounds");
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn empty_interval_yields_no_passes() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        assert!(p.passes(start, start).is_empty());
        assert!(p.passes(start + 1.0, start).is_empty());
    }

    #[test]
    fn equatorial_orbit_never_visible_from_high_latitude() {
        // A 0°-inclination orbit at 500 km stays within ±~21° of the
        // equator's horizon; London (51.5°N) never sees it above 0°.
        let sgp4 = leo_sgp4(500.0, 0.0);
        let london = Geodetic::from_degrees(51.5074, -0.1278, 0.01);
        let p = PassPredictor::new(sgp4, london, 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        assert!(p.passes(start, start + 2.0).is_empty());
    }

    #[test]
    fn normalized_position_endpoints() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 1.0);
        let pass = passes[0];
        assert_eq!(pass.normalized_position(pass.aos), 0.0);
        assert_eq!(pass.normalized_position(pass.los), 1.0);
        let mid = JulianDate(0.5 * (pass.aos.0 + pass.los.0));
        assert!((pass.normalized_position(mid) - 0.5).abs() < 1e-9);
        assert!(pass.contains(mid));
        assert!(!pass.contains(JulianDate(pass.los.0 + 1.0)));
    }

    /// The old two-probe ternary search, kept as the reference the
    /// golden-section replacement is regression-tested against.
    fn ternary_tca(p: &PassPredictor, aos: JulianDate, los: JulianDate) -> JulianDate {
        let mut lo = aos;
        let mut hi = los;
        for _ in 0..60 {
            if hi.seconds_since(lo) < 0.05 {
                break;
            }
            let m1 = JulianDate(lo.0 + (hi.0 - lo.0) / 3.0);
            let m2 = JulianDate(hi.0 - (hi.0 - lo.0) / 3.0);
            if p.elevation_at(m1) < p.elevation_at(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        JulianDate(0.5 * (lo.0 + hi.0))
    }

    /// Golden-section culmination must land where the old ternary search
    /// did (< 0.05 s — both brackets converge on the same unimodal
    /// maximum) while `max_elevation_is_actually_maximum` above keeps
    /// holding for the new search.
    #[test]
    fn golden_section_tca_matches_ternary_search() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 2.0);
        assert!(!passes.is_empty());
        for pass in &passes {
            let reference = ternary_tca(&p, pass.aos, pass.los);
            let drift_s = pass.tca.seconds_since(reference).abs();
            assert!(drift_s < 0.05, "TCA moved {drift_s} s vs ternary search");
            // The reported maximum still beats the reference probe (to
            // the curvature slack of the two ≤ 0.05 s brackets).
            assert!(p.elevation_at(reference) <= pass.max_elevation_rad + 1e-6);
        }
    }

    /// A grid-backed predictor must reproduce direct prediction within
    /// the documented ephemeris contract: same pass count, boundaries
    /// within the refinement tolerance, elevation within 0.01°.
    #[test]
    fn grid_backend_matches_direct_within_contract() {
        use crate::ephemeris::EphemerisGrid;
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let end = start + 1.0;
        let direct = PassPredictor::new(sgp4.clone(), hk(), 5.0_f64.to_radians());
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
        let gridded = PassPredictor::new(sgp4, hk(), 5.0_f64.to_radians()).with_ephemeris(grid);
        let a = direct.passes(start, end);
        let b = gridded.passes(start, end);
        assert_eq!(a.len(), b.len(), "pass counts diverged");
        for (x, y) in a.iter().zip(&b) {
            assert!(y.aos.seconds_since(x.aos).abs() < 0.05, "AOS drifted");
            assert!(y.los.seconds_since(x.los).abs() < 0.05, "LOS drifted");
            let dmax = (y.max_elevation_rad - x.max_elevation_rad)
                .to_degrees()
                .abs();
            assert!(dmax < 0.01, "max elevation drifted {dmax}°");
        }
        // Pointwise elevations agree within the contract too.
        for k in 0..100 {
            let t = start.plus_seconds(864.0 * k as f64);
            let d = (gridded.elevation_at(t) - direct.elevation_at(t))
                .to_degrees()
                .abs();
            assert!(d < 0.01, "elevation drifted {d}° at sample {k}");
        }
    }

    /// Queries outside the attached grid fall back to direct SGP4 —
    /// attaching a grid never changes which instants are answerable.
    #[test]
    fn grid_backend_falls_back_outside_the_window() {
        use crate::ephemeris::EphemerisGrid;
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, start + 0.5));
        let direct = PassPredictor::new(sgp4.clone(), hk(), 0.0);
        let gridded = PassPredictor::new(sgp4, hk(), 0.0).with_ephemeris(grid);
        let far = start + 10.0; // Ten days past the grid.
        let a = direct.look_at(far).expect("direct");
        let b = gridded.look_at(far).expect("fallback");
        assert_eq!(a, b, "fallback must be bit-identical to direct");
    }

    /// The margin sweep must find the same passes as the legacy scan
    /// over the same grid, to refinement tolerance: equal counts,
    /// boundaries within the bisection bracket, elevations within the
    /// grid contract.
    #[test]
    fn sweep_scan_matches_legacy_scan_within_tolerance() {
        use crate::ephemeris::EphemerisGrid;
        use crate::visibility::VisibilityMode;
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let end = start + 2.0;
        for (alt, incl, mask_deg) in [(550.0, 97.6, 0.0), (550.0, 97.6, 10.0), (700.0, 55.0, 5.0)] {
            let sgp4 = leo_sgp4(alt, incl);
            let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
            let mask = (mask_deg as f64).to_radians();
            let legacy = PassPredictor::new(sgp4.clone(), hk(), mask)
                .with_ephemeris(Arc::clone(&grid))
                .with_visibility(VisibilityMode::Off);
            let swept = PassPredictor::new(sgp4, hk(), mask)
                .with_ephemeris(grid)
                .with_visibility(VisibilityMode::On);
            let a = legacy.passes(start, end);
            let b = swept.passes(start, end);
            assert_eq!(a.len(), b.len(), "pass counts diverged at mask {mask_deg}");
            assert!(!a.is_empty(), "test geometry has no passes");
            for (x, y) in a.iter().zip(&b) {
                assert!(y.aos.seconds_since(x.aos).abs() < 0.05, "AOS drifted");
                assert!(y.los.seconds_since(x.los).abs() < 0.05, "LOS drifted");
                let dmax = (y.max_elevation_rad - x.max_elevation_rad)
                    .to_degrees()
                    .abs();
                assert!(dmax < 0.01, "max elevation drifted {dmax}°");
            }
        }
    }

    /// Scalar and chunked sweeps must agree to the bit — same margin
    /// expression, same events, same bisection brackets, same passes.
    #[test]
    fn scalar_and_vector_sweeps_yield_bit_identical_passes() {
        use crate::ephemeris::EphemerisGrid;
        use crate::visibility::VisibilityMode;
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let end = start + 2.0;
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
        let scalar = PassPredictor::new(sgp4.clone(), hk(), 5.0_f64.to_radians())
            .with_ephemeris(Arc::clone(&grid))
            .with_visibility(VisibilityMode::Scalar);
        let vector = PassPredictor::new(sgp4, hk(), 5.0_f64.to_radians())
            .with_ephemeris(grid)
            .with_visibility(VisibilityMode::On);
        let a = scalar.passes(start, end);
        let b = vector.passes(start, end);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.aos.0.to_bits(), y.aos.0.to_bits());
            assert_eq!(x.los.0.to_bits(), y.los.0.to_bits());
            assert_eq!(x.tca.0.to_bits(), y.tca.0.to_bits());
            assert_eq!(x.max_elevation_rad.to_bits(), y.max_elevation_rad.to_bits());
            assert_eq!(x.tca_range_km.to_bits(), y.tca_range_km.to_bits());
        }
    }

    /// A mask raised to just under a pass's culmination shrinks the
    /// contact to less than one grid step; the candidate windows must
    /// still surface it instead of stepping over it.
    #[test]
    fn sweep_finds_passes_shorter_than_one_grid_step() {
        use crate::ephemeris::EphemerisGrid;
        use crate::visibility::VisibilityMode;
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let end = start + 1.0;
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
        // Find the day's best culmination with an open mask…
        let open = PassPredictor::new(sgp4.clone(), hk(), 0.0)
            .with_ephemeris(Arc::clone(&grid))
            .with_visibility(VisibilityMode::On);
        let best = open
            .passes(start, end)
            .iter()
            .map(|p| p.max_elevation_rad)
            .fold(f64::MIN, f64::max);
        // …then mask 0.15° below it: the surviving contact lasts well
        // under the 60 s grid step. (The legacy adaptive scan's
        // no-skip guarantee only covers masks ≤ 10°, and it can
        // genuinely step over this contact — the sweep's candidate
        // windows must not.)
        let mask = best - 0.15_f64.to_radians();
        let swept = PassPredictor::new(sgp4, hk(), mask)
            .with_ephemeris(grid)
            .with_visibility(VisibilityMode::On);
        let passes = swept.passes(start, end);
        assert!(!passes.is_empty(), "short pass missed by the sweep");
        for pass in &passes {
            assert!(pass.duration_s() < 60.0, "contact should be sub-step");
            // The found window is genuine: its culmination clears the
            // mask, its boundaries sit on it.
            assert!(pass.max_elevation_rad > mask);
            let el_aos = swept.elevation_at(pass.aos);
            assert!((el_aos - mask).abs().to_degrees() < 0.05, "AOS off mask");
        }
    }

    /// Without a grid (or with a mask outside (−π/2, π/2)) the sweep
    /// modes must fall back to the legacy scan, bit-identically.
    #[test]
    fn sweep_without_grid_falls_back_to_legacy_scan() {
        use crate::ephemeris::EphemerisGrid;
        use crate::visibility::VisibilityMode;
        let sgp4 = leo_sgp4(550.0, 97.6);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let end = start + 1.0;
        let legacy = PassPredictor::new(sgp4.clone(), hk(), 0.0);
        let gridless =
            PassPredictor::new(sgp4.clone(), hk(), 0.0).with_visibility(VisibilityMode::On);
        let a = legacy.passes(start, end);
        let b = gridless.passes(start, end);
        assert_eq!(a, b, "no grid ⇒ sweep must defer to the legacy scan");
        // A grid that covers only half the window also defers — to the
        // legacy scan *over that same grid* (covered instants still
        // interpolate; the sweep itself refuses the partial window).
        let half = Arc::new(EphemerisGrid::build(&sgp4, start, start + 0.5));
        let partial_off = PassPredictor::new(sgp4.clone(), hk(), 0.0)
            .with_ephemeris(Arc::clone(&half))
            .with_visibility(VisibilityMode::Off);
        let partial_on = PassPredictor::new(sgp4.clone(), hk(), 0.0)
            .with_ephemeris(half)
            .with_visibility(VisibilityMode::On);
        assert_eq!(
            partial_off.passes(start, end),
            partial_on.passes(start, end)
        );
        // An always-above mask below −π/2 defers too (and stays one
        // whole-window pass under both paths).
        let wide_open = PassPredictor::new(sgp4, hk(), -2.0).with_visibility(VisibilityMode::On);
        let passes = wide_open.passes(start, end);
        assert_eq!(passes.len(), 1);
        assert!((passes[0].aos.0 - start.0).abs() < 1e-12);
    }

    /// A moving-observer scan whose legs all sit at one position must
    /// reproduce the fixed-observer scan over the union window (to
    /// refinement precision), except for contacts split at leg
    /// boundaries.
    #[test]
    fn legs_at_a_fixed_position_match_the_fixed_scan() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let fixed = p.passes(start, start + 1.0);
        // Split at a quiet instant — the between-pass gap midpoint
        // closest to mid-window, so no contact straddles the boundary.
        let gap = fixed
            .windows(2)
            .map(|w| JulianDate(0.5 * (w[0].los.0 + w[1].aos.0)))
            .min_by(|a, b| {
                let mid = start.0 + 0.5;
                (a.0 - mid).abs().total_cmp(&(b.0 - mid).abs())
            })
            .expect("a between-pass gap");
        let legs = [
            ObserverLeg {
                start,
                end: gap,
                position: hk(),
            },
            ObserverLeg {
                start: gap,
                end: start + 1.0,
                position: hk(),
            },
        ];
        let moving = p.passes_over_legs(&legs).expect("ordered legs");
        assert_eq!(fixed.len(), moving.len());
        // The coarse sampling grid is anchored at each leg's start, so
        // each boundary may land anywhere inside its own bisection
        // bracket — compare at the scan's stated ~10 ms resolution
        // (5e-7 d ≈ 43 ms).
        for (a, b) in fixed.iter().zip(&moving) {
            assert!((a.aos.0 - b.aos.0).abs() < 5e-7);
            assert!((a.los.0 - b.los.0).abs() < 5e-7);
            assert!((a.tca.0 - b.tca.0).abs() < 5e-7);
        }
    }

    /// A leg far from the first position sees different passes, and
    /// out-of-order legs are rejected with a typed error.
    #[test]
    fn legs_change_geometry_and_must_be_ordered() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let sydney = Geodetic::from_degrees(-33.87, 151.21, 0.05);
        let legs = [
            ObserverLeg {
                start,
                end: start + 0.5,
                position: hk(),
            },
            ObserverLeg {
                start: start + 0.5,
                end: start + 1.0,
                position: sydney,
            },
        ];
        let moving = p.passes_over_legs(&legs).expect("ordered legs");
        let fixed = p.passes(start, start + 1.0);
        assert_ne!(moving, fixed, "relocation must change the pass list");
        // Chronological across the boundary.
        for w in moving.windows(2) {
            assert!(w[1].aos >= w[0].los);
        }
        let swapped = [legs[1], legs[0]];
        assert!(matches!(
            p.passes_over_legs(&swapped),
            Err(OrbitError::UnorderedLegs { index: 1 })
        ));
    }

    #[test]
    fn pass_in_progress_at_start_is_reported() {
        let sgp4 = leo_sgp4(550.0, 97.6);
        let p = PassPredictor::new(sgp4, hk(), 0.0);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let passes = p.passes(start, start + 1.0);
        let pass = passes[0];
        // Restart the search from the middle of the first pass.
        let mid = JulianDate(0.5 * (pass.aos.0 + pass.los.0));
        let from_mid = p.passes(mid, start + 1.0);
        assert_eq!(from_mid.len(), passes.len());
        assert!((from_mid[0].aos.0 - mid.0).abs() < 1e-9);
        assert!((from_mid[0].los.0 - pass.los.0).abs() < 1.0 / 86_400.0);
    }
}
