//! Two-Line Element (TLE) parsing, validation, and formatting.
//!
//! The parser is column-oriented per the NORAD convention and validates the
//! modulo-10 checksum of both lines. The formatter emits lines the parser
//! accepts byte-for-byte, which lets `satiot-scenarios` generate synthetic
//! catalogs that round-trip through the same code path as real data.

use crate::error::OrbitError;
use crate::time::JulianDate;

/// Radians per degree.
const DEG2RAD: f64 = core::f64::consts::PI / 180.0;
/// 2π.
const TAU: f64 = core::f64::consts::TAU;

/// A parsed Two-Line Element set.
///
/// Angles are stored in **radians** and the mean motion in **radians per
/// minute** (the units SGP4 consumes), with the raw TLE-unit values
/// recoverable through accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct Tle {
    /// Optional satellite name (line 0 of a 3LE).
    pub name: Option<String>,
    /// NORAD catalog number.
    pub norad_id: u32,
    /// Classification character (`U`, `C`, or `S`).
    pub classification: char,
    /// International designator (launch year/number/piece), unparsed.
    pub intl_designator: String,
    /// Epoch as a Julian date (UTC).
    pub epoch: JulianDate,
    /// Two-digit epoch year as it appeared in the TLE.
    pub epoch_year: u32,
    /// Fractional day-of-year as it appeared in the TLE.
    pub epoch_day: f64,
    /// First derivative of mean motion / 2, rev/day² (ballistic term).
    pub ndot_over_2: f64,
    /// Second derivative of mean motion / 6, rev/day³.
    pub nddot_over_6: f64,
    /// B* drag term, 1/earth-radii.
    pub bstar: f64,
    /// Element set number.
    pub element_number: u32,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node, radians.
    pub raan_rad: f64,
    /// Eccentricity (dimensionless, < 1).
    pub eccentricity: f64,
    /// Argument of perigee, radians.
    pub arg_perigee_rad: f64,
    /// Mean anomaly, radians.
    pub mean_anomaly_rad: f64,
    /// Mean motion, radians per minute (Kozai convention, as published).
    pub mean_motion_rad_min: f64,
    /// Revolution number at epoch.
    pub rev_number: u32,
}

impl Tle {
    /// Parse a two-line element set (no name line).
    pub fn parse_lines(line1: &str, line2: &str) -> Result<Tle, OrbitError> {
        Self::parse(None, line1, line2)
    }

    /// Parse a three-line element set (name line + two element lines).
    pub fn parse_3le(name: &str, line1: &str, line2: &str) -> Result<Tle, OrbitError> {
        Self::parse(Some(name.trim().to_string()), line1, line2)
    }

    fn parse(name: Option<String>, line1: &str, line2: &str) -> Result<Tle, OrbitError> {
        let l1 = pad_line(line1);
        let l2 = pad_line(line2);

        verify_line(&l1, 1, b'1')?;
        verify_line(&l2, 2, b'2')?;

        let norad1 = parse_u32(field(&l1, 2, 7), "catalog number", 1)?;
        let norad2 = parse_u32(field(&l2, 2, 7), "catalog number", 2)?;
        if norad1 != norad2 {
            return Err(OrbitError::TleCatalogMismatch);
        }

        let classification = l1.as_bytes()[7] as char;
        let intl_designator = field(&l1, 9, 17).trim().to_string();
        let epoch_year = parse_u32(field(&l1, 18, 20), "epoch year", 1)?;
        let epoch_day = parse_f64(field(&l1, 20, 32), "epoch day", 1)?;
        let ndot_over_2 = parse_f64(field(&l1, 33, 43), "ndot", 1)?;
        let nddot_over_6 = parse_exp_field(field(&l1, 44, 52), "nddot", 1)?;
        let bstar = parse_exp_field(field(&l1, 53, 61), "bstar", 1)?;
        let element_number = parse_u32_or_zero(field(&l1, 64, 68), "element number", 1)?;

        let inclination_deg = parse_f64(field(&l2, 8, 16), "inclination", 2)?;
        let raan_deg = parse_f64(field(&l2, 17, 25), "raan", 2)?;
        let ecc_str = field(&l2, 26, 33).trim().to_string();
        let eccentricity = parse_f64(&format!("0.{ecc_str}"), "eccentricity", 2)?;
        let argp_deg = parse_f64(field(&l2, 34, 42), "arg perigee", 2)?;
        let ma_deg = parse_f64(field(&l2, 43, 51), "mean anomaly", 2)?;
        let mm_rev_day = parse_f64(field(&l2, 52, 63), "mean motion", 2)?;
        let rev_number = parse_u32_or_zero(field(&l2, 63, 68), "rev number", 2)?;

        if !(0.0..1.0).contains(&eccentricity) {
            return Err(OrbitError::TleFormat {
                field: "eccentricity",
                line: 2,
            });
        }
        if mm_rev_day <= 0.0 {
            return Err(OrbitError::TleFormat {
                field: "mean motion",
                line: 2,
            });
        }

        Ok(Tle {
            name,
            norad_id: norad1,
            classification,
            intl_designator,
            epoch: JulianDate::from_tle_epoch(epoch_year, epoch_day),
            epoch_year,
            epoch_day,
            ndot_over_2,
            nddot_over_6,
            bstar,
            element_number,
            inclination_rad: inclination_deg * DEG2RAD,
            raan_rad: raan_deg * DEG2RAD,
            eccentricity,
            arg_perigee_rad: argp_deg * DEG2RAD,
            mean_anomaly_rad: ma_deg * DEG2RAD,
            mean_motion_rad_min: mm_rev_day * TAU / 1_440.0,
            rev_number,
        })
    }

    /// Mean motion in revolutions per day (as published in line 2).
    pub fn mean_motion_rev_day(&self) -> f64 {
        self.mean_motion_rad_min * 1_440.0 / TAU
    }

    /// Orbital period implied by the published mean motion, in minutes.
    pub fn period_min(&self) -> f64 {
        TAU / self.mean_motion_rad_min
    }

    /// Render this element set back into two checksummed 69-column lines.
    pub fn format_lines(&self) -> (String, String) {
        let mut l1 = format!(
            "1 {:05}{} {:<8} {:02}{:012.8} {} {} {} 0 {:4}",
            self.norad_id % 100_000,
            self.classification,
            truncate(&self.intl_designator, 8),
            self.epoch_year % 100,
            self.epoch_day,
            format_ndot(self.ndot_over_2),
            format_exp(self.nddot_over_6),
            format_exp(self.bstar),
            self.element_number % 10_000,
        );
        let mut l2 = format!(
            "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}{:5}",
            self.norad_id % 100_000,
            self.inclination_rad / DEG2RAD,
            wrap_deg(self.raan_rad / DEG2RAD),
            format_ecc(self.eccentricity),
            wrap_deg(self.arg_perigee_rad / DEG2RAD),
            wrap_deg(self.mean_anomaly_rad / DEG2RAD),
            self.mean_motion_rev_day(),
            self.rev_number % 100_000,
        );
        l1.truncate(68);
        l2.truncate(68);
        l1.push(char::from(b'0' + checksum(&l1)));
        l2.push(char::from(b'0' + checksum(&l2)));
        (l1, l2)
    }
}

/// Pad/truncate a line to exactly 69 columns so column addressing is safe.
fn pad_line(line: &str) -> String {
    let mut s: String = line.chars().filter(|c| *c != '\n' && *c != '\r').collect();
    while s.len() < 69 {
        s.push(' ');
    }
    s.truncate(69);
    s
}

/// Slice a 0-based half-open column range out of a padded line.
fn field(line: &str, start: usize, end: usize) -> &str {
    &line[start..end]
}

fn verify_line(line: &str, line_no: u8, expected_first: u8) -> Result<(), OrbitError> {
    if line.as_bytes()[0] != expected_first {
        return Err(OrbitError::TleFormat {
            field: "line number",
            line: line_no,
        });
    }
    // Only enforce the checksum when the column carries a digit; synthetic
    // or hand-edited TLEs in the wild sometimes leave it blank.
    let stated = line.as_bytes()[68];
    if stated.is_ascii_digit() {
        let computed = checksum(&line[..68]);
        if stated - b'0' != computed {
            return Err(OrbitError::TleChecksum {
                line: line_no,
                computed,
                stated: stated - b'0',
            });
        }
    }
    Ok(())
}

/// NORAD modulo-10 checksum: digits count as themselves, `-` counts as 1.
pub fn checksum(body: &str) -> u8 {
    let mut sum: u32 = 0;
    for b in body.bytes() {
        if b.is_ascii_digit() {
            sum += (b - b'0') as u32;
        } else if b == b'-' {
            sum += 1;
        }
    }
    (sum % 10) as u8
}

fn parse_u32(s: &str, fieldname: &'static str, line: u8) -> Result<u32, OrbitError> {
    s.trim().parse::<u32>().map_err(|_| OrbitError::TleFormat {
        field: fieldname,
        line,
    })
}

/// Some fields (element number, rev number) may legitimately be blank.
fn parse_u32_or_zero(s: &str, fieldname: &'static str, line: u8) -> Result<u32, OrbitError> {
    let t = s.trim();
    if t.is_empty() {
        Ok(0)
    } else {
        parse_u32(t, fieldname, line)
    }
}

fn parse_f64(s: &str, fieldname: &'static str, line: u8) -> Result<f64, OrbitError> {
    let t = s.trim();
    if t.is_empty() {
        return Ok(0.0);
    }
    // TLEs may write "+.00012" or ".00012".
    let t = t.strip_prefix('+').unwrap_or(t);
    t.parse::<f64>().map_err(|_| OrbitError::TleFormat {
        field: fieldname,
        line,
    })
}

/// Parse the TLE "assumed decimal with exponent" format, e.g. ` 66816-4`
/// meaning `0.66816e-4`, `-11606-4` meaning `-0.11606e-4`, and all-zeros
/// variants like ` 00000-0` or ` 00000+0`.
fn parse_exp_field(s: &str, fieldname: &'static str, line: u8) -> Result<f64, OrbitError> {
    let t = s.trim();
    if t.is_empty() {
        return Ok(0.0);
    }
    let (sign, rest) = match t.as_bytes()[0] {
        b'-' => (-1.0, &t[1..]),
        b'+' => (1.0, &t[1..]),
        _ => (1.0, t),
    };
    // Split at the exponent sign, which is the last '+' or '-'.
    let exp_pos = rest.rfind(['+', '-']);
    let (mantissa_str, exp_str) = match exp_pos {
        Some(p) if p > 0 => (&rest[..p], &rest[p..]),
        _ => (rest, "+0"),
    };
    let mantissa_digits = mantissa_str.trim();
    let mantissa =
        format!("0.{mantissa_digits}")
            .parse::<f64>()
            .map_err(|_| OrbitError::TleFormat {
                field: fieldname,
                line,
            })?;
    let exp = exp_str.parse::<i32>().map_err(|_| OrbitError::TleFormat {
        field: fieldname,
        line,
    })?;
    Ok(sign * mantissa * 10f64.powi(exp))
}

/// Format in the TLE exponent convention, 8 columns (` 66816-4`).
fn format_exp(v: f64) -> String {
    if v == 0.0 {
        return " 00000+0".to_string();
    }
    let sign = if v < 0.0 { '-' } else { ' ' };
    let mut mag = v.abs();
    // Normalise mantissa into [0.1, 1).
    let mut exp = 0i32;
    while mag >= 1.0 {
        mag /= 10.0;
        exp += 1;
    }
    while mag < 0.1 {
        mag *= 10.0;
        exp -= 1;
    }
    let mantissa = (mag * 100_000.0).round() as i64;
    // Rounding can push the mantissa to 100000 → renormalise.
    let (mantissa, exp) = if mantissa >= 100_000 {
        (10_000, exp + 1)
    } else {
        (mantissa, exp)
    };
    let exp_sign = if exp < 0 { '-' } else { '+' };
    format!("{sign}{mantissa:05}{exp_sign}{}", exp.abs())
}

/// Format ndot/2 in its 10-column fixed format (`.00073094` style).
fn format_ndot(v: f64) -> String {
    let sign = if v < 0.0 { '-' } else { ' ' };
    let frac = format!("{:.8}", v.abs());
    // Strip the leading "0" of "0.00073094".
    format!("{sign}{}", &frac[1..])
}

/// Format eccentricity as 7 implied-decimal digits.
fn format_ecc(e: f64) -> String {
    format!("{:07}", (e * 1e7).round() as u64 % 10_000_000)
}

fn wrap_deg(d: f64) -> f64 {
    let mut w = d % 360.0;
    if w < 0.0 {
        w += 360.0;
    }
    w
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic Spacetrack Report #3 SGP4 test element set.
    const L1: &str = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87";
    const L2: &str = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058";

    #[test]
    fn parses_classic_test_tle() {
        let t = Tle::parse_lines(L1, L2).unwrap();
        assert_eq!(t.norad_id, 88888);
        assert_eq!(t.epoch_year, 80);
        assert!((t.epoch_day - 275.987_084_65).abs() < 1e-9);
        assert!((t.ndot_over_2 - 0.000_730_94).abs() < 1e-12);
        assert!((t.nddot_over_6 - 0.138_44e-3).abs() < 1e-12);
        assert!((t.bstar - 0.668_16e-4).abs() < 1e-12);
        assert!((t.inclination_rad.to_degrees() - 72.8435).abs() < 1e-9);
        assert!((t.raan_rad.to_degrees() - 115.9689).abs() < 1e-9);
        assert!((t.eccentricity - 0.008_673_1).abs() < 1e-12);
        assert!((t.arg_perigee_rad.to_degrees() - 52.6988).abs() < 1e-9);
        assert!((t.mean_anomaly_rad.to_degrees() - 110.5714).abs() < 1e-9);
        assert!((t.mean_motion_rev_day() - 16.058_245_18).abs() < 1e-8);
        assert!((t.period_min() - 1_440.0 / 16.058_245_18).abs() < 1e-9);
    }

    #[test]
    fn checksum_counts_minus_as_one() {
        assert_eq!(checksum("1 2-"), 1 + 2 + 1);
        assert_eq!(checksum(&L1[..68]), 7);
        assert_eq!(checksum(&L2[..68]), 8);
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let bad = format!("{}9", &L1[..68]);
        let err = Tle::parse_lines(&bad, L2).unwrap_err();
        assert!(matches!(err, OrbitError::TleChecksum { line: 1, .. }));
    }

    #[test]
    fn rejects_catalog_mismatch() {
        let l2_other = L2.replace("88888", "88889");
        // Recompute the checksum for the edited line.
        let body = &l2_other[..68];
        let fixed = format!("{body}{}", checksum(body));
        let err = Tle::parse_lines(L1, &fixed).unwrap_err();
        assert_eq!(err, OrbitError::TleCatalogMismatch);
    }

    #[test]
    fn rejects_wrong_line_marker() {
        let err = Tle::parse_lines(L2, L1).unwrap_err();
        assert!(matches!(
            err,
            OrbitError::TleFormat {
                field: "line number",
                ..
            }
        ));
    }

    #[test]
    fn exp_field_variants() {
        assert!((parse_exp_field(" 66816-4", "x", 1).unwrap() - 0.668_16e-4).abs() < 1e-15);
        assert!((parse_exp_field("-11606-4", "x", 1).unwrap() + 0.116_06e-4).abs() < 1e-15);
        assert_eq!(parse_exp_field(" 00000-0", "x", 1).unwrap(), 0.0);
        assert_eq!(parse_exp_field(" 00000+0", "x", 1).unwrap(), 0.0);
        assert_eq!(parse_exp_field("", "x", 1).unwrap(), 0.0);
        assert!((parse_exp_field(" 12345+2", "x", 1).unwrap() - 12.345).abs() < 1e-12);
    }

    #[test]
    fn format_exp_round_trips() {
        for v in [0.668_16e-4, -0.116_06e-4, 0.0, 0.138_44e-3, 0.5, -0.9e-6] {
            let s = format_exp(v);
            assert_eq!(s.len(), 8, "{s:?}");
            let back = parse_exp_field(&s, "x", 1).unwrap();
            let tol = v.abs().max(1e-9) * 1e-4;
            assert!((back - v).abs() <= tol, "{v} → {s:?} → {back}");
        }
    }

    #[test]
    fn format_lines_round_trip() {
        let t = Tle::parse_lines(L1, L2).unwrap();
        let (f1, f2) = t.format_lines();
        assert_eq!(f1.len(), 69);
        assert_eq!(f2.len(), 69);
        let t2 = Tle::parse_lines(&f1, &f2).unwrap();
        assert_eq!(t2.norad_id, t.norad_id);
        assert!((t2.epoch_day - t.epoch_day).abs() < 1e-8);
        assert!((t2.inclination_rad - t.inclination_rad).abs() < 1e-6);
        assert!((t2.raan_rad - t.raan_rad).abs() < 1e-6);
        assert!((t2.eccentricity - t.eccentricity).abs() < 1e-7);
        assert!((t2.mean_motion_rad_min - t.mean_motion_rad_min).abs() < 1e-9);
        assert!((t2.bstar - t.bstar).abs() < 1e-9);
    }

    #[test]
    fn parse_3le_keeps_name() {
        let t = Tle::parse_3le("TEST SAT 1  ", L1, L2).unwrap();
        assert_eq!(t.name.as_deref(), Some("TEST SAT 1"));
    }

    #[test]
    fn blank_checksum_column_is_tolerated() {
        let l1 = format!("{} ", &L1[..68]);
        let l2 = format!("{} ", &L2[..68]);
        assert!(Tle::parse_lines(&l1, &l2).is_ok());
    }

    #[test]
    fn rejects_nonsense_numbers() {
        let bad = L2.replace("16.05824518", "16.0582451X");
        let body = &bad[..68];
        let fixed = format!("{body}{}", checksum(body));
        let err = Tle::parse_lines(L1, &fixed).unwrap_err();
        assert!(matches!(
            err,
            OrbitError::TleFormat {
                field: "mean motion",
                ..
            }
        ));
    }
}

/// Parse a catalog file containing any mix of 2-line and 3-line element
/// sets (the format CelesTrak bulk files use). Blank lines are skipped;
/// each malformed set is reported with its starting line number.
pub fn parse_catalog(text: &str) -> (Vec<Tle>, Vec<(usize, OrbitError)>) {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim_end()))
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut tles = Vec::new();
    let mut errors = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let (line_no, l) = lines[i];
        if l.starts_with('1') && i + 1 < lines.len() && lines[i + 1].1.starts_with('2') {
            // 2LE.
            match Tle::parse_lines(l, lines[i + 1].1) {
                Ok(t) => tles.push(t),
                Err(e) => errors.push((line_no, e)),
            }
            i += 2;
        } else if i + 2 < lines.len()
            && lines[i + 1].1.starts_with('1')
            && lines[i + 2].1.starts_with('2')
        {
            // 3LE: this line is the name.
            match Tle::parse_3le(l, lines[i + 1].1, lines[i + 2].1) {
                Ok(t) => tles.push(t),
                Err(e) => errors.push((line_no, e)),
            }
            i += 3;
        } else {
            errors.push((
                line_no,
                OrbitError::TleFormat {
                    field: "line number",
                    line: 1,
                },
            ));
            i += 1;
        }
    }
    (tles, errors)
}

/// Render a catalog as 3LE text (name line + two element lines per set).
pub fn format_catalog(tles: &[Tle]) -> String {
    let mut out = String::new();
    for t in tles {
        if let Some(name) = &t.name {
            out.push_str(name);
            out.push('\n');
        }
        let (l1, l2) = t.format_lines();
        out.push_str(&l1);
        out.push('\n');
        out.push_str(&l2);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod catalog_tests {
    use super::*;

    const L1: &str = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87";
    const L2: &str = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058";

    #[test]
    fn mixed_2le_and_3le_catalog() {
        let text = format!("{L1}\n{L2}\n\nTEST SAT A\n{L1}\n{L2}\n");
        let (tles, errors) = parse_catalog(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(tles.len(), 2);
        assert_eq!(tles[0].name, None);
        assert_eq!(tles[1].name.as_deref(), Some("TEST SAT A"));
    }

    #[test]
    fn catalog_round_trips_through_text() {
        let (tles, _) = parse_catalog(&format!("SAT X\n{L1}\n{L2}\n"));
        let text = format_catalog(&tles);
        let (back, errors) = parse_catalog(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name.as_deref(), Some("SAT X"));
        assert_eq!(back[0].norad_id, tles[0].norad_id);
        assert!((back[0].mean_motion_rad_min - tles[0].mean_motion_rad_min).abs() < 1e-9);
    }

    #[test]
    fn bad_sets_are_reported_and_skipped() {
        let corrupted_l2 = L2.replace('8', "9"); // Breaks checksum/fields.
        let text = format!("{L1}\n{corrupted_l2}\nGOOD\n{L1}\n{L2}\n");
        let (tles, errors) = parse_catalog(&text);
        assert_eq!(tles.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 1); // Starting line of the bad set.
    }

    #[test]
    fn stray_lines_do_not_derail_the_parser() {
        // A free-standing line before a 2LE pair reads as a 3LE name —
        // names are arbitrary, so that is the correct interpretation…
        let text = format!("free standing\n{L1}\n{L2}\n");
        let (tles, errors) = parse_catalog(&text);
        assert_eq!(tles.len(), 1);
        assert_eq!(tles[0].name.as_deref(), Some("free standing"));
        assert!(errors.is_empty());
        // …while trailing garbage with no element lines is an error.
        let text = format!("{L1}\n{L2}\ndangling tail");
        let (tles, errors) = parse_catalog(&text);
        assert_eq!(tles.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 3);
    }

    #[test]
    fn empty_catalog() {
        let (tles, errors) = parse_catalog("\n\n");
        assert!(tles.is_empty());
        assert!(errors.is_empty());
    }
}
