//! Keplerian-element helpers and the synthetic-TLE builder.
//!
//! The reproduced study used real TLEs from the four constellations it
//! measured; this toolkit regenerates equivalent catalogs from the orbital
//! parameters the paper publishes (Table 3: altitude bands, inclinations,
//! satellite counts). This module provides the element → TLE conversion;
//! constellation layout lives in `satiot-scenarios`.

use crate::error::OrbitError;
use crate::sgp4::{Sgp4, EARTH_RADIUS_KM, MU_KM3_S2};
use crate::time::JulianDate;
use crate::tle::Tle;

use core::f64::consts::TAU;

/// Mean motion (rad/min) of a circular orbit with semi-major axis `a_km`.
pub fn mean_motion_rad_min(a_km: f64) -> f64 {
    (MU_KM3_S2 / (a_km * a_km * a_km)).sqrt() * 60.0
}

/// Semi-major axis (km) for a circular orbit at `alt_km` above the
/// (spherical, WGS-72) Earth.
pub fn sma_for_altitude_km(alt_km: f64) -> f64 {
    EARTH_RADIUS_KM + alt_km
}

/// Orbital period (minutes) of a circular orbit at `alt_km`.
pub fn period_min_for_altitude(alt_km: f64) -> f64 {
    TAU / mean_motion_rad_min(sma_for_altitude_km(alt_km))
}

/// Circular orbital speed (km/s) at `alt_km`.
pub fn circular_speed_km_s(alt_km: f64) -> f64 {
    (MU_KM3_S2 / sma_for_altitude_km(alt_km)).sqrt()
}

/// Earth-central half-angle λ (radians) of the visibility cone from a
/// satellite at `alt_km` above a spherical Earth, for a ground observer
/// with elevation mask `min_elevation_rad`:
///
/// `λ = acos(re/(re+h) · cos ε) − ε`
///
/// A ground point sees the satellite above the mask iff the central
/// angle between the subsatellite point and the observer is ≤ λ. The
/// spatial pre-cull stage ([`crate::cull`]) and the stochastic-geometry
/// availability closed form both build on this angle.
pub fn footprint_half_angle_rad(alt_km: f64, min_elevation_rad: f64) -> f64 {
    let re = EARTH_RADIUS_KM;
    ((re / (re + alt_km)) * min_elevation_rad.cos()).acos() - min_elevation_rad
}

/// Ground footprint area (km²) visible from `alt_km` above a minimum
/// elevation mask — the spherical-cap area the paper's Table 3 reports.
pub fn footprint_area_km2(alt_km: f64, min_elevation_rad: f64) -> f64 {
    let re = EARTH_RADIUS_KM;
    let lam = footprint_half_angle_rad(alt_km, min_elevation_rad);
    // Spherical cap area = 2πR²(1 − cos λ).
    TAU * re * re * (1.0 - lam.cos())
}

/// A set of mean Keplerian elements plus the bookkeeping needed to emit a
/// valid TLE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elements {
    /// Semi-major axis, km.
    pub sma_km: f64,
    /// Eccentricity ∈ [0, 1).
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// RAAN, radians.
    pub raan_rad: f64,
    /// Argument of perigee, radians.
    pub arg_perigee_rad: f64,
    /// Mean anomaly at epoch, radians.
    pub mean_anomaly_rad: f64,
    /// B* drag term, 1/earth-radii.
    pub bstar: f64,
    /// Element-set epoch.
    pub epoch: JulianDate,
}

impl Elements {
    /// A near-circular orbit at `alt_km` / `incl_deg`, everything else zero.
    pub fn circular(alt_km: f64, incl_deg: f64, epoch: JulianDate) -> Self {
        Elements {
            sma_km: sma_for_altitude_km(alt_km),
            eccentricity: 0.0005,
            inclination_rad: incl_deg.to_radians(),
            raan_rad: 0.0,
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: 0.0,
            bstar: 2.0e-5,
            epoch,
        }
    }

    /// Mean motion implied by the semi-major axis, rad/min.
    pub fn mean_motion_rad_min(&self) -> f64 {
        mean_motion_rad_min(self.sma_km)
    }

    /// Mean altitude above the spherical Earth, km.
    pub fn altitude_km(&self) -> f64 {
        self.sma_km - EARTH_RADIUS_KM
    }

    /// Validate and convert to a [`Tle`] carrying `norad_id` and `name`.
    pub fn to_tle(&self, norad_id: u32, name: &str) -> Result<Tle, OrbitError> {
        if self.sma_km <= EARTH_RADIUS_KM {
            return Err(OrbitError::InvalidElements { field: "sma_km" });
        }
        if !(0.0..1.0).contains(&self.eccentricity) {
            return Err(OrbitError::InvalidElements {
                field: "eccentricity",
            });
        }
        if !(0.0..=core::f64::consts::PI).contains(&self.inclination_rad) {
            return Err(OrbitError::InvalidElements {
                field: "inclination",
            });
        }
        let (year, _, _, _, _, _) = self.epoch.to_calendar();
        let jan1 = JulianDate::from_calendar(year, 1, 1, 0, 0, 0.0);
        let epoch_day = self.epoch.days_since(jan1) + 1.0;
        Ok(Tle {
            name: Some(name.to_string()),
            norad_id,
            classification: 'U',
            intl_designator: String::new(),
            epoch: self.epoch,
            epoch_year: (year.rem_euclid(100)) as u32,
            epoch_day,
            ndot_over_2: 0.0,
            nddot_over_6: 0.0,
            bstar: self.bstar,
            element_number: 1,
            inclination_rad: self.inclination_rad,
            raan_rad: wrap_tau(self.raan_rad),
            eccentricity: self.eccentricity,
            arg_perigee_rad: wrap_tau(self.arg_perigee_rad),
            mean_anomaly_rad: wrap_tau(self.mean_anomaly_rad),
            mean_motion_rad_min: self.mean_motion_rad_min(),
            rev_number: 1,
        })
    }

    /// Build an SGP4 propagator directly from these elements.
    pub fn to_sgp4(&self) -> Result<Sgp4, OrbitError> {
        Sgp4::from_elements(
            self.mean_motion_rad_min(),
            self.eccentricity,
            self.inclination_rad,
            wrap_tau(self.raan_rad),
            wrap_tau(self.arg_perigee_rad),
            wrap_tau(self.mean_anomaly_rad),
            self.bstar,
            self.epoch,
        )
    }
}

/// Normalise an angle into `[0, 2π)`.
///
/// Synthetic catalogs accumulate angles well past τ (Walker phasing,
/// golden-angle jitter, per-shell RAAN offsets), and TLE fields are
/// formatted as degrees in `[0, 360)`; every angle is pushed through
/// this before formatting or propagator initialisation. The final guard
/// handles the boundary case where `x % τ` is a sub-ulp negative value
/// and adding τ rounds back up to exactly τ — without it the function
/// could return τ itself, which is outside the half-open range and
/// would survive a *second* wrap as `0.0` (a bit-identity hazard
/// between once- and twice-normalised pipelines).
pub fn wrap_tau(x: f64) -> f64 {
    let mut w = x % TAU;
    if w < 0.0 {
        w += TAU;
    }
    if w >= TAU {
        w = 0.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    #[test]
    fn iss_altitude_period_is_about_92_minutes() {
        let p = period_min_for_altitude(420.0);
        assert!((p - 92.8).abs() < 0.5, "period {p}");
    }

    #[test]
    fn circular_speed_at_500km_is_7_6_km_s() {
        let v = circular_speed_km_s(500.0);
        assert!((v - 7.61).abs() < 0.02, "speed {v}");
    }

    #[test]
    fn footprint_matches_paper_order_of_magnitude() {
        // Paper Table 3 reports 1.27e7 km² for FOSSA (~510 km) and 3.27e7 km²
        // for Tianqi's high shell (~857 km). The paper does not state its
        // elevation mask; a 0° spherical cap brackets FOSSA from above
        // (1.9e7) and a ~5° mask from below (1.2e7), so we assert the
        // decade, monotonicity in altitude, and shrinkage with the mask.
        let fossa = footprint_area_km2(510.0, 0.0);
        assert!(
            (1.0e7..2.5e7).contains(&fossa),
            "FOSSA footprint {fossa:.3e}"
        );
        let fossa_masked = footprint_area_km2(510.0, 5.0_f64.to_radians());
        assert!(
            (1.0e7..1.5e7).contains(&fossa_masked),
            "FOSSA 5° footprint {fossa_masked:.3e}"
        );
        let tianqi = footprint_area_km2(857.0, 0.0);
        assert!(
            (2.5e7..3.6e7).contains(&tianqi),
            "Tianqi footprint {tianqi:.3e}"
        );
        // Higher orbits see more ground.
        assert!(tianqi > fossa);
        // A mask shrinks the footprint.
        assert!(footprint_area_km2(510.0, 10.0_f64.to_radians()) < fossa_masked);
    }

    #[test]
    fn elements_to_tle_round_trip() {
        let mut e = Elements::circular(550.0, 97.6, epoch());
        e.raan_rad = 1.25;
        e.mean_anomaly_rad = 2.5;
        let tle = e.to_tle(40001, "SYN-1").unwrap();
        assert_eq!(tle.norad_id, 40001);
        assert_eq!(tle.name.as_deref(), Some("SYN-1"));
        // Format and reparse: the full TLE text pipeline must agree.
        let (l1, l2) = tle.format_lines();
        let back = Tle::parse_lines(&l1, &l2).unwrap();
        assert!((back.inclination_rad - e.inclination_rad).abs() < 1e-5);
        assert!((back.raan_rad - e.raan_rad).abs() < 1e-5);
        assert!((back.mean_anomaly_rad - e.mean_anomaly_rad).abs() < 1e-5);
        assert!((back.mean_motion_rad_min - e.mean_motion_rad_min()).abs() < 1e-7);
        assert!((back.epoch.0 - e.epoch.0).abs() < 1e-6);
    }

    #[test]
    fn to_sgp4_altitude_is_respected() {
        let e = Elements::circular(550.0, 97.6, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let state = sgp4.propagate(30.0).unwrap();
        let alt = state.position_km.norm() - EARTH_RADIUS_KM;
        assert!((alt - 550.0).abs() < 25.0, "altitude {alt}");
    }

    #[test]
    fn tle_and_direct_sgp4_agree() {
        let mut e = Elements::circular(700.0, 50.0, epoch());
        e.raan_rad = 0.7;
        e.mean_anomaly_rad = 4.0;
        let direct = e.to_sgp4().unwrap();
        let tle = e.to_tle(40002, "SYN-2").unwrap();
        let (l1, l2) = tle.format_lines();
        let via_tle = Sgp4::new(&Tle::parse_lines(&l1, &l2).unwrap()).unwrap();
        for t in [0.0, 47.0, 1440.0] {
            let a = direct.propagate(t).unwrap().position_km;
            let b = via_tle.propagate(t).unwrap().position_km;
            // TLE text has ~1e-4 deg / 1e-8 rev/day quantisation; states stay
            // within tens of metres over a day.
            assert!((a - b).norm() < 0.2, "t={t}: {} km apart", (a - b).norm());
        }
    }

    #[test]
    fn invalid_elements_are_rejected() {
        let mut e = Elements::circular(550.0, 97.6, epoch());
        e.sma_km = 100.0;
        assert!(matches!(
            e.to_tle(1, "X").unwrap_err(),
            OrbitError::InvalidElements { field: "sma_km" }
        ));
        let mut e = Elements::circular(550.0, 97.6, epoch());
        e.eccentricity = 1.2;
        assert!(e.to_tle(1, "X").is_err());
        let mut e = Elements::circular(550.0, 97.6, epoch());
        e.inclination_rad = -0.1;
        assert!(e.to_tle(1, "X").is_err());
    }

    #[test]
    fn wrap_tau_behaviour() {
        assert!((wrap_tau(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert!((wrap_tau(TAU + 0.25) - 0.25).abs() < 1e-12);
        assert_eq!(wrap_tau(0.0), 0.0);
        // Half-open range: τ itself and sub-ulp negatives must land in
        // [0, τ), never *at* τ.
        assert_eq!(wrap_tau(TAU), 0.0);
        let w = wrap_tau(-1e-20);
        assert!((0.0..TAU).contains(&w), "wrap_tau(-1e-20) = {w}");
        for hostile in [37.2, -41.9, 6.0 * TAU + 1.0, -3.0 * TAU - 2.5] {
            let w = wrap_tau(hostile);
            assert!((0.0..TAU).contains(&w), "wrap_tau({hostile}) = {w}");
            // Idempotent: a second wrap is bit-identical.
            assert_eq!(wrap_tau(w).to_bits(), w.to_bits());
        }
    }

    #[test]
    fn footprint_half_angle_matches_area() {
        // The extracted half-angle must reproduce the area formula.
        for (alt, mask) in [(510.0, 0.0), (857.0, 0.0), (600.0, 0.26)] {
            let lam = footprint_half_angle_rad(alt, mask);
            let area = TAU * EARTH_RADIUS_KM * EARTH_RADIUS_KM * (1.0 - lam.cos());
            assert_eq!(area.to_bits(), footprint_area_km2(alt, mask).to_bits());
            assert!(lam > 0.0 && lam < core::f64::consts::FRAC_PI_2);
        }
        // Higher orbits see further; masks shrink the cone.
        assert!(footprint_half_angle_rad(900.0, 0.0) > footprint_half_angle_rad(500.0, 0.0));
        assert!(footprint_half_angle_rad(600.0, 0.0) > footprint_half_angle_rad(600.0, 0.3));
    }
}

/// J₂ nodal-precession rate (rad/day) of a near-circular orbit at
/// `alt_km` altitude and `incl_rad` inclination.
///
/// `Ω̇ = −(3/2) · J₂ · (Re/p)² · n · cos i`
///
/// Retrograde orbits near 97–98° precess *eastward* ~0.9856°/day, exactly
/// tracking the mean Sun — which is why every cubesat constellation in
/// the paper's Table 3 (FOSSA/PICO/CSTP at 97.36–97.72°) sits there.
pub fn nodal_precession_rad_per_day(alt_km: f64, incl_rad: f64, ecc: f64) -> f64 {
    let a = sma_for_altitude_km(alt_km);
    let p = a * (1.0 - ecc * ecc);
    let n_rad_day = mean_motion_rad_min(a) * 1_440.0;
    -1.5 * crate::sgp4::J2 * (EARTH_RADIUS_KM / p).powi(2) * n_rad_day * incl_rad.cos()
}

/// J₂ apsidal-precession rate (rad/day): how fast the argument of perigee
/// rotates. `ω̇ = (3/4)·J₂·(Re/p)²·n·(5cos²i − 1)`; zero at the critical
/// inclination 63.43°.
pub fn apsidal_precession_rad_per_day(alt_km: f64, incl_rad: f64, ecc: f64) -> f64 {
    let a = sma_for_altitude_km(alt_km);
    let p = a * (1.0 - ecc * ecc);
    let n_rad_day = mean_motion_rad_min(a) * 1_440.0;
    0.75 * crate::sgp4::J2
        * (EARTH_RADIUS_KM / p).powi(2)
        * n_rad_day
        * (5.0 * incl_rad.cos().powi(2) - 1.0)
}

/// The Earth's mean motion around the Sun, rad/day — the precession rate
/// a sun-synchronous orbit must match.
pub const SUN_RATE_RAD_PER_DAY: f64 = 0.985_647_4 * core::f64::consts::PI / 180.0;

/// The inclination (radians) making an orbit at `alt_km` sun-synchronous,
/// or `None` if no inclination achieves it (altitude too high for SSO).
pub fn sun_synchronous_inclination_rad(alt_km: f64) -> Option<f64> {
    let a = sma_for_altitude_km(alt_km);
    let n_rad_day = mean_motion_rad_min(a) * 1_440.0;
    let cos_i =
        -SUN_RATE_RAD_PER_DAY / (1.5 * crate::sgp4::J2 * (EARTH_RADIUS_KM / a).powi(2) * n_rad_day);
    if cos_i.abs() > 1.0 {
        None
    } else {
        Some(cos_i.acos())
    }
}

#[cfg(test)]
mod precession_tests {
    use super::*;

    #[test]
    fn table_3_cubesats_are_sun_synchronous() {
        // The paper's Table 3 inclinations are not arbitrary: at each
        // constellation's altitude, the J2-predicted sun-synchronous
        // inclination matches the published value to a fraction of a
        // degree — a strong independent check of the precession model.
        let cases = [
            (510.4, 97.36), // FOSSA at 508.7–512.0 km
            (515.0, 97.72), // PICO at 507.9–522.1 km (mid)
            (496.0, 97.45), // CSTP at 468.3–523.7 km (mid)
        ];
        for (alt, published_deg) in cases {
            let sso = sun_synchronous_inclination_rad(alt)
                .expect("LEO altitudes always admit an SSO inclination")
                .to_degrees();
            assert!(
                (sso - published_deg).abs() < 0.6,
                "alt {alt}: SSO {sso:.2}° vs published {published_deg}°"
            );
        }
    }

    #[test]
    fn sso_orbit_precesses_at_the_sun_rate() {
        let alt = 510.0;
        let incl = sun_synchronous_inclination_rad(alt).unwrap();
        let rate = nodal_precession_rad_per_day(alt, incl, 0.001);
        assert!(
            (rate - SUN_RATE_RAD_PER_DAY).abs() / SUN_RATE_RAD_PER_DAY < 1e-3,
            "rate {rate}"
        );
    }

    #[test]
    fn prograde_orbits_precess_westward() {
        // ISS-like: Ω̇ ≈ −5°/day.
        let rate = nodal_precession_rad_per_day(420.0, 51.6_f64.to_radians(), 0.001);
        assert!(rate < 0.0);
        assert!(
            (rate.to_degrees() + 5.0).abs() < 0.3,
            "rate {}",
            rate.to_degrees()
        );
        // Polar orbits barely precess.
        let polar = nodal_precession_rad_per_day(500.0, 90.0_f64.to_radians(), 0.0);
        assert!(polar.abs() < 1e-6);
    }

    #[test]
    fn sgp4_node_drift_matches_the_analytic_rate() {
        // Propagate a Tianqi-shell orbit for 10 days and compare the
        // ascending-node drift of the actual SGP4 integration against the
        // first-order J2 formula.
        let alt = 857.0;
        let incl = 49.97_f64.to_radians();
        let epoch = JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0);
        let e = Elements::circular(alt, 49.97, epoch);
        let sgp4 = e.to_sgp4().unwrap();
        // Extract the node direction from the angular-momentum vector.
        let node_lon = |t: f64| -> f64 {
            let s = sgp4.propagate(t).unwrap();
            let h = s.position_km.cross(s.velocity_km_s);
            // Ascending node direction = ẑ × h.
            (-h.x).atan2(h.y)
        };
        let days = 10.0;
        let mut drift = node_lon(days * 1_440.0) - node_lon(0.0);
        while drift > core::f64::consts::PI {
            drift -= TAU;
        }
        while drift < -core::f64::consts::PI {
            drift += TAU;
        }
        let analytic = nodal_precession_rad_per_day(alt, incl, 0.0005) * days;
        assert!(
            (drift - analytic).abs() < 0.01,
            "drift {drift} vs analytic {analytic}"
        );
    }

    #[test]
    fn apsidal_precession_vanishes_at_critical_inclination() {
        let critical = (1.0_f64 / 5.0_f64.sqrt()).acos(); // 63.43°.
        let at_critical = apsidal_precession_rad_per_day(600.0, critical, 0.01);
        assert!(at_critical.abs() < 1e-12, "rate {at_critical}");
        // Below the critical inclination perigee advances; above, it regresses.
        assert!(apsidal_precession_rad_per_day(600.0, 0.5, 0.01) > 0.0);
        assert!(apsidal_precession_rad_per_day(600.0, 1.5, 0.01) < 0.0);
        // ISS-class: ω̇ ≈ +3.6°/day.
        let iss = apsidal_precession_rad_per_day(420.0, 51.6_f64.to_radians(), 0.001);
        assert!((iss.to_degrees() - 3.6).abs() < 0.4, "{}", iss.to_degrees());
    }

    #[test]
    fn high_orbits_cannot_be_sun_synchronous() {
        assert!(sun_synchronous_inclination_rad(500.0).is_some());
        assert!(sun_synchronous_inclination_rad(40_000.0).is_none());
    }
}
