//! Reference-frame conversions: TEME ↔ ECEF and ECEF ↔ geodetic.
//!
//! SGP4 emits states in the TEME inertial frame; ground stations live on
//! the rotating Earth. The bridge is a rotation about the Earth's spin axis
//! by Greenwich Mean Sidereal Time (polar motion is ignored — it is metres,
//! far below link-budget relevance). Geodetic conversions use the WGS-84
//! ellipsoid.

use crate::sgp4::StateTeme;
use crate::time::JulianDate;
use crate::vec3::Vec3;

/// WGS-84 semi-major axis, km.
pub const WGS84_A_KM: f64 = 6_378.137;
/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;
/// Earth rotation rate, rad/s (IAU-82 value used with GMST).
pub const EARTH_OMEGA_RAD_S: f64 = 7.292_115_146_706_4e-5;

/// A geodetic position on the WGS-84 ellipsoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geodetic {
    /// Geodetic latitude, radians (positive north).
    pub lat_rad: f64,
    /// Longitude, radians (positive east), in (−π, π].
    pub lon_rad: f64,
    /// Height above the ellipsoid, km.
    pub alt_km: f64,
}

impl Geodetic {
    /// Construct from latitude/longitude in radians and altitude in km.
    pub fn new(lat_rad: f64, lon_rad: f64, alt_km: f64) -> Self {
        Geodetic {
            lat_rad,
            lon_rad,
            alt_km,
        }
    }

    /// Construct from latitude/longitude in **degrees** and altitude in km
    /// (the form site catalogs use).
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, alt_km: f64) -> Self {
        Geodetic::new(lat_deg.to_radians(), lon_deg.to_radians(), alt_km)
    }

    /// Convert to an Earth-centred, Earth-fixed cartesian position (km).
    pub fn to_ecef(self) -> Vec3 {
        let e2 = WGS84_F * (2.0 - WGS84_F);
        let sin_lat = self.lat_rad.sin();
        let cos_lat = self.lat_rad.cos();
        let n = WGS84_A_KM / (1.0 - e2 * sin_lat * sin_lat).sqrt();
        Vec3::new(
            (n + self.alt_km) * cos_lat * self.lon_rad.cos(),
            (n + self.alt_km) * cos_lat * self.lon_rad.sin(),
            (n * (1.0 - e2) + self.alt_km) * sin_lat,
        )
    }
}

/// A position (and optional velocity) in the Earth-fixed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateEcef {
    /// Position, km.
    pub position_km: Vec3,
    /// Velocity relative to the rotating Earth, km/s.
    pub velocity_km_s: Vec3,
}

/// Rotate a TEME state into ECEF at the given UTC instant.
///
/// Velocity is corrected for the frame rotation (`v_ecef = R·v_teme − ω×r`).
pub fn teme_to_ecef(state: &StateTeme, when: JulianDate) -> StateEcef {
    let gmst = when.gmst_rad();
    // ECEF = R3(gmst) · TEME, i.e. rotate by −gmst about Z.
    let r = state.position_km.rotate_z(-gmst);
    let v_rot = state.velocity_km_s.rotate_z(-gmst);
    let omega = Vec3::new(0.0, 0.0, EARTH_OMEGA_RAD_S);
    let v = v_rot - omega.cross(r);
    StateEcef {
        position_km: r,
        velocity_km_s: v,
    }
}

/// Convert an ECEF position to geodetic coordinates (WGS-84) using
/// Bowring's closed-form method with one Bowring refinement step.
///
/// The previous implementation fixed-point-iterated on the latitude,
/// which loses accuracy near the poles where the `p / cos(lat)` height
/// expression is ill-conditioned and the iteration increment stalls just
/// above the convergence tolerance. Bowring's parametric-latitude form
/// has no such singularity: one evaluation is accurate to ~1e-10 rad for
/// any LEO/ground point and the refinement step brings it below 1e-12
/// rad. The height uses the latitude-independent projection
/// `h = p·cosφ + z·sinφ − a·√(1 − e²sin²φ)`, stable from equator to pole.
pub fn ecef_to_geodetic(r: Vec3) -> Geodetic {
    let e2 = WGS84_F * (2.0 - WGS84_F);
    let b = WGS84_A_KM * (1.0 - WGS84_F);
    let ep2 = e2 / (1.0 - e2);
    let lon = r.y.atan2(r.x);
    let p = (r.x * r.x + r.y * r.y).sqrt();
    if p < 1e-9 {
        // On the polar axis.
        let lat = if r.z >= 0.0 {
            core::f64::consts::FRAC_PI_2
        } else {
            -core::f64::consts::FRAC_PI_2
        };
        return Geodetic::new(lat, 0.0, r.z.abs() - b);
    }

    // Initial parametric (reduced) latitude: tan u = (z/p)(a/b).
    let mut u = (r.z * WGS84_A_KM).atan2(p * b);
    let mut lat = 0.0;
    // One closed-form evaluation plus one refinement of u from the
    // resulting geodetic latitude (tan u = (1−f)·tan φ).
    for _ in 0..2 {
        let (su, cu) = u.sin_cos();
        lat = (r.z + ep2 * b * su * su * su).atan2(p - e2 * WGS84_A_KM * cu * cu * cu);
        u = ((1.0 - WGS84_F) * lat.sin()).atan2(lat.cos());
    }

    let (sin_lat, cos_lat) = lat.sin_cos();
    let alt = p * cos_lat + r.z * sin_lat - WGS84_A_KM * (1.0 - e2 * sin_lat * sin_lat).sqrt();
    let g = Geodetic::new(lat, lon, alt);
    satiot_obs::invariants::check_elevation_rad("frames::ecef_to_geodetic latitude", g.lat_rad);
    debug_assert!(
        (g.to_ecef() - r).norm() < 1e-3,
        "geodetic round-trip residual exceeds 1 m at {r:?}"
    );
    g
}

/// Sub-satellite point: geodetic lat/lon/alt directly below a TEME state.
pub fn subsatellite_point(state: &StateTeme, when: JulianDate) -> Geodetic {
    ecef_to_geodetic(teme_to_ecef(state, when).position_km)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geodetic_ecef_round_trip() {
        let sites = [
            (22.3193, 114.1694, 0.05),  // Hong Kong
            (-33.8688, 151.2093, 0.02), // Sydney
            (51.5074, -0.1278, 0.01),   // London
            (40.4406, -79.9959, 0.3),   // Pittsburgh
            (0.0, 0.0, 0.0),            // Gulf of Guinea
            (89.9, 45.0, 0.0),          // Near north pole
            (-89.9, -120.0, 0.1),       // Near south pole
        ];
        for (lat, lon, alt) in sites {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let r = g.to_ecef();
            let back = ecef_to_geodetic(r);
            assert!(
                (back.lat_rad - g.lat_rad).abs() < 1e-9,
                "lat mismatch at {lat},{lon}"
            );
            assert!(
                (back.lon_rad - g.lon_rad).abs() < 1e-9,
                "lon mismatch at {lat},{lon}"
            );
            assert!(
                (back.alt_km - g.alt_km).abs() < 1e-6,
                "alt mismatch at {lat},{lon}: {} vs {alt}",
                back.alt_km
            );
        }
    }

    #[test]
    fn equator_ecef_has_expected_radius() {
        let g = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let r = g.to_ecef();
        assert!((r.x - WGS84_A_KM).abs() < 1e-9);
        assert!(r.y.abs() < 1e-9 && r.z.abs() < 1e-9);
    }

    #[test]
    fn pole_ecef_has_polar_radius() {
        let g = Geodetic::from_degrees(90.0, 0.0, 0.0);
        let r = g.to_ecef();
        let b = WGS84_A_KM * (1.0 - WGS84_F);
        assert!((r.z - b).abs() < 1e-6, "z = {}", r.z);
    }

    /// Pinned from `tests/props.proptest-regressions` (seed `f77f9e90…`):
    /// the near-pole point where the old fixed-point iteration stalled
    /// just above the 1e-9 rad round-trip tolerance.
    #[test]
    fn regression_near_pole_roundtrip_seed() {
        let g = Geodetic::from_degrees(89.75101093198926, 0.0, 4.3151289694631085);
        let back = ecef_to_geodetic(g.to_ecef());
        assert!(
            (back.lat_rad - g.lat_rad).abs() < 1e-9,
            "lat residual {:e}",
            (back.lat_rad - g.lat_rad).abs()
        );
        assert!((back.lon_rad - g.lon_rad).abs() < 1e-9);
        assert!(
            (back.alt_km - g.alt_km).abs() < 1e-6,
            "alt residual {:e}",
            (back.alt_km - g.alt_km).abs()
        );
    }

    /// Bowring's closed form must hold the 1e-9 rad round-trip tolerance
    /// over a dense latitude sweep including both poles' neighbourhoods.
    #[test]
    fn bowring_roundtrip_latitude_sweep() {
        for i in 0..=1800 {
            let lat = -90.0 + i as f64 * 0.1;
            for alt in [0.0, 0.5, 8.8] {
                let g = Geodetic::from_degrees(lat, 12.5, alt);
                let back = ecef_to_geodetic(g.to_ecef());
                assert!(
                    (back.lat_rad - g.lat_rad).abs() < 1e-9,
                    "lat {lat}: residual {:e}",
                    (back.lat_rad - g.lat_rad).abs()
                );
                assert!(
                    (back.alt_km - g.alt_km).abs() < 1e-6,
                    "lat {lat} alt {alt}: residual {:e}",
                    (back.alt_km - g.alt_km).abs()
                );
            }
        }
    }

    #[test]
    fn polar_axis_geodetic() {
        let b = WGS84_A_KM * (1.0 - WGS84_F);
        let g = ecef_to_geodetic(Vec3::new(0.0, 0.0, b + 100.0));
        assert!((g.lat_rad.to_degrees() - 90.0).abs() < 1e-9);
        assert!((g.alt_km - 100.0).abs() < 1e-6);
    }

    #[test]
    fn teme_to_ecef_preserves_radius() {
        let state = StateTeme {
            position_km: Vec3::new(2328.97, -5995.22, 1719.97),
            velocity_km_s: Vec3::new(2.912, -0.983, -7.091),
            tsince_min: 0.0,
        };
        let when = JulianDate::from_calendar(1980, 10, 1, 23, 41, 24.11);
        let ecef = teme_to_ecef(&state, when);
        assert!((ecef.position_km.norm() - state.position_km.norm()).abs() < 1e-9);
        // The Earth-fixed speed differs from inertial speed by ≲ ω·r ≈ 0.5 km/s.
        let dv = (ecef.velocity_km_s.norm() - state.velocity_km_s.norm()).abs();
        assert!(dv < 0.6, "dv = {dv}");
    }

    #[test]
    fn subsatellite_point_altitude_is_orbit_height() {
        // A point 7000 km from Earth's centre over the equator.
        let state = StateTeme {
            position_km: Vec3::new(7000.0, 0.0, 0.0),
            velocity_km_s: Vec3::new(0.0, 7.5, 0.0),
            tsince_min: 0.0,
        };
        let when = JulianDate::from_calendar(2024, 6, 1, 0, 0, 0.0);
        let g = subsatellite_point(&state, when);
        assert!(g.lat_rad.abs() < 1e-6);
        assert!((g.alt_km - (7000.0 - WGS84_A_KM)).abs() < 0.01);
    }

    #[test]
    fn gmst_rotation_moves_longitude_west_over_time() {
        // A fixed inertial point appears to drift westward in longitude as
        // the Earth rotates eastward beneath it.
        let state = StateTeme {
            position_km: Vec3::new(7000.0, 0.0, 0.0),
            velocity_km_s: Vec3::ZERO,
            tsince_min: 0.0,
        };
        let t0 = JulianDate::from_calendar(2024, 6, 1, 0, 0, 0.0);
        let g0 = subsatellite_point(&state, t0);
        let g1 = subsatellite_point(&state, t0.plus_minutes(10.0));
        let mut dlon = g1.lon_rad - g0.lon_rad;
        if dlon > core::f64::consts::PI {
            dlon -= core::f64::consts::TAU;
        }
        // 10 min of Earth rotation ≈ 2.5° westward drift.
        assert!((dlon.to_degrees() + 2.5).abs() < 0.05, "dlon = {dlon}");
    }
}

/// Sample the ground track of a propagator: sub-satellite geodetic points
/// every `step_s` seconds over `[start, end]`. Propagation failures
/// truncate the track.
pub fn ground_track(
    sgp4: &crate::sgp4::Sgp4,
    start: JulianDate,
    end: JulianDate,
    step_s: f64,
) -> Vec<(JulianDate, Geodetic)> {
    let mut out = Vec::new();
    if step_s <= 0.0 {
        return out;
    }
    let mut t = start;
    while t <= end {
        match sgp4.propagate_at(t) {
            Ok(state) => out.push((t, subsatellite_point(&state, t))),
            Err(_) => break,
        }
        t = t.plus_seconds(step_s);
    }
    out
}

#[cfg(test)]
mod ground_track_tests {
    use super::*;
    use crate::elements::Elements;

    #[test]
    fn track_latitude_is_bounded_by_inclination() {
        let epoch = JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0);
        let incl = 49.97_f64;
        let sgp4 = Elements::circular(857.0, incl, epoch).to_sgp4().unwrap();
        let track = ground_track(&sgp4, epoch, epoch + 0.2, 30.0);
        assert!(track.len() > 500);
        let max_lat = track
            .iter()
            .map(|(_, g)| g.lat_rad.to_degrees().abs())
            .fold(0.0_f64, f64::max);
        assert!(max_lat <= incl + 0.5, "max lat {max_lat}");
        // An inclined LEO actually reaches its inclination latitude.
        assert!(max_lat > incl - 2.0, "max lat {max_lat}");
        // Altitude along the track stays at the shell height.
        for (_, g) in &track {
            assert!((g.alt_km - 857.0).abs() < 40.0, "alt {}", g.alt_km);
        }
    }

    #[test]
    fn degenerate_track_inputs() {
        let epoch = JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0);
        let sgp4 = Elements::circular(600.0, 60.0, epoch).to_sgp4().unwrap();
        assert!(ground_track(&sgp4, epoch, epoch, 0.0).is_empty());
        let single = ground_track(&sgp4, epoch, epoch, 60.0);
        assert_eq!(single.len(), 1);
    }
}
