//! Precomputed satellite ephemerides: propagate once, serve every site.
//!
//! Pass prediction is observer-*dependent* (elevation masks, look
//! angles) but the satellite trajectory it consumes is
//! observer-*independent*: a 27-site campaign that propagates the same
//! satellite 27 times recomputes identical SGP4 states, GMST values,
//! and TEME→ECEF rotations 26 times too many. An [`EphemerisGrid`]
//! removes that waste in the shape of an inference-stack KV-cache —
//! compute once, serve many:
//!
//! 1. propagate SGP4 over the scan window once, at a coarse cadence
//!    ([`DEFAULT_STEP_S`]), storing the **ECEF** position *and* velocity
//!    of every sample (the velocity falls out of [`teme_to_ecef`] for
//!    free and is the *exact* time derivative of the ECEF position —
//!    the transport theorem's `−ω×r` term is what makes it so);
//! 2. answer any `state_at(t)` query by **cubic Hermite** interpolation
//!    between the two bracketing samples — no SGP4, no `gmst_rad`, no
//!    frame rotation on the per-site hot path;
//! 3. feed the interpolated state to the observer's cheap
//!    [`look_at_ecef`](crate::topo::Observer::look_at_ecef) projection.
//!
//! ## Accuracy contract
//!
//! Hermite interpolation with exact endpoint derivatives has error
//! `‖f − H‖ ≤ h⁴/384 · max‖f⁗‖`. A LEO ECEF trajectory is dominated by
//! a rotation at orbital rate `ω ≈ 1.1×10⁻³ rad/s` with radius
//! `r ≈ 7000 km`, so `max‖f⁗‖ ≈ r·ω⁴` and the bound evaluates to
//! ~0.35 m at `h = 60 s` — *sub-metre* at the default cadence, and
//! still ≈ 28 m at the [`MAX_STEP_S`] clamp used for multi-month
//! windows. Slant ranges are ≥ 400 km for any above-horizon LEO
//! geometry, so even the clamped worst case perturbs elevation by
//! < 0.004°, comfortably inside the documented contract:
//!
//! * interpolated **position** within [`MAX_POSITION_ERROR_KM`] of
//!   direct SGP4 (asserted by [`EphemerisGrid::validate`], which
//!   probes the hardest points — inter-sample midpoints);
//! * interpolated **elevation** within [`MAX_ELEVATION_ERROR_DEG`] of
//!   direct SGP4 from any ground observer (checked across the Table-3
//!   constellations by the `ephemeris_check` CI binary and by the
//!   `prop_orbit` property tests).
//!
//! ## The `SATIOT_EPHEMERIS` knob
//!
//! * `SATIOT_EPHEMERIS=0` (or `off`) — direct SGP4 everywhere; the A/B
//!   baseline.
//! * unset / any other value — grids on (the default).
//! * `SATIOT_EPHEMERIS=validate` — grids on, and every grid built
//!   through `satiot_core::sweep` is probed against direct SGP4 at
//!   build time, panicking if the position contract is violated.
//!
//! The knob is parsed once by `satiot_core::RunOptions::from_env()` and
//! installed here via [`set_mode`]; a campaign run pins one backend for
//! its whole duration, so drivers can never mix backends mid-run (which
//! would break bit-determinism).

use crate::frames::{teme_to_ecef, StateEcef};
use crate::sgp4::Sgp4;
use crate::time::JulianDate;
use crate::vec3::Vec3;
use satiot_obs::metrics::Counter;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// Grids built process-wide (metrics).
static GRIDS_BUILT: Counter = Counter::new("orbit.ephemeris.grids_built");
/// SGP4 samples stored across all grids (metrics).
static GRID_SAMPLES: Counter = Counter::new("orbit.ephemeris.grid_samples");
/// `state_at` queries answered by interpolation (metrics).
static INTERPOLATIONS: Counter = Counter::new("orbit.ephemeris.interpolations");
/// `state_at` queries outside the grid or over invalid samples (metrics).
static GRID_MISSES: Counter = Counter::new("orbit.ephemeris.grid_misses");

/// Default sample spacing, seconds. 60 s keeps the Hermite error
/// sub-metre for any LEO orbit (see the module docs).
pub const DEFAULT_STEP_S: f64 = 60.0;

/// Widest spacing a grid will ever use, seconds. Multi-month windows
/// stretch the step (capping samples near [`TARGET_MAX_SAMPLES`]) but
/// never beyond this, keeping the position error ≤ ~28 m ≪ the mask
/// refinement scale.
pub const MAX_STEP_S: f64 = 180.0;

/// Soft cap on samples per grid (2¹⁷ ≈ 131 k ≈ 6 MB of f64 state); the
/// step widens toward [`MAX_STEP_S`] before the count may grow past it.
pub const TARGET_MAX_SAMPLES: usize = 1 << 17;

/// Position-error contract: interpolated ECEF position stays within
/// this of direct SGP4, at any step up to [`MAX_STEP_S`].
pub const MAX_POSITION_ERROR_KM: f64 = 0.05;

/// Elevation-error contract versus direct SGP4, degrees, for any
/// ground observer with the satellite above the horizon.
pub const MAX_ELEVATION_ERROR_DEG: f64 = 0.01;

/// How the process uses ephemeris grids (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EphemerisMode {
    /// Direct SGP4 everywhere (the A/B baseline).
    Off,
    /// Shared grids on the predict path (the default).
    On,
    /// Grids on, plus a build-time probe of the position contract.
    Validate,
}

// Cached mode: 255 = not yet read from the environment.
static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

/// The process-wide ephemeris mode. Defaults to [`EphemerisMode::On`]
/// until pinned with [`set_mode`]; the `SATIOT_EPHEMERIS` environment
/// knob reaches this latch through
/// `satiot_core::RunOptions::from_env().apply()` — this module never
/// reads the environment itself.
pub fn mode() -> EphemerisMode {
    match MODE.load(Relaxed) {
        0 => EphemerisMode::Off,
        2 => EphemerisMode::Validate,
        _ => EphemerisMode::On,
    }
}

/// Pin the mode programmatically (tests and A/B harnesses that cannot
/// restart the process). Call before any campaign runs: the mode must
/// not change mid-run.
pub fn set_mode(m: EphemerisMode) {
    let code = match m {
        EphemerisMode::Off => 0,
        EphemerisMode::On => 1,
        EphemerisMode::Validate => 2,
    };
    MODE.store(code, Relaxed);
}

/// A worst-case probe report from [`EphemerisGrid::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// Largest interpolated-vs-direct position error seen, km.
    pub max_position_error_km: f64,
    /// Largest interpolated-vs-direct velocity error seen, km/s.
    pub max_velocity_error_km_s: f64,
    /// Midpoints probed.
    pub probes: usize,
}

impl ValidationReport {
    /// Whether the probe stayed inside the position contract.
    pub fn within_contract(&self) -> bool {
        self.max_position_error_km <= MAX_POSITION_ERROR_KM
    }
}

/// A precomputed, Hermite-interpolable ECEF trajectory of one satellite
/// over one scan window.
///
/// ```
/// use satiot_orbit::elements::Elements;
/// use satiot_orbit::ephemeris::EphemerisGrid;
/// use satiot_orbit::time::JulianDate;
///
/// let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
/// let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
/// let grid = EphemerisGrid::build(&sgp4, epoch, epoch + 1.0);
/// let t = epoch.plus_seconds(1234.5);
/// let interp = grid.state_at(t).unwrap();
/// let direct = satiot_orbit::frames::teme_to_ecef(&sgp4.propagate_at(t).unwrap(), t);
/// assert!((interp.position_km - direct.position_km).norm() < 1e-3); // sub-metre
/// ```
#[derive(Debug, Clone)]
pub struct EphemerisGrid {
    /// Time of sample 0 (the window start minus the edge padding).
    t0: JulianDate,
    /// Sample spacing, seconds.
    step_s: f64,
    /// One `(position, velocity)` ECEF sample per lattice point. A
    /// sample whose propagation failed stores NaN components; queries
    /// bracketed by one degrade to `None` (callers fall back to direct
    /// propagation, which reports the same failure its own way).
    samples: Vec<StateEcef>,
    /// Maximum geocentric radius over the samples, km (NaN when any
    /// sample is degenerate). Grid-only aggregate consumed by the
    /// spatial pre-cull; computed once here instead of once per
    /// (site, satellite) pair.
    max_radius_km: f64,
    /// Maximum `|v|/|r|` over the samples, rad/s (NaN when any sample
    /// is degenerate) — bounds how fast the satellite's ECEF direction
    /// can swing, which bounds the Earth-central angle it can close
    /// within one step.
    max_angular_rate: f64,
}

impl EphemerisGrid {
    /// Sample spacing for a window of `span_s` seconds: the default
    /// cadence, widened toward [`MAX_STEP_S`] so multi-month grids stay
    /// near [`TARGET_MAX_SAMPLES`] samples.
    pub fn step_for_span(span_s: f64) -> f64 {
        let fitted = span_s / (TARGET_MAX_SAMPLES as f64 - 1.0);
        fitted.clamp(DEFAULT_STEP_S, MAX_STEP_S)
    }

    /// Propagate `sgp4` across `[start, end]` and build the grid.
    ///
    /// The lattice is padded by two steps on each side so refinement
    /// probes at the window edges — and the 1 s look-ahead the Doppler
    /// rate sampler uses at LOS — stay on-grid. Degenerate windows
    /// (non-finite or `end ≤ start`) yield an empty grid whose
    /// `state_at` always answers `None`.
    pub fn build(sgp4: &Sgp4, start: JulianDate, end: JulianDate) -> EphemerisGrid {
        let span_s = end.seconds_since(start);
        if !(span_s.is_finite() && span_s > 0.0 && start.0.is_finite()) {
            return EphemerisGrid {
                t0: start,
                step_s: DEFAULT_STEP_S,
                samples: Vec::new(),
                max_radius_km: f64::NAN,
                max_angular_rate: f64::NAN,
            };
        }
        let step_s = Self::step_for_span(span_s);
        let t0 = start.plus_seconds(-2.0 * step_s);
        let padded_span = span_s + 4.0 * step_s;
        let n = (padded_span / step_s).ceil() as usize + 1;
        let nan = Vec3::new(f64::NAN, f64::NAN, f64::NAN);
        let samples: Vec<StateEcef> = (0..n)
            .map(|k| {
                let t = t0.plus_seconds(k as f64 * step_s);
                match sgp4.propagate_at(t) {
                    Ok(state) => teme_to_ecef(&state, t),
                    Err(_) => StateEcef {
                        position_km: nan,
                        velocity_km_s: nan,
                    },
                }
            })
            .collect();
        GRIDS_BUILT.inc();
        GRID_SAMPLES.add(samples.len() as u64);
        let mut max_radius_km = 0.0_f64;
        let mut max_angular_rate = 0.0_f64;
        for st in &samples {
            let r = st.position_km.norm();
            let rate = st.velocity_km_s.norm() / r;
            if !(r.is_finite() && r > 0.0 && rate.is_finite()) {
                max_radius_km = f64::NAN;
                max_angular_rate = f64::NAN;
                break;
            }
            max_radius_km = max_radius_km.max(r);
            max_angular_rate = max_angular_rate.max(rate);
        }
        EphemerisGrid {
            t0,
            step_s,
            samples,
            max_radius_km,
            max_angular_rate,
        }
    }

    /// The interpolated ECEF state at `t`, or `None` when `t` falls
    /// outside the lattice or a bracketing sample is invalid.
    pub fn state_at(&self, t: JulianDate) -> Option<StateEcef> {
        let n = self.samples.len();
        if n < 2 {
            GRID_MISSES.inc();
            return None;
        }
        let x = t.seconds_since(self.t0) / self.step_s;
        if !(x >= 0.0 && x <= (n - 1) as f64) {
            GRID_MISSES.inc();
            return None;
        }
        let i = (x as usize).min(n - 2);
        let s = x - i as f64;
        let a = &self.samples[i];
        let b = &self.samples[i + 1];
        if !(a.position_km.x.is_finite() && b.position_km.x.is_finite()) {
            GRID_MISSES.inc();
            return None;
        }
        INTERPOLATIONS.inc();

        // Cubic Hermite on [0, 1] with tangents scaled by the step. At
        // s = 0 and s = 1 the basis reproduces the stored samples
        // (position and velocity) exactly, so on-lattice queries carry
        // no interpolation error — only time-arithmetic rounding.
        let h = self.step_s;
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        let position_km = a.position_km * h00
            + a.velocity_km_s * (h * h10)
            + b.position_km * h01
            + b.velocity_km_s * (h * h11);
        // d/dt = (d/ds)/h; the basis derivatives at s ∈ {0, 1} are
        // (0, 1, 0, 0) and (0, 0, 0, 1), so endpoint velocities are
        // exact too.
        let d00 = 6.0 * s2 - 6.0 * s;
        let d10 = 3.0 * s2 - 4.0 * s + 1.0;
        let d01 = -6.0 * s2 + 6.0 * s;
        let d11 = 3.0 * s2 - 2.0 * s;
        let velocity_km_s = a.position_km * (d00 / h)
            + a.velocity_km_s * d10
            + b.position_km * (d01 / h)
            + b.velocity_km_s * d11;
        Some(StateEcef {
            position_km,
            velocity_km_s,
        })
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the grid holds no usable lattice (degenerate window).
    pub fn is_empty(&self) -> bool {
        self.samples.len() < 2
    }

    /// Sample spacing, seconds.
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// Maximum geocentric radius over the stored samples, km — `NaN`
    /// when the grid is empty or any sample is degenerate. The spatial
    /// pre-cull ([`cull`](crate::cull)) sizes its visibility cone from
    /// this instead of re-scanning the samples per (site, sat) pair.
    pub fn max_radius_km(&self) -> f64 {
        self.max_radius_km
    }

    /// Maximum `|v|/|r|` over the stored samples, rad/s — `NaN` when
    /// the grid is empty or any sample is degenerate. Bounds the
    /// Earth-central angular rate of the satellite's ECEF direction
    /// (`|d r̂/dt| ≤ |v|/|r|`), hence how far it can move between
    /// samples.
    pub fn max_angular_rate(&self) -> f64 {
        self.max_angular_rate
    }

    /// The instant of lattice point `k`.
    pub fn sample_time(&self, k: usize) -> JulianDate {
        self.t0.plus_seconds(k as f64 * self.step_s)
    }

    /// The raw lattice samples, one ECEF state per point (sample `k`
    /// is at [`Self::sample_time`]`(k)`). Column-sweep kernels
    /// ([`visibility`](crate::visibility)) consume these directly
    /// instead of interpolating point queries.
    pub fn samples(&self) -> &[StateEcef] {
        &self.samples
    }

    /// Probe the grid against direct SGP4 at the inter-sample midpoints
    /// (the worst case for Hermite error), at most `max_probes` of
    /// them, spread across the whole lattice.
    pub fn validate(&self, sgp4: &Sgp4, max_probes: usize) -> ValidationReport {
        let mut report = ValidationReport {
            max_position_error_km: 0.0,
            max_velocity_error_km_s: 0.0,
            probes: 0,
        };
        if self.is_empty() || max_probes == 0 {
            return report;
        }
        let intervals = self.samples.len() - 1;
        let stride = intervals.div_ceil(max_probes).max(1);
        for i in (0..intervals).step_by(stride) {
            let t = self.t0.plus_seconds((i as f64 + 0.5) * self.step_s);
            let (Some(interp), Ok(state)) = (self.state_at(t), sgp4.propagate_at(t)) else {
                continue;
            };
            let direct = teme_to_ecef(&state, t);
            let dp = (interp.position_km - direct.position_km).norm();
            let dv = (interp.velocity_km_s - direct.velocity_km_s).norm();
            report.max_position_error_km = report.max_position_error_km.max(dp);
            report.max_velocity_error_km_s = report.max_velocity_error_km_s.max(dv);
            report.probes += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Elements;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn leo(alt_km: f64, incl_deg: f64) -> Sgp4 {
        Elements::circular(alt_km, incl_deg, epoch())
            .to_sgp4()
            .unwrap()
    }

    #[test]
    fn interpolation_is_sub_metre_at_default_step() {
        let sgp4 = leo(550.0, 97.6);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 1.0);
        assert!((grid.step_s() - DEFAULT_STEP_S).abs() < 1e-12);
        // Probe every 37 s (never on-lattice) across the window.
        let mut worst = 0.0_f64;
        let mut t = epoch();
        while t < epoch() + 1.0 {
            let interp = grid.state_at(t).expect("in-window query");
            let direct = teme_to_ecef(&sgp4.propagate_at(t).unwrap(), t);
            worst = worst.max((interp.position_km - direct.position_km).norm());
            t = t.plus_seconds(37.0);
        }
        assert!(worst < 1e-3, "worst position error {} km", worst);
    }

    #[test]
    fn on_sample_queries_match_direct_propagation() {
        // On-lattice queries reproduce the stored samples exactly in
        // exact arithmetic (the Hermite basis is interpolatory); in
        // practice `JulianDate` time arithmetic quantises the query
        // instant to ~50 µs ≈ 0.4 m of along-track motion, which is
        // the floor here — still sub-metre.
        let sgp4 = leo(700.0, 55.0);
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 0.25);
        for k in [0, 1, 7, grid.len() - 2, grid.len() - 1] {
            let t = grid.sample_time(k);
            let interp = grid.state_at(t).expect("lattice point");
            let direct = teme_to_ecef(&sgp4.propagate_at(t).unwrap(), t);
            assert!((interp.position_km - direct.position_km).norm() < 1e-3);
            assert!((interp.velocity_km_s - direct.velocity_km_s).norm() < 1e-5);
        }
    }

    #[test]
    fn window_edges_are_covered_with_padding() {
        let sgp4 = leo(550.0, 97.6);
        let start = epoch();
        let end = epoch() + 1.0;
        let grid = EphemerisGrid::build(&sgp4, start, end);
        // The scan window itself, its exact edges, and the 1 s Doppler
        // look-ahead past LOS are all on-grid…
        for t in [
            start,
            end,
            start.plus_seconds(-DEFAULT_STEP_S),
            end.plus_seconds(1.0),
            end.plus_seconds(2.0 * DEFAULT_STEP_S - 1.0),
        ] {
            assert!(grid.state_at(t).is_some(), "uncovered t = {:?}", t);
        }
        // …while far-outside queries answer None instead of extrapolating.
        assert!(grid.state_at(start.plus_seconds(-1_000.0)).is_none());
        assert!(grid.state_at(end.plus_seconds(1_000.0)).is_none());
    }

    #[test]
    fn degenerate_windows_build_empty_grids() {
        let sgp4 = leo(550.0, 97.6);
        for (s, e) in [
            (epoch(), epoch()),
            (epoch() + 1.0, epoch()),
            (JulianDate(f64::NAN), epoch()),
            (epoch(), JulianDate(f64::INFINITY)),
        ] {
            let grid = EphemerisGrid::build(&sgp4, s, e);
            assert!(grid.is_empty());
            assert!(grid.state_at(epoch()).is_none());
        }
    }

    #[test]
    fn long_windows_widen_the_step_within_contract() {
        // A 212-day passive-campaign window would need 305 k samples at
        // 60 s; the step widens to keep the grid near the target size.
        let span = 212.0 * 86_400.0;
        let step = EphemerisGrid::step_for_span(span);
        assert!(step > DEFAULT_STEP_S && step <= MAX_STEP_S, "step {step}");
        // Short windows stay at the default cadence.
        assert_eq!(EphemerisGrid::step_for_span(86_400.0), DEFAULT_STEP_S);
    }

    #[test]
    fn validate_reports_contract_compliance() {
        let sgp4 = leo(440.0, 97.61); // The lowest Table-3 shell.
        let grid = EphemerisGrid::build(&sgp4, epoch(), epoch() + 2.0);
        let report = grid.validate(&sgp4, 256);
        assert!(report.probes > 0);
        assert!(
            report.within_contract(),
            "position error {} km breaks the contract",
            report.max_position_error_km
        );
        // At the default step the real error is ~3 orders tighter than
        // the contract constant.
        assert!(report.max_position_error_km < 1e-3);
    }

    #[test]
    fn mode_parses_the_environment_values() {
        // The cached global is process-wide; test the pure parse shape
        // by exercising set_mode/mode round-trips instead.
        for m in [
            EphemerisMode::Off,
            EphemerisMode::Validate,
            EphemerisMode::On,
        ] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(EphemerisMode::On);
    }
}
