//! A from-scratch implementation of the SGP4 analytical orbit propagator.
//!
//! This follows the near-earth branch of the algorithm described in
//! Spacetrack Report #3 (Hoots & Roehrich, 1980) as revised by Vallado,
//! Crawford, Hujsak & Kelso, *"Revisiting Spacetrack Report #3"* (AIAA
//! 2006-6753) — the reference the reproduced paper itself cites for
//! contact-window prediction. WGS-72 gravitational constants are used, as
//! in the reference implementation, so the classic test vectors apply.
//!
//! The deep-space branch (SDP4, periods ≥ 225 min) is deliberately
//! unimplemented: every IoT constellation in the study orbits at
//! 440–900 km (periods ≈ 93–103 min). Deep-space element sets are rejected
//! at construction time with a typed error.
//!
//! Output states are in the TEME (True Equator, Mean Equinox) inertial
//! frame, in km and km/s; see [`crate::frames`] for conversion to
//! Earth-fixed and geodetic coordinates.

use crate::error::OrbitError;
use crate::time::JulianDate;
use crate::tle::Tle;
use crate::vec3::Vec3;

use core::f64::consts::TAU;
use satiot_obs::metrics::{Counter, Histogram};

/// Total [`Sgp4::propagate`] invocations (metrics).
static PROPAGATE_CALLS: Counter = Counter::new("orbit.sgp4.propagate_calls");
// The `orbit.sgp4.propagations` proof counter: a plain always-on atomic
// (unlike the metrics-gated counter above) so benchmark harnesses can
// verify SGP4-call savings without enabling the whole metrics registry.
// A relaxed fetch_add is ~1 ns against the ~1 µs propagation itself.
static PROPAGATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total propagations performed by this process (the always-on
/// `orbit.sgp4.propagations` counter; see [`reset_propagations`]).
pub fn propagations() -> u64 {
    PROPAGATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Zero the [`propagations`] counter (benchmark phase boundaries).
pub fn reset_propagations() {
    PROPAGATIONS.store(0, std::sync::atomic::Ordering::Relaxed);
}
/// Newton iterations Kepler's equation needed per propagation (metrics).
static KEPLER_ITERATIONS: Histogram = Histogram::new(
    "orbit.sgp4.kepler_iterations",
    &[1.0, 2.0, 3.0, 5.0, 8.0, 10.0],
);

/// WGS-72 gravitational parameter, km³/s².
pub const MU_KM3_S2: f64 = 398_600.8;
/// WGS-72 Earth equatorial radius, km.
pub const EARTH_RADIUS_KM: f64 = 6_378.135;
/// √(μ)/√(Re³) expressed per minute (the `ke` constant).
pub const XKE: f64 = 0.074_366_916_133_173_4;
/// Second zonal harmonic J₂ (WGS-72).
pub const J2: f64 = 0.001_082_616;
/// Third zonal harmonic J₃ (WGS-72).
pub const J3: f64 = -0.000_002_538_81;
/// Fourth zonal harmonic J₄ (WGS-72).
pub const J4: f64 = -0.000_001_655_97;

const X2O3: f64 = 2.0 / 3.0;

/// A propagated state in the TEME inertial frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateTeme {
    /// Position, km.
    pub position_km: Vec3,
    /// Velocity, km/s.
    pub velocity_km_s: Vec3,
    /// Minutes since the element-set epoch at which this state holds.
    pub tsince_min: f64,
}

/// An initialised SGP4 propagator for one element set.
///
/// Construction performs the (comparatively expensive) initialisation of
/// all secular and periodic coefficients; [`Sgp4::propagate`] is then cheap
/// (≈ a microsecond) and can be called millions of times, which the
/// campaign simulators rely on.
#[derive(Debug, Clone)]
pub struct Sgp4 {
    // Elements.
    ecco: f64,
    inclo: f64,
    nodeo: f64,
    argpo: f64,
    mo: f64,
    no_unkozai: f64,
    bstar: f64,
    /// Element-set epoch.
    pub epoch: JulianDate,

    // Derived init constants.
    isimp: bool,
    aycof: f64,
    con41: f64,
    cc1: f64,
    cc4: f64,
    cc5: f64,
    d2: f64,
    d3: f64,
    d4: f64,
    delmo: f64,
    eta: f64,
    argpdot: f64,
    omgcof: f64,
    sinmao: f64,
    t2cof: f64,
    t3cof: f64,
    t4cof: f64,
    t5cof: f64,
    x1mth2: f64,
    x7thm1: f64,
    mdot: f64,
    nodedot: f64,
    xlcof: f64,
    xmcof: f64,
    nodecf: f64,
}

impl Sgp4 {
    /// Initialise the propagator from a parsed TLE.
    ///
    /// # Errors
    ///
    /// * [`OrbitError::DeepSpaceUnsupported`] if the un-Kozai'd period is
    ///   ≥ 225 minutes (SDP4 territory).
    /// * [`OrbitError::EccentricityOutOfRange`] for pathological elements.
    pub fn new(tle: &Tle) -> Result<Sgp4, OrbitError> {
        Self::from_elements(
            tle.mean_motion_rad_min,
            tle.eccentricity,
            tle.inclination_rad,
            tle.raan_rad,
            tle.arg_perigee_rad,
            tle.mean_anomaly_rad,
            tle.bstar,
            tle.epoch,
        )
    }

    /// Initialise directly from mean elements (Kozai mean motion in
    /// rad/min, angles in radians). Used by the synthetic-constellation
    /// builder to skip TLE round-trips in hot paths.
    #[allow(clippy::too_many_arguments)]
    pub fn from_elements(
        no_kozai: f64,
        ecco: f64,
        inclo: f64,
        nodeo: f64,
        argpo: f64,
        mo: f64,
        bstar: f64,
        epoch: JulianDate,
    ) -> Result<Sgp4, OrbitError> {
        if !(0.0..1.0).contains(&ecco) {
            return Err(OrbitError::EccentricityOutOfRange { eccentricity: ecco });
        }
        if no_kozai <= 0.0 {
            return Err(OrbitError::MeanMotionNonPositive);
        }

        // ---- initl: recover the original (un-Kozai'd) mean motion. ----
        let eccsq = ecco * ecco;
        let omeosq = 1.0 - eccsq;
        let rteosq = omeosq.sqrt();
        let cosio = inclo.cos();
        let cosio2 = cosio * cosio;

        let ak = (XKE / no_kozai).powf(X2O3);
        let d1 = 0.75 * J2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
        let mut del = d1 / (ak * ak);
        let adel = ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
        del = d1 / (adel * adel);
        let no_unkozai = no_kozai / (1.0 + del);

        let period_min = TAU / no_unkozai;
        if period_min >= 225.0 {
            return Err(OrbitError::DeepSpaceUnsupported { period_min });
        }

        let ao = (XKE / no_unkozai).powf(X2O3);
        let sinio = inclo.sin();
        let po = ao * omeosq;
        let con42 = 1.0 - 5.0 * cosio2;
        let con41 = -con42 - cosio2 - cosio2;
        let posq = po * po;
        let rp = ao * (1.0 - ecco);

        // ---- sgp4init: drag and secular coefficients. ----
        let isimp = rp < 220.0 / EARTH_RADIUS_KM + 1.0;

        let mut sfour = 78.0 / EARTH_RADIUS_KM + 1.0;
        let mut qzms24 = ((120.0 - 78.0) / EARTH_RADIUS_KM).powi(4);
        let perige = (rp - 1.0) * EARTH_RADIUS_KM;
        if perige < 156.0 {
            sfour = perige - 78.0;
            if perige < 98.0 {
                sfour = 20.0;
            }
            qzms24 = ((120.0 - sfour) / EARTH_RADIUS_KM).powi(4);
            sfour = sfour / EARTH_RADIUS_KM + 1.0;
        }
        let pinvsq = 1.0 / posq;

        let tsi = 1.0 / (ao - sfour);
        let eta = ao * ecco * tsi;
        let etasq = eta * eta;
        let eeta = ecco * eta;
        let psisq = (1.0 - etasq).abs();
        let coef = qzms24 * tsi.powi(4);
        let coef1 = coef / psisq.powf(3.5);
        let cc2 = coef1
            * no_unkozai
            * (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
                + 0.375 * J2 * tsi / psisq * con41 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
        let cc1 = bstar * cc2;
        let mut cc3 = 0.0;
        if ecco > 1.0e-4 {
            cc3 = -2.0 * coef * tsi * (J3 / J2) * no_unkozai * sinio / ecco;
        }
        let x1mth2 = 1.0 - cosio2;
        let cc4 = 2.0
            * no_unkozai
            * coef1
            * ao
            * omeosq
            * (eta * (2.0 + 0.5 * etasq) + ecco * (0.5 + 2.0 * etasq)
                - J2 * tsi / (ao * psisq)
                    * (-3.0 * con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                        + 0.75
                            * x1mth2
                            * (2.0 * etasq - eeta * (1.0 + etasq))
                            * (2.0 * argpo).cos()));
        let cc5 = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

        let cosio4 = cosio2 * cosio2;
        let temp1 = 1.5 * J2 * pinvsq * no_unkozai;
        let temp2 = 0.5 * temp1 * J2 * pinvsq;
        let temp3 = -0.46875 * J4 * pinvsq * pinvsq * no_unkozai;
        let mdot = no_unkozai
            + 0.5 * temp1 * rteosq * con41
            + 0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
        let argpdot = -0.5 * temp1 * con42
            + 0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4)
            + temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
        let xhdot1 = -temp1 * cosio;
        let nodedot = xhdot1
            + (0.5 * temp2 * (4.0 - 19.0 * cosio2) + 2.0 * temp3 * (3.0 - 7.0 * cosio2)) * cosio;

        let omgcof = bstar * cc3 * argpo.cos();
        let mut xmcof = 0.0;
        if ecco > 1.0e-4 {
            xmcof = -X2O3 * coef * bstar / eeta;
        }
        let nodecf = 3.5 * omeosq * xhdot1 * cc1;
        let t2cof = 1.5 * cc1;

        // Long-period coefficients; guard the (i ≈ 180°) singularity.
        let xlcof = if (cosio + 1.0).abs() > 1.5e-12 {
            -0.25 * (J3 / J2) * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio)
        } else {
            -0.25 * (J3 / J2) * sinio * (3.0 + 5.0 * cosio) / 1.5e-12
        };
        let aycof = -0.5 * (J3 / J2) * sinio;

        let delmo = (1.0 + eta * mo.cos()).powi(3);
        let sinmao = mo.sin();
        let x7thm1 = 7.0 * cosio2 - 1.0;

        let (mut d2, mut d3, mut d4) = (0.0, 0.0, 0.0);
        let (mut t3cof, mut t4cof, mut t5cof) = (0.0, 0.0, 0.0);
        if !isimp {
            let cc1sq = cc1 * cc1;
            d2 = 4.0 * ao * tsi * cc1sq;
            let temp = d2 * tsi * cc1 / 3.0;
            d3 = (17.0 * ao + sfour) * temp;
            d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1;
            t3cof = d2 + 2.0 * cc1sq;
            t4cof = 0.25 * (3.0 * d3 + cc1 * (12.0 * d2 + 10.0 * cc1sq));
            t5cof = 0.2
                * (3.0 * d4 + 12.0 * cc1 * d3 + 6.0 * d2 * d2 + 15.0 * cc1sq * (2.0 * d2 + cc1sq));
        }

        Ok(Sgp4 {
            ecco,
            inclo,
            nodeo,
            argpo,
            mo,
            no_unkozai,
            bstar,
            epoch,
            isimp,
            aycof,
            con41,
            cc1,
            cc4,
            cc5,
            d2,
            d3,
            d4,
            delmo,
            eta,
            argpdot,
            omgcof,
            sinmao,
            t2cof,
            t3cof,
            t4cof,
            t5cof,
            x1mth2,
            x7thm1,
            mdot,
            nodedot,
            xlcof,
            xmcof,
            nodecf,
        })
    }

    /// Orbital period of the un-Kozai'd mean motion, minutes.
    pub fn period_min(&self) -> f64 {
        TAU / self.no_unkozai
    }

    /// Mean inclination of the element set, radians.
    ///
    /// The spatial pre-cull ([`crate::cull`]) bounds the satellite's
    /// reachable latitude band from this without propagating.
    pub fn inclination_rad(&self) -> f64 {
        self.inclo
    }

    /// Mean eccentricity of the element set.
    pub fn eccentricity(&self) -> f64 {
        self.ecco
    }

    /// Brouwer-mean semi-major axis implied by the un-Kozai'd mean
    /// motion, km.
    pub fn semi_major_axis_km(&self) -> f64 {
        (XKE / self.no_unkozai).powf(X2O3) * EARTH_RADIUS_KM
    }

    /// Mean apogee radius `a·(1+e)`, km from the geocentre.
    ///
    /// An upper bound (to within short-period J₂ oscillations — callers
    /// pad, see [`crate::cull::RADIUS_PAD_KM`]) on how far from Earth's
    /// centre the propagated satellite can be, and therefore on its
    /// visibility-cone half-angle.
    pub fn apogee_radius_km(&self) -> f64 {
        self.semi_major_axis_km() * (1.0 + self.ecco)
    }

    /// Propagate to `tsince_min` minutes after the element-set epoch.
    ///
    /// Returns the TEME position/velocity, or a typed error if the element
    /// set degenerates (eccentricity blow-up, decay, …) at this offset.
    pub fn propagate(&self, tsince_min: f64) -> Result<StateTeme, OrbitError> {
        PROPAGATE_CALLS.inc();
        PROPAGATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let t = tsince_min;

        // ---- Secular gravity and atmospheric drag. ----
        let xmdf = self.mo + self.mdot * t;
        let argpdf = self.argpo + self.argpdot * t;
        let nodedf = self.nodeo + self.nodedot * t;
        let mut argpm = argpdf;
        let mut mm = xmdf;
        let t2 = t * t;
        let mut nodem = nodedf + self.nodecf * t2;
        let mut tempa = 1.0 - self.cc1 * t;
        let mut tempe = self.bstar * self.cc4 * t;
        let mut templ = self.t2cof * t2;

        if !self.isimp {
            let delomg = self.omgcof * t;
            let delmtemp = 1.0 + self.eta * xmdf.cos();
            let delm = self.xmcof * (delmtemp.powi(3) - self.delmo);
            let temp = delomg + delm;
            mm = xmdf + temp;
            argpm = argpdf - temp;
            let t3 = t2 * t;
            let t4 = t3 * t;
            tempa = tempa - self.d2 * t2 - self.d3 * t3 - self.d4 * t4;
            tempe += self.bstar * self.cc5 * (mm.sin() - self.sinmao);
            templ = templ + self.t3cof * t3 + t4 * (self.t4cof + t * self.t5cof);
        }

        let mut nm = self.no_unkozai;
        let mut em = self.ecco;
        let inclm = self.inclo;
        if nm <= 0.0 {
            return Err(OrbitError::MeanMotionNonPositive);
        }
        let am = (XKE / nm).powf(X2O3) * tempa * tempa;
        nm = XKE / am.powf(1.5);
        em -= tempe;
        #[allow(clippy::manual_range_contains)] // Mirrors the reference SGP4 code.
        if em >= 1.0 || em < -0.001 {
            return Err(OrbitError::EccentricityOutOfRange { eccentricity: em });
        }
        if em < 1.0e-6 {
            em = 1.0e-6;
        }
        mm += self.no_unkozai * templ;
        let mut xlm = mm + argpm + nodem;

        nodem %= TAU;
        argpm %= TAU;
        xlm %= TAU;
        mm = (xlm - argpm - nodem) % TAU;

        // ---- Long-period periodics. ----
        let ep = em;
        let xincp = inclm;
        let argpp = argpm;
        let nodep = nodem;
        let mp = mm;
        let sinip = xincp.sin();
        let cosip = xincp.cos();

        let axnl = ep * argpp.cos();
        let temp = 1.0 / (am * (1.0 - ep * ep));
        let aynl = ep * argpp.sin() + temp * self.aycof;
        let xl = mp + argpp + nodep + temp * self.xlcof * axnl;

        // ---- Kepler's equation (modified for long-period terms). ----
        let u = (xl - nodep) % TAU;
        let mut eo1 = u;
        let mut tem5: f64 = 9999.9;
        let mut ktr = 1;
        let mut sineo1 = eo1.sin();
        let mut coseo1 = eo1.cos();
        while tem5.abs() >= 1.0e-12 && ktr <= 10 {
            sineo1 = eo1.sin();
            coseo1 = eo1.cos();
            tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
            tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
            if tem5.abs() >= 0.95 {
                tem5 = 0.95 * tem5.signum();
            }
            eo1 += tem5;
            ktr += 1;
        }
        KEPLER_ITERATIONS.record(ktr as f64 - 1.0);

        // ---- Short-period preliminary quantities. ----
        let ecose = axnl * coseo1 + aynl * sineo1;
        let esine = axnl * sineo1 - aynl * coseo1;
        let el2 = axnl * axnl + aynl * aynl;
        let pl = am * (1.0 - el2);
        if pl < 0.0 {
            return Err(OrbitError::SemiLatusRectumNegative);
        }

        let rl = am * (1.0 - ecose);
        let rdotl = am.sqrt() * esine / rl;
        let rvdotl = pl.sqrt() / rl;
        let betal = (1.0 - el2).sqrt();
        let temp = esine / (1.0 + betal);
        let sinu = am / rl * (sineo1 - aynl - axnl * temp);
        let cosu = am / rl * (coseo1 - axnl + aynl * temp);
        let su = sinu.atan2(cosu);
        let sin2u = (cosu + cosu) * sinu;
        let cos2u = 1.0 - 2.0 * sinu * sinu;
        let temp = 1.0 / pl;
        let temp1 = 0.5 * J2 * temp;
        let temp2 = temp1 * temp;

        // ---- Short-period periodics. ----
        let mrt = rl * (1.0 - 1.5 * temp2 * betal * self.con41) + 0.5 * temp1 * self.x1mth2 * cos2u;
        let su = su - 0.25 * temp2 * self.x7thm1 * sin2u;
        let xnode = nodep + 1.5 * temp2 * cosip * sin2u;
        let xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
        let mvt = rdotl - nm * temp1 * self.x1mth2 * sin2u / XKE;
        let rvdot = rvdotl + nm * temp1 * (self.x1mth2 * cos2u + 1.5 * self.con41) / XKE;

        // ---- Orientation vectors and final state. ----
        let sinsu = su.sin();
        let cossu = su.cos();
        let snod = xnode.sin();
        let cnod = xnode.cos();
        let sini = xinc.sin();
        let cosi = xinc.cos();
        let xmx = -snod * cosi;
        let xmy = cnod * cosi;
        let ux = xmx * sinsu + cnod * cossu;
        let uy = xmy * sinsu + snod * cossu;
        let uz = sini * sinsu;
        let vx = xmx * cossu - cnod * sinsu;
        let vy = xmy * cossu - snod * sinsu;
        let vz = sini * cossu;

        if mrt < 1.0 {
            return Err(OrbitError::Decayed { tsince_min: t });
        }

        let vkmpersec = EARTH_RADIUS_KM * XKE / 60.0;
        let position_km = Vec3::new(ux, uy, uz) * (mrt * EARTH_RADIUS_KM);
        let velocity_km_s =
            (Vec3::new(ux, uy, uz) * mvt + Vec3::new(vx, vy, vz) * rvdot) * vkmpersec;

        Ok(StateTeme {
            position_km,
            velocity_km_s,
            tsince_min: t,
        })
    }

    /// Propagate to an absolute instant.
    pub fn propagate_at(&self, when: JulianDate) -> Result<StateTeme, OrbitError> {
        self.propagate(when.minutes_since(self.epoch))
    }
}

#[cfg(test)]
#[allow(clippy::inconsistent_digit_grouping)] // Reference vectors keep their published digits.
mod tests {
    use super::*;
    use crate::tle::Tle;

    const L1: &str = "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87";
    const L2: &str = "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058";

    fn classic() -> Sgp4 {
        Sgp4::new(&Tle::parse_lines(L1, L2).unwrap()).unwrap()
    }

    /// Reference ephemeris from Spacetrack Report #3 (WGS-72).
    /// Position tolerance of 50 m comfortably distinguishes a correct
    /// implementation (agrees to metres) from a broken one (off by km).
    #[test]
    fn spacetrack_report_3_test_case() {
        let cases: &[(f64, [f64; 3], [f64; 3])] = &[
            (
                0.0,
                [2328.970_489_51, -5995.220_764_16, 1719.970_672_61],
                [2.912_072_30, -0.983_415_46, -7.090_817_03],
            ),
            (
                360.0,
                [2456.107_055_66, -6071.938_537_60, 1222.897_277_83],
                [2.679_389_92, -0.448_290_41, -7.228_792_31],
            ),
            (
                720.0,
                [2567.561_950_68, -6112.503_845_22, 713.963_974_00],
                [2.440_245_99, 0.098_108_69, -7.319_959_16],
            ),
            (
                1080.0,
                [2663.090_789_80, -6115.482_299_80, 196.398_757_94],
                [2.196_119_58, 0.652_419_95, -7.362_824_32],
            ),
            (
                1440.0,
                [2742.551_330_57, -6079.671_447_75, -326.380_958_56],
                [1.948_502_29, 1.211_062_51, -7.356_193_72],
            ),
        ];
        let sgp4 = classic();
        for (t, r_ref, v_ref) in cases {
            let s = sgp4.propagate(*t).unwrap();
            let dr = (s.position_km - Vec3::new(r_ref[0], r_ref[1], r_ref[2])).norm();
            let dv = (s.velocity_km_s - Vec3::new(v_ref[0], v_ref[1], v_ref[2])).norm();
            assert!(dr < 0.05, "t={t}: position off by {dr} km");
            assert!(dv < 5e-4, "t={t}: velocity off by {dv} km/s");
        }
    }

    #[test]
    fn rejects_deep_space_elements() {
        // A 12-hour Molniya-type orbit (period 720 min ≥ 225 min).
        let no_kozai = TAU / 720.0;
        let err = Sgp4::from_elements(
            no_kozai,
            0.7,
            63.4_f64.to_radians(),
            0.0,
            270.0_f64.to_radians(),
            0.0,
            0.0,
            JulianDate::from_calendar(2024, 1, 1, 0, 0, 0.0),
        )
        .unwrap_err();
        match err {
            OrbitError::DeepSpaceUnsupported { period_min } => {
                assert!((period_min - 720.0).abs() < 1.0);
            }
            other => panic!("expected DeepSpaceUnsupported, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_eccentricity() {
        let err = Sgp4::from_elements(
            0.06,
            1.5,
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
            JulianDate::from_calendar(2024, 1, 1, 0, 0, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, OrbitError::EccentricityOutOfRange { .. }));
    }

    #[test]
    fn radius_stays_in_leo_band() {
        let sgp4 = classic();
        // Perigee ≈ 6640 km, apogee ≈ 6750 km for this element set; allow
        // generous drag drift over a day.
        for i in 0..1440 {
            let s = sgp4.propagate(i as f64).unwrap();
            let r = s.position_km.norm();
            assert!((6500.0..6900.0).contains(&r), "t={i}: r={r}");
        }
    }

    #[test]
    fn velocity_matches_vis_viva() {
        // v² ≈ μ(2/r − 1/a) to within the J2 perturbation scale.
        let sgp4 = classic();
        let a = (XKE / sgp4.no_unkozai).powf(X2O3) * EARTH_RADIUS_KM;
        for t in [0.0, 45.0, 200.0, 777.5] {
            let s = sgp4.propagate(t).unwrap();
            let r = s.position_km.norm();
            let v2 = s.velocity_km_s.norm_sq();
            let vis_viva = MU_KM3_S2 * (2.0 / r - 1.0 / a);
            let rel = (v2 - vis_viva).abs() / vis_viva;
            assert!(rel < 5e-3, "t={t}: rel error {rel}");
        }
    }

    #[test]
    fn angular_momentum_direction_is_stable_over_one_orbit() {
        let sgp4 = classic();
        let s0 = sgp4.propagate(0.0).unwrap();
        let h0 = s0.position_km.cross(s0.velocity_km_s).normalized().unwrap();
        let period = sgp4.period_min();
        for k in 1..=8 {
            let s = sgp4.propagate(period * k as f64 / 8.0).unwrap();
            let h = s.position_km.cross(s.velocity_km_s).normalized().unwrap();
            // J2 precesses the node slowly; within one orbit drift is tiny.
            assert!(h.dot(h0) > 0.999, "k={k}: h·h0 = {}", h.dot(h0));
        }
    }

    #[test]
    fn propagate_at_uses_epoch() {
        let sgp4 = classic();
        let s0 = sgp4.propagate(0.0).unwrap();
        let s1 = sgp4.propagate_at(sgp4.epoch).unwrap();
        assert!((s0.position_km - s1.position_km).norm() < 1e-9);
        let s2 = sgp4.propagate_at(sgp4.epoch.plus_minutes(90.0)).unwrap();
        let s3 = sgp4.propagate(90.0).unwrap();
        assert!((s2.position_km - s3.position_km).norm() < 1e-9);
    }

    #[test]
    fn period_matches_mean_motion() {
        let sgp4 = classic();
        // 16.058 rev/day → ~89.7 min period.
        assert!((sgp4.period_min() - 1440.0 / 16.058_245_18).abs() < 0.1);
    }

    #[test]
    fn low_perigee_triggers_simple_mode() {
        // Circular orbit at ~180 km: rp < 220 km ⇒ isimp.
        let n = mean_motion_for_altitude(180.0);
        let sgp4 = Sgp4::from_elements(
            n,
            0.0001,
            51.6_f64.to_radians(),
            0.0,
            0.0,
            0.0,
            1e-4,
            JulianDate::from_calendar(2024, 1, 1, 0, 0, 0.0),
        )
        .unwrap();
        assert!(sgp4.isimp);
        // Still propagates sanely for a few orbits.
        let s = sgp4.propagate(180.0).unwrap();
        assert!(s.position_km.norm() > 6400.0);
    }

    /// Kozai-ish mean motion (rad/min) for a circular orbit at `alt` km.
    fn mean_motion_for_altitude(alt: f64) -> f64 {
        let a = EARTH_RADIUS_KM + alt;
        (MU_KM3_S2 / (a * a * a)).sqrt() * 60.0
    }

    #[test]
    fn backwards_propagation_works() {
        let sgp4 = classic();
        let s = sgp4.propagate(-120.0).unwrap();
        assert!(s.position_km.norm() > 6400.0);
        assert_eq!(s.tsince_min, -120.0);
    }
}

#[cfg(test)]
#[allow(clippy::inconsistent_digit_grouping)]
mod eccentric_tests {
    use super::*;
    use crate::tle::Tle;

    /// Vallado's distribution test case #00005 (the 1958-002B object):
    /// a *highly eccentric* near-earth orbit (e = 0.186) that exercises
    /// the long-period and Kepler-solver paths our near-circular
    /// constellation tests barely touch. Reference states from the
    /// "Revisiting Spacetrack Report #3" verification output; the
    /// tolerance is loose enough to absorb last-digit transcription
    /// drift while still catching any real algorithmic error (which
    /// shows up as tens of km on this orbit).
    #[test]
    fn vallado_case_00005_eccentric_orbit() {
        let l1 = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
        let l2 = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";
        let tle = Tle::parse_lines(l1, l2).expect("distribution TLE parses");
        assert!((tle.eccentricity - 0.185_966_7).abs() < 1e-9);
        let sgp4 = Sgp4::new(&tle).expect("near-earth (period ≈ 133 min)");
        assert!((sgp4.period_min() - 1_440.0 / 10.824_191_57).abs() < 0.5);

        let s0 = sgp4.propagate(0.0).unwrap();
        let r0_ref = Vec3::new(7_022.465_292_66, -1_400.082_967_55, 0.039_951_55);
        let v0_ref = Vec3::new(1.893_841_015, 6.405_893_759, 4.534_807_250);
        assert!(
            (s0.position_km - r0_ref).norm() < 1.0,
            "t=0 position off by {} km",
            (s0.position_km - r0_ref).norm()
        );
        assert!((s0.velocity_km_s - v0_ref).norm() < 1e-2);

        let s360 = sgp4.propagate(360.0).unwrap();
        let r360_ref = Vec3::new(-7_154.031_202_02, -3_783.176_825_04, -3_536.194_122_94);
        assert!(
            (s360.position_km - r360_ref).norm() < 2.0,
            "t=360 position off by {} km",
            (s360.position_km - r360_ref).norm()
        );

        // Physical invariants across a full day of the eccentric orbit:
        // radius swings between perigee and apogee, and vis-viva holds.
        let a = (XKE / tle.mean_motion_rad_min).powf(2.0 / 3.0) * EARTH_RADIUS_KM;
        let mut r_min = f64::MAX;
        let mut r_max = 0.0_f64;
        for t in 0..1_440 {
            let s = sgp4.propagate(t as f64).unwrap();
            let r = s.position_km.norm();
            r_min = r_min.min(r);
            r_max = r_max.max(r);
            let vis_viva = MU_KM3_S2 * (2.0 / r - 1.0 / a);
            assert!(
                (s.velocity_km_s.norm_sq() - vis_viva).abs() / vis_viva < 0.02,
                "vis-viva violated at t={t}"
            );
        }
        // e = 0.186: apogee/perigee ratio ≈ (1+e)/(1−e) ≈ 1.46.
        assert!(
            (r_max / r_min - 1.456).abs() < 0.03,
            "ratio {}",
            r_max / r_min
        );
    }
}
