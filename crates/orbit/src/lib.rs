//! # satiot-orbit
//!
//! Orbital-mechanics substrate for the satiot toolkit.
//!
//! This crate implements everything needed to turn a Two-Line Element set
//! (TLE) into the ground-truth geometry a satellite-IoT measurement study
//! depends on:
//!
//! * [`time`] — Julian dates, TLE epochs, and Greenwich sidereal time.
//! * [`tle`] — TLE parsing, checksum validation, and formatting (the
//!   formatter is used by `satiot-scenarios` to emit synthetic catalogs).
//! * [`sgp4`] — a from-scratch implementation of the SGP4 analytical
//!   propagator (WGS-72 constants, near-earth branch, including the
//!   low-perigee "simple drag" mode), validated against the classic
//!   Spacetrack Report #3 test vectors.
//! * [`frames`] — TEME → ECEF rotation, WGS-84 geodetic conversions.
//! * [`topo`] — topocentric look angles (azimuth, elevation, slant range,
//!   range-rate) and Doppler shift for a ground observer.
//! * [`pass`] — contact-window (pass) prediction via coarse search plus
//!   bisection refinement of AOS/LOS times.
//! * [`ephemeris`] — per-satellite precomputed ECEF grids with cubic
//!   Hermite interpolation, so multi-site sweeps propagate each
//!   satellite once instead of once per observer.
//! * [`visibility`] — chunked, auto-vectorisable horizon-margin
//!   kernels that sweep ephemeris-grid columns for all observers of
//!   one satellite and emit only sign-change windows for refinement.
//! * [`cull`] — conservative spatial pre-culling of (site, satellite)
//!   pairs (latitude-band reachability plus a footprint-cone scan over
//!   raw grid samples), with always-on proof counters, so
//!   mega-constellation sweeps cost O(visible pairs).
//! * [`elements`] — Keplerian element helpers and a builder for synthetic
//!   TLEs (circular-ish shells at a given altitude/inclination).
//! * [`sun`] — a low-precision solar ephemeris: daylight fractions for
//!   the energy model's harvesting extension and LEO eclipse checks.
//!
//! Deep-space propagation (SDP4) is intentionally **not** implemented:
//! every satellite measured by the reproduced paper is LEO with an orbital
//! period well under 225 minutes. [`sgp4::Sgp4::new`] returns
//! [`OrbitError::DeepSpaceUnsupported`] rather than silently
//! mis-propagating a deep-space object.
//!
//! ## Quick example
//!
//! ```
//! use satiot_orbit::{tle::Tle, sgp4::Sgp4};
//!
//! // The classic Spacetrack Report #3 test element set.
//! let tle = Tle::parse_lines(
//!     "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87",
//!     "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058",
//! ).unwrap();
//! let sgp4 = Sgp4::new(&tle).unwrap();
//! let state = sgp4.propagate(0.0).unwrap();
//! assert!(state.position_km.norm() > 6500.0);
//! ```

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cull;
pub mod elements;
pub mod ephemeris;
pub mod error;
pub mod frames;
pub mod pass;
pub mod sgp4;
pub mod sun;
pub mod time;
pub mod tle;
pub mod topo;
pub mod vec3;
pub mod visibility;

pub use ephemeris::EphemerisGrid;
pub use error::OrbitError;
pub use frames::Geodetic;
pub use pass::{Pass, PassPredictor};
pub use sgp4::{Sgp4, StateTeme};
pub use time::JulianDate;
pub use tle::Tle;
pub use vec3::Vec3;
pub use visibility::VisibilityMode;

/// Speed of light in km/s, used for Doppler computations.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;
