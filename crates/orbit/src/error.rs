//! Typed errors for the orbit crate.

use core::fmt;

/// Errors produced while parsing TLEs or propagating orbits.
#[derive(Debug, Clone, PartialEq)]
pub enum OrbitError {
    /// A TLE line had the wrong length, a bad line number, or a field that
    /// failed to parse. The payload names the offending field.
    TleFormat {
        /// Which field failed (e.g. `"inclination"`).
        field: &'static str,
        /// 1-based TLE line number (1 or 2).
        line: u8,
    },
    /// The modulo-10 checksum in column 69 did not match.
    TleChecksum {
        /// 1-based TLE line number (1 or 2).
        line: u8,
        /// Checksum computed from the line body.
        computed: u8,
        /// Checksum stated in the line.
        stated: u8,
    },
    /// The two lines carry different satellite catalog numbers.
    TleCatalogMismatch,
    /// The element set describes a deep-space orbit (period ≥ 225 min),
    /// which requires SDP4. All satellites in the reproduced study are LEO,
    /// so SDP4 is intentionally unsupported.
    DeepSpaceUnsupported {
        /// Orbital period implied by the element set, in minutes.
        period_min: f64,
    },
    /// Mean eccentricity drifted outside `[1e-6, 1)` during propagation
    /// (SGP4 error 1).
    EccentricityOutOfRange {
        /// The offending eccentricity value.
        eccentricity: f64,
    },
    /// Mean motion became non-positive during propagation (SGP4 error 2).
    MeanMotionNonPositive,
    /// The semi-latus rectum went negative during propagation (SGP4
    /// error 4); the element set is unusable at this time offset.
    SemiLatusRectumNegative,
    /// The satellite has decayed: the propagated radius fell below the
    /// Earth's surface (SGP4 error 6).
    Decayed {
        /// Minutes since epoch at which decay was detected.
        tsince_min: f64,
    },
    /// Elements handed to the synthetic-TLE builder were out of range
    /// (e.g. negative altitude, eccentricity ≥ 1).
    InvalidElements {
        /// Which element was invalid.
        field: &'static str,
    },
    /// A pass scan was requested over a non-finite time range or
    /// elevation mask (NaN/∞ bounds would otherwise stall the coarse
    /// scan forever — NaN never advances past `end`).
    NonFiniteScan {
        /// Which scan input was non-finite (`"start"`, `"end"`, `"mask"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A moving-observer scan was handed legs that are not in
    /// chronological order (or overlap): concatenating their pass lists
    /// would break the chronological contract every consumer relies on.
    UnorderedLegs {
        /// 0-based index of the first out-of-order leg.
        index: usize,
    },
}

impl fmt::Display for OrbitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbitError::TleFormat { field, line } => {
                write!(f, "TLE line {line}: malformed field `{field}`")
            }
            OrbitError::TleChecksum {
                line,
                computed,
                stated,
            } => write!(
                f,
                "TLE line {line}: checksum mismatch (computed {computed}, stated {stated})"
            ),
            OrbitError::TleCatalogMismatch => {
                write!(f, "TLE lines 1 and 2 carry different catalog numbers")
            }
            OrbitError::DeepSpaceUnsupported { period_min } => write!(
                f,
                "deep-space orbit (period {period_min:.1} min ≥ 225 min) requires SDP4, \
                 which is out of scope for LEO IoT constellations"
            ),
            OrbitError::EccentricityOutOfRange { eccentricity } => {
                write!(f, "mean eccentricity {eccentricity} outside [1e-6, 1)")
            }
            OrbitError::MeanMotionNonPositive => write!(f, "mean motion became non-positive"),
            OrbitError::SemiLatusRectumNegative => write!(f, "semi-latus rectum went negative"),
            OrbitError::Decayed { tsince_min } => {
                write!(f, "satellite decayed at {tsince_min:.1} min since epoch")
            }
            OrbitError::InvalidElements { field } => {
                write!(f, "invalid orbital element `{field}`")
            }
            OrbitError::NonFiniteScan { field, value } => {
                write!(f, "pass scan `{field}` is non-finite ({value})")
            }
            OrbitError::UnorderedLegs { index } => {
                write!(
                    f,
                    "moving-observer leg {index} starts before the previous leg ends"
                )
            }
        }
    }
}

impl std::error::Error for OrbitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = OrbitError::DeepSpaceUnsupported { period_min: 720.0 };
        let text = err.to_string();
        assert!(text.contains("720.0"));
        assert!(text.contains("SDP4"));
    }

    #[test]
    fn checksum_error_reports_both_values() {
        let err = OrbitError::TleChecksum {
            line: 2,
            computed: 7,
            stated: 3,
        };
        let text = err.to_string();
        assert!(text.contains('7') && text.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            OrbitError::MeanMotionNonPositive,
            OrbitError::MeanMotionNonPositive
        );
        assert_ne!(
            OrbitError::MeanMotionNonPositive,
            OrbitError::SemiLatusRectumNegative
        );
    }
}
