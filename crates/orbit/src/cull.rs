//! Spatial pre-culling of (site, satellite) pairs for pass prediction.
//!
//! A mega-constellation sweep is O(sites × satellites) pair
//! predictions, but almost all of those pairs can never produce a pass
//! inside the scan window: a polar site never sees a low-inclination
//! shell at all, and over a short window most satellites' ground tracks
//! never come near most sites. This module proves such pairs empty with
//! cheap geometry — **before** any ephemeris-grid interpolation or
//! coarse elevation scan — so the campaign predict phase costs
//! O(visible pairs).
//!
//! Two conservative tests run in sequence:
//!
//! 1. **Latitude-band reachability** ([`never_in_latitude_band`], no
//!    propagation at all): the satellite's geocentric latitude is
//!    bounded by its effective inclination `min(i, π − i)` (rotating
//!    TEME → ECEF about the z-axis preserves latitude), so when the
//!    site's geocentric latitude exceeds that band by more than the
//!    visibility-cone half-angle — `|φ_site| > i_eff + λ` — the pair
//!    can never be mutually visible, over *any* window.
//! 2. **Footprint-cone scan on the coarse grid** ([`cone_clears_grid`],
//!    raw grid samples only, no interpolation): if at every stored grid
//!    sample the Earth-central angle between the satellite and the site
//!    exceeds `λ + Δ` — where `Δ` bounds how much that angle can change
//!    within one grid step — then no instant between samples can reach
//!    the cone either, and the window provably holds no pass.
//!
//! ## Margin math — why the cull is conservative
//!
//! The tests must never drop a pair with a real pass (the culled pass
//! set is asserted *bit-identical* to the unculled one in the
//! determinism smoke), so every approximation is padded in the
//! direction that keeps pairs:
//!
//! * The cone half-angle is evaluated with *exact* geocentric radii,
//!   `λ = acos(r_site/r_sat · cos ε̃) − ε̃`, with `r_sat` the maximum
//!   over the relevant radii plus [`RADIUS_PAD_KM`] (covering SGP4
//!   short-period J₂ oscillations around the Brouwer-mean apogee and
//!   interpolation overshoot between samples). λ grows with `r_sat`,
//!   so padding the radius up widens the cone.
//! * Elevation is measured from the *geodetic* horizon while the cone
//!   test uses geocentric radials; the two zeniths differ by at most
//!   ≈ 0.19° (WGS-84 deflection of the vertical radial, maximal near
//!   45° latitude). The mask is therefore reduced by
//!   [`ZENITH_DEFLECTION_RAD`] before computing λ — a *smaller* ε̃
//!   gives a *larger* λ, again widening the cone. ε̃ may go slightly
//!   negative at a 0° mask; the λ formula remains valid there.
//! * The per-step angle bound `Δ` uses the maximum `|v|/|r|` over the
//!   grid's stored ECEF samples (site direction is constant in ECEF,
//!   and `|d r̂/dt| ≤ |v|/|r|`), inflated by [`ANGULAR_RATE_PAD`] for
//!   inter-sample rate variation. If a pass touched the cone at time
//!   `t`, the sample at most one step away could have drifted only `Δ`
//!   further out — so requiring *every* sample to clear `λ + Δ` (plus
//!   [`CONE_MARGIN_RAD`]) before culling cannot hide a pass.
//! * The latitude-band test additionally pads by
//!   [`LAT_BAND_MARGIN_RAD`], covering the small short-period
//!   inclination oscillations SGP4 superimposes on the mean `inclo`.
//! * Any degenerate input (non-finite values, an uncovered window, a
//!   satellite below the site) falls through to **keep** — culling is
//!   an optimisation, never a correctness gate.
//!
//! ## Proof counters
//!
//! `orbit.cull.pairs_considered` / `pairs_culled` / `pairs_kept` are
//! always-on plain atomics in the style of `orbit.sgp4.propagations`
//! (they count even with `SATIOT_METRICS` off, because the determinism
//! smoke and `bench_report` assert on them), mirrored into the obs
//! metrics registry under the same names. `considered = culled + kept`
//! always holds; `pairs_kept` is exactly the number of pairs that went
//! on to grid interpolation, which is the quantity the committed
//! `BENCH_culling.json` proves shrinks ≥ 5× at mega-scale.

use crate::ephemeris::EphemerisGrid;
use crate::frames::Geodetic;
use crate::time::JulianDate;
use core::f64::consts::PI;
use satiot_obs::metrics::Counter;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};

/// Pad, km, added to the satellite's maximum geocentric radius before
/// computing the cone half-angle. Covers SGP4 short-period J₂ radial
/// oscillations around the Brouwer-mean ellipse (≲ 12 km in LEO),
/// cubic-Hermite overshoot between grid samples (≤ 0.05 km under the
/// grid contract), and radial drift within one coarse step.
pub const RADIUS_PAD_KM: f64 = 25.0;

/// Maximum angle between the geodetic zenith (which elevation masks are
/// measured from) and the geocentric radial, radians: ≈ 0.192° on the
/// WGS-84 ellipsoid, maximal near 45° latitude. Subtracted from the
/// mask before computing λ, which widens the cone conservatively.
pub const ZENITH_DEFLECTION_RAD: f64 = 0.0034;

/// Extra conservative margin, radians, on the latitude-band test
/// (≈ 0.5°): short-period inclination oscillations plus comfort.
pub const LAT_BAND_MARGIN_RAD: f64 = 0.0088;

/// Extra conservative margin, radians, on the cone-scan threshold
/// (≈ 0.3°) on top of the per-step motion bound `Δ`.
pub const CONE_MARGIN_RAD: f64 = 0.0053;

/// Inflation factor on the per-step angular-rate bound `max |v|/|r|`,
/// covering rate variation between the sampled instants.
pub const ANGULAR_RATE_PAD: f64 = 1.1;

/// Whether pass prediction pre-culls (site, satellite) pairs (the
/// `SATIOT_CULLING` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CullingMode {
    /// Predict every pair — the bit-identical legacy baseline
    /// (`SATIOT_CULLING=0`).
    Off,
    /// Drop provably-invisible pairs before any grid interpolation
    /// (the default). Conservative: the surviving pass set is
    /// bit-identical to [`CullingMode::Off`].
    On,
}

// Cached mode: 255 = not yet pinned.
static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

/// The process-wide culling mode. Defaults to [`CullingMode::On`] until
/// pinned with [`set_mode`]; the `SATIOT_CULLING` environment knob
/// reaches this latch through
/// `satiot_core::RunOptions::from_env().apply()` — this module never
/// reads the environment itself.
pub fn mode() -> CullingMode {
    match MODE.load(Relaxed) {
        0 => CullingMode::Off,
        _ => CullingMode::On,
    }
}

/// Pin the mode programmatically (tests and A/B harnesses that cannot
/// restart the process). Call before any campaign runs.
pub fn set_mode(m: CullingMode) {
    let code = match m {
        CullingMode::Off => 0,
        CullingMode::On => 1,
    };
    MODE.store(code, Relaxed);
}

// Always-on proof-of-work counters (plain atomics so they report even
// when `SATIOT_METRICS` is off), obs-mirrored below.
static PAIRS_CONSIDERED: AtomicU64 = AtomicU64::new(0);
static PAIRS_CULLED_LAT_BAND: AtomicU64 = AtomicU64::new(0);
static PAIRS_CULLED_CONE: AtomicU64 = AtomicU64::new(0);
static PAIRS_KEPT: AtomicU64 = AtomicU64::new(0);

/// Pairs reaching the cull decision (metrics mirror).
static OBS_CONSIDERED: Counter = Counter::new("orbit.cull.pairs_considered");
/// Pairs dropped before interpolation (metrics mirror).
static OBS_CULLED: Counter = Counter::new("orbit.cull.pairs_culled");
/// Pairs that went on to full prediction (metrics mirror).
static OBS_KEPT: Counter = Counter::new("orbit.cull.pairs_kept");

/// Snapshot of the cull proof counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CullStats {
    /// Pairs that reached the cull decision with culling on.
    pub pairs_considered: u64,
    /// Pairs dropped by the latitude-band test.
    pub pairs_culled_lat_band: u64,
    /// Pairs dropped by the footprint-cone grid scan.
    pub pairs_culled_cone: u64,
    /// Pairs that proceeded to full prediction.
    pub pairs_kept: u64,
}

impl CullStats {
    /// Total pairs culled by either test.
    pub fn pairs_culled(&self) -> u64 {
        self.pairs_culled_lat_band + self.pairs_culled_cone
    }
}

/// Read the proof counters.
pub fn stats() -> CullStats {
    CullStats {
        pairs_considered: PAIRS_CONSIDERED.load(Relaxed),
        pairs_culled_lat_band: PAIRS_CULLED_LAT_BAND.load(Relaxed),
        pairs_culled_cone: PAIRS_CULLED_CONE.load(Relaxed),
        pairs_kept: PAIRS_KEPT.load(Relaxed),
    }
}

/// Reset the proof counters (benchmark sections and the determinism
/// smoke isolate measurements with this).
pub fn reset_stats() {
    PAIRS_CONSIDERED.store(0, Relaxed);
    PAIRS_CULLED_LAT_BAND.store(0, Relaxed);
    PAIRS_CULLED_CONE.store(0, Relaxed);
    PAIRS_KEPT.store(0, Relaxed);
}

/// Count one pair reaching the cull decision.
pub fn record_considered() {
    PAIRS_CONSIDERED.fetch_add(1, Relaxed);
    OBS_CONSIDERED.inc();
}

/// Count one pair dropped by the latitude-band test.
pub fn record_lat_band_cull() {
    PAIRS_CULLED_LAT_BAND.fetch_add(1, Relaxed);
    OBS_CULLED.inc();
}

/// Count one pair dropped by the footprint-cone grid scan.
pub fn record_cone_cull() {
    PAIRS_CULLED_CONE.fetch_add(1, Relaxed);
    OBS_CULLED.inc();
}

/// Count one pair that proceeded to full prediction.
pub fn record_kept() {
    PAIRS_KEPT.fetch_add(1, Relaxed);
    OBS_KEPT.inc();
}

/// Cone half-angle from exact geocentric radii:
/// `λ = acos(r_site/r_sat · cos ε̃) − ε̃` with the mask already reduced
/// by the zenith-deflection pad. Returns `None` (keep the pair) when
/// the geometry degenerates (`r_sat ≤ r_site`, non-finite inputs).
fn cone_half_angle_rad(r_site_km: f64, r_sat_km: f64, mask_rad: f64) -> Option<f64> {
    if !(r_site_km.is_finite() && r_sat_km.is_finite() && mask_rad.is_finite()) {
        return None;
    }
    if r_sat_km <= r_site_km || r_site_km <= 0.0 {
        return None;
    }
    let eps = mask_rad - ZENITH_DEFLECTION_RAD;
    let c = (r_site_km / r_sat_km) * eps.cos();
    if !(-1.0..=1.0).contains(&c) {
        return None;
    }
    Some(c.acos() - eps)
}

/// Latitude-band reachability: `true` iff the pair can **never** be
/// mutually visible, over any window, because the site's geocentric
/// latitude lies outside the satellite's reachable band by more than
/// the (padded) visibility-cone half-angle:
///
/// `|φ_site| > min(i, π − i) + λ(r_apogee + pad, ε̃) + margin`
///
/// `incl_rad` is the mean inclination, `apogee_radius_km` the mean
/// apogee radius from the geocentre (see
/// [`Sgp4::apogee_radius_km`](crate::sgp4::Sgp4::apogee_radius_km)).
/// Degenerate inputs return `false` (keep).
pub fn never_in_latitude_band(
    site: Geodetic,
    incl_rad: f64,
    apogee_radius_km: f64,
    mask_rad: f64,
) -> bool {
    if !(incl_rad.is_finite() && apogee_radius_km.is_finite() && (0.0..=PI).contains(&incl_rad)) {
        return false;
    }
    let s = site.to_ecef();
    let r_site = s.norm();
    if !(r_site.is_finite() && r_site > 0.0) {
        return false;
    }
    // Geocentric site latitude — exact, from the ECEF vector itself.
    let lat_gc = (s.z / r_site).asin();
    if !lat_gc.is_finite() {
        return false;
    }
    // Max |geocentric latitude| the subsatellite point reaches.
    let i_eff = incl_rad.min(PI - incl_rad);
    let Some(lam) = cone_half_angle_rad(r_site, apogee_radius_km + RADIUS_PAD_KM, mask_rad) else {
        return false;
    };
    lat_gc.abs() > i_eff + lam + LAT_BAND_MARGIN_RAD
}

/// Footprint-cone scan over the coarse grid's **raw samples** (no
/// interpolation): `true` iff every stored sample sits further than
/// `λ + Δ + margin` (Earth-central angle) from the site, which proves
/// no instant in `[start, end]` can see the satellite above the mask.
///
/// Returns `false` (keep) when the grid does not fully cover the scan
/// window, has fewer than two samples, or any sample degenerates.
pub fn cone_clears_grid(
    grid: &EphemerisGrid,
    site: Geodetic,
    mask_rad: f64,
    start: JulianDate,
    end: JulianDate,
) -> bool {
    let n = grid.len();
    if n < 2 {
        return false;
    }
    // The scan window must be inside the sampled span (sub-millisecond
    // slack for representation noise); a pass outside the samples could
    // otherwise hide past the last column.
    let eps_day = 1e-8;
    if grid.sample_time(0).0 > start.0 + eps_day || grid.sample_time(n - 1).0 < end.0 - eps_day {
        return false;
    }
    let s = site.to_ecef();
    let r_site = s.norm();
    if !(r_site.is_finite() && r_site > 0.0) {
        return false;
    }
    // Grid-wide aggregates, precomputed once at build time (NaN when
    // any sample is degenerate — which keeps the pair, below).
    let r_max = grid.max_radius_km();
    let rate_max = grid.max_angular_rate();
    if !(r_max.is_finite() && r_max > 0.0 && rate_max.is_finite()) {
        return false;
    }
    let Some(lam) = cone_half_angle_rad(r_site, r_max + RADIUS_PAD_KM, mask_rad) else {
        return false;
    };
    // Max Earth-central angle the satellite can close within one step:
    // the site direction is fixed in ECEF and |d r̂/dt| ≤ |v|/|r|.
    let delta = grid.step_s() * rate_max * ANGULAR_RATE_PAD;
    let threshold = lam + delta + CONE_MARGIN_RAD;
    if !(0.0..PI).contains(&threshold) {
        return false;
    }
    // Cull iff every sample's central angle exceeds the threshold,
    // i.e. cos(angle) < cos(threshold). Short-circuits on the first
    // in-cone sample, so kept pairs pay only a partial scan.
    let cos_threshold = threshold.cos();
    grid.samples().iter().all(|st| {
        let r = st.position_km.norm();
        let cos_angle = st.position_km.dot(s) / (r * r_site);
        cos_angle < cos_threshold
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Elements;
    use crate::time::JulianDate;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    #[test]
    fn mode_latch_round_trips() {
        let before = mode();
        set_mode(CullingMode::Off);
        assert_eq!(mode(), CullingMode::Off);
        set_mode(CullingMode::On);
        assert_eq!(mode(), CullingMode::On);
        set_mode(before);
    }

    #[test]
    fn polar_site_never_sees_low_inclination_shell() {
        let site = Geodetic::from_degrees(82.0, 10.0, 0.0);
        let apogee = 6378.135 + 600.0;
        // 35° shell: band tops out near 35° + ~23° ≈ 58° ≪ 82°.
        assert!(never_in_latitude_band(
            site,
            35.0_f64.to_radians(),
            apogee,
            0.0
        ));
        // A polar shell reaches every latitude: never culled.
        assert!(!never_in_latitude_band(
            site,
            97.6_f64.to_radians(),
            apogee,
            0.0
        ));
    }

    #[test]
    fn in_band_site_is_never_lat_culled() {
        // Site latitude inside inclination + half-angle: must keep.
        let site = Geodetic::from_degrees(40.0, 0.0, 0.0);
        assert!(!never_in_latitude_band(
            site,
            53.0_f64.to_radians(),
            6378.135 + 550.0,
            0.0
        ));
        // Degenerate inputs keep, never cull.
        assert!(!never_in_latitude_band(
            site,
            f64::NAN,
            6378.135 + 550.0,
            0.0
        ));
        assert!(!never_in_latitude_band(
            site,
            53.0_f64.to_radians(),
            f64::NAN,
            0.0
        ));
    }

    #[test]
    fn retrograde_band_uses_effective_inclination() {
        // i = 170° reaches only |lat| ≤ 10°: a 60° site is out of band.
        let site = Geodetic::from_degrees(60.0, 0.0, 0.0);
        assert!(never_in_latitude_band(
            site,
            170.0_f64.to_radians(),
            6378.135 + 550.0,
            0.0
        ));
    }

    #[test]
    fn cone_scan_culls_opposite_hemisphere_keeps_overhead() {
        let sgp4 = Elements::circular(550.0, 10.0, epoch())
            .to_sgp4()
            .expect("LEO elements");
        let (start, end) = (epoch(), epoch() + 0.02); // ~29 min
        let grid = EphemerisGrid::build(&sgp4, start, end);
        // A near-polar site far from the 10°-inclination track: culled.
        let polar = Geodetic::from_degrees(80.0, 0.0, 0.0);
        assert!(cone_clears_grid(&grid, polar, 0.0, start, end));
        // A window not covered by the grid: keep.
        assert!(!cone_clears_grid(&grid, polar, 0.0, start, end + 1.0));
        // A site under the first sample's ground track: keep.
        let state = grid.samples()[0];
        let under = crate::frames::ecef_to_geodetic(state.position_km);
        let under = Geodetic::new(under.lat_rad, under.lon_rad, 0.0);
        assert!(!cone_clears_grid(&grid, under, 0.0, start, end));
    }

    #[test]
    fn counters_account_exactly() {
        reset_stats();
        record_considered();
        record_considered();
        record_considered();
        record_lat_band_cull();
        record_cone_cull();
        record_kept();
        let s = stats();
        assert_eq!(s.pairs_considered, 3);
        assert_eq!(s.pairs_culled(), 2);
        assert_eq!(s.pairs_culled_lat_band, 1);
        assert_eq!(s.pairs_culled_cone, 1);
        assert_eq!(s.pairs_kept, 1);
        assert_eq!(s.pairs_considered, s.pairs_culled() + s.pairs_kept);
        reset_stats();
        assert_eq!(stats().pairs_considered, 0);
    }
}
