//! Topocentric geometry: look angles, slant range, range-rate, and Doppler
//! shift from a ground observer to a satellite.
//!
//! The observer's local frame is SEZ (South-East-Zenith). Range-rate is
//! computed against the Earth-fixed relative velocity, which is what a
//! ground receiver's Doppler actually tracks.

use crate::frames::{teme_to_ecef, Geodetic};
use crate::sgp4::StateTeme;
use crate::time::JulianDate;
use crate::vec3::Vec3;
use crate::SPEED_OF_LIGHT_KM_S;

/// Look angles and relative motion from an observer to a satellite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookAngles {
    /// Azimuth, radians, clockwise from true north ∈ [0, 2π).
    pub azimuth_rad: f64,
    /// Elevation above the local horizon, radians (negative when below).
    pub elevation_rad: f64,
    /// Slant range, km.
    pub range_km: f64,
    /// Range rate, km/s (negative while approaching).
    pub range_rate_km_s: f64,
}

impl LookAngles {
    /// Doppler shift observed at `carrier_hz`: positive while the
    /// satellite approaches (received frequency above nominal).
    pub fn doppler_shift_hz(&self, carrier_hz: f64) -> f64 {
        -self.range_rate_km_s / SPEED_OF_LIGHT_KM_S * carrier_hz
    }
}

/// An observer fixed on the Earth's surface, with precomputed ECEF
/// position and local basis for fast repeated look-angle queries.
#[derive(Debug, Clone, Copy)]
pub struct Observer {
    /// Geodetic site location.
    pub site: Geodetic,
    ecef: Vec3,
    // Local unit vectors (ECEF components).
    south: Vec3,
    east: Vec3,
    zenith: Vec3,
}

impl Observer {
    /// Build an observer at a geodetic site.
    pub fn new(site: Geodetic) -> Self {
        let ecef = site.to_ecef();
        let (sin_lat, cos_lat) = site.lat_rad.sin_cos();
        let (sin_lon, cos_lon) = site.lon_rad.sin_cos();
        // Geodetic SEZ basis.
        let south = Vec3::new(sin_lat * cos_lon, sin_lat * sin_lon, -cos_lat);
        let east = Vec3::new(-sin_lon, cos_lon, 0.0);
        let zenith = Vec3::new(cos_lat * cos_lon, cos_lat * sin_lon, sin_lat);
        Observer {
            site,
            ecef,
            south,
            east,
            zenith,
        }
    }

    /// Observer position in ECEF, km.
    pub fn position_ecef(&self) -> Vec3 {
        self.ecef
    }

    /// The local zenith unit vector (ECEF components). Together with
    /// [`Self::position_ecef`] this is all the visibility kernels need:
    /// elevation-above-mask reduces to a sign test on the
    /// zenith-projected slant vector (see
    /// [`visibility`](crate::visibility)).
    pub fn zenith(&self) -> Vec3 {
        self.zenith
    }

    /// Look angles to a satellite TEME state at a UTC instant.
    pub fn look_at(&self, state: &StateTeme, when: JulianDate) -> LookAngles {
        let sat = teme_to_ecef(state, when);
        self.look_at_ecef(sat.position_km, sat.velocity_km_s)
    }

    /// Look angles given the satellite's ECEF position/velocity directly
    /// (used by hot loops that already converted the frame).
    pub fn look_at_ecef(&self, sat_pos_km: Vec3, sat_vel_km_s: Vec3) -> LookAngles {
        let rho = sat_pos_km - self.ecef;
        let range = rho.norm();
        // The observer is fixed in ECEF, so the relative velocity is the
        // satellite's Earth-fixed velocity.
        let range_rate = rho.dot(sat_vel_km_s) / range;

        let s = rho.dot(self.south);
        let e = rho.dot(self.east);
        let z = rho.dot(self.zenith);
        let elevation = (z / range).asin();
        // Azimuth from north, clockwise: atan2(east, north) with north = −south.
        let mut azimuth = e.atan2(-s);
        if azimuth < 0.0 {
            azimuth += core::f64::consts::TAU;
        }
        LookAngles {
            azimuth_rad: azimuth,
            elevation_rad: elevation,
            range_km: range,
            range_rate_km_s: range_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::WGS84_A_KM;

    fn equator_observer() -> Observer {
        Observer::new(Geodetic::from_degrees(0.0, 0.0, 0.0))
    }

    #[test]
    fn overhead_satellite_has_90_deg_elevation() {
        let obs = equator_observer();
        let sat = Vec3::new(WGS84_A_KM + 500.0, 0.0, 0.0);
        let la = obs.look_at_ecef(sat, Vec3::new(0.0, 7.6, 0.0));
        assert!((la.elevation_rad.to_degrees() - 90.0).abs() < 1e-6);
        assert!((la.range_km - 500.0).abs() < 1e-6);
        // Moving tangentially: range rate ≈ 0 at closest approach.
        assert!(la.range_rate_km_s.abs() < 1e-9);
    }

    #[test]
    fn cardinal_azimuths() {
        let obs = equator_observer();
        let r = WGS84_A_KM;
        // A point to the due east at the same latitude band, slightly up.
        let east_point = Vec3::new(r * 0.98, r * 0.3, 0.0);
        let la = obs.look_at_ecef(east_point, Vec3::ZERO);
        assert!(
            (la.azimuth_rad.to_degrees() - 90.0).abs() < 1.0,
            "az = {}",
            la.azimuth_rad.to_degrees()
        );
        // A point to the due north.
        let north_point = Vec3::new(r * 0.98, 0.0, r * 0.3);
        let la = obs.look_at_ecef(north_point, Vec3::ZERO);
        assert!(
            la.azimuth_rad.to_degrees() < 1.0 || la.azimuth_rad.to_degrees() > 359.0,
            "az = {}",
            la.azimuth_rad.to_degrees()
        );
        // Due south.
        let south_point = Vec3::new(r * 0.98, 0.0, -r * 0.3);
        let la = obs.look_at_ecef(south_point, Vec3::ZERO);
        assert!((la.azimuth_rad.to_degrees() - 180.0).abs() < 1.0);
        // Due west.
        let west_point = Vec3::new(r * 0.98, -r * 0.3, 0.0);
        let la = obs.look_at_ecef(west_point, Vec3::ZERO);
        assert!((la.azimuth_rad.to_degrees() - 270.0).abs() < 1.0);
    }

    #[test]
    fn below_horizon_is_negative_elevation() {
        let obs = equator_observer();
        // A point on the opposite side of the Earth.
        let la = obs.look_at_ecef(Vec3::new(-(WGS84_A_KM + 500.0), 0.0, 0.0), Vec3::ZERO);
        assert!(la.elevation_rad < 0.0);
    }

    #[test]
    fn approaching_satellite_has_negative_range_rate_and_positive_doppler() {
        let obs = equator_observer();
        // Satellite east of the observer moving westward (towards it).
        let sat = Vec3::new(WGS84_A_KM, 800.0, 0.0);
        let vel = Vec3::new(0.0, -7.0, 0.0);
        let la = obs.look_at_ecef(sat, vel);
        assert!(la.range_rate_km_s < 0.0);
        let doppler = la.doppler_shift_hz(400.0e6);
        assert!(doppler > 0.0);
        // 7 km/s radial at 400 MHz → ~9.3 kHz.
        assert!((doppler - 7.0 / SPEED_OF_LIGHT_KM_S * 400.0e6).abs() < 50.0);
    }

    #[test]
    fn range_rate_magnitude_bounded_by_speed() {
        let obs = Observer::new(Geodetic::from_degrees(22.3, 114.2, 0.0));
        let sat = Vec3::new(WGS84_A_KM + 300.0, 4000.0, 2000.0);
        let vel = Vec3::new(1.0, -6.0, 3.0);
        let la = obs.look_at_ecef(sat, vel);
        assert!(la.range_rate_km_s.abs() <= vel.norm() + 1e-12);
    }

    #[test]
    fn doppler_sign_flips_with_recession() {
        let obs = equator_observer();
        let sat = Vec3::new(WGS84_A_KM, 800.0, 0.0);
        let la_away = obs.look_at_ecef(sat, Vec3::new(0.0, 7.0, 0.0));
        assert!(la_away.range_rate_km_s > 0.0);
        assert!(la_away.doppler_shift_hz(433.0e6) < 0.0);
    }

    #[test]
    fn observer_site_is_preserved() {
        let site = Geodetic::from_degrees(-33.87, 151.21, 0.03);
        let obs = Observer::new(site);
        assert_eq!(obs.site, site);
        assert!((obs.position_ecef().norm() - site.to_ecef().norm()).abs() < 1e-12);
    }
}
