//! Minimal 3-vector used throughout the orbit crate.
//!
//! Deliberately tiny: the crate only needs dot/cross/norm and elementwise
//! arithmetic, so pulling in a linear-algebra dependency would be overkill.

use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component `f64` vector (km, km/s, or unitless depending on context).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors, where the direction is undefined.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotate this vector about the Z axis by `angle_rad` (right-handed).
    #[inline]
    pub fn rotate_z(self, angle_rad: f64) -> Vec3 {
        let (s, c) = angle_rad.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_are_consistent() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 6.0);
        let c = a.cross(b);
        // The cross product is orthogonal to both inputs.
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norm_matches_pythagoras() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-15);
        assert!((Vec3::new(3.0, 4.0, 12.0).norm() - 13.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_rejects_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let u = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!((u.z - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let v = Vec3::new(1.0, 0.0, 5.0).rotate_z(core::f64::consts::FRAC_PI_2);
        assert!(v.x.abs() < 1e-15);
        assert!((v.y - 1.0).abs() < 1e-15);
        assert!((v.z - 5.0).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut m = a;
        m += b;
        m -= b;
        assert_eq!(m, a);
    }
}
