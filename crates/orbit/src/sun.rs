//! Low-precision solar ephemeris (Meeus) and daylight geometry.
//!
//! Good to ~0.01° over decades — orders of magnitude tighter than anything
//! the toolkit needs it for: solar-panel day fractions for the energy
//! model's harvesting extension, and satellite eclipse checks.

use crate::frames::Geodetic;
use crate::time::{JulianDate, JD_J2000};
use crate::topo::Observer;
use crate::vec3::Vec3;

/// Astronomical unit, km.
pub const AU_KM: f64 = 149_597_870.7;

/// Sun position in the TEME/mean-equator frame (km), via the Meeus
/// low-precision algorithm (mean elements + equation of centre).
pub fn sun_position_km(jd: JulianDate) -> Vec3 {
    let t = (jd.0 - JD_J2000) / 36_525.0;
    // Mean longitude and mean anomaly of the Sun, degrees.
    let l0 = 280.460_46 + 36_000.771 * t;
    let m = (357.527_723_3 + 35_999.050_34 * t).to_radians();
    // Ecliptic longitude with the equation of centre.
    let lambda = (l0 + 1.914_666_471 * m.sin() + 0.019_994_643 * (2.0 * m).sin()).to_radians();
    // Distance in AU.
    let r_au = 1.000_140_612 - 0.016_708_617 * m.cos() - 0.000_139_589 * (2.0 * m).cos();
    // Obliquity of the ecliptic.
    let eps = (23.439_291 - 0.013_004_2 * t).to_radians();
    let r = r_au * AU_KM;
    Vec3::new(
        r * lambda.cos(),
        r * eps.cos() * lambda.sin(),
        r * eps.sin() * lambda.sin(),
    )
}

/// The Sun's elevation above the local horizon at `site`, radians.
pub fn sun_elevation_rad(site: Geodetic, jd: JulianDate) -> f64 {
    let observer = Observer::new(site);
    let state = crate::sgp4::StateTeme {
        position_km: sun_position_km(jd),
        velocity_km_s: Vec3::ZERO,
        tsince_min: 0.0,
    };
    observer.look_at(&state, jd).elevation_rad
}

/// Fraction of `[start, start + days]` during which the Sun is above the
/// horizon at `site` (sampled every 10 minutes) — the day fraction the
/// solar-harvesting model needs.
pub fn daylight_fraction(site: Geodetic, start: JulianDate, days: f64) -> f64 {
    let step_s = 600.0;
    let n = ((days * 86_400.0) / step_s).ceil() as usize;
    if n == 0 {
        return 0.0;
    }
    let mut lit = 0usize;
    for i in 0..n {
        let jd = start.plus_seconds(i as f64 * step_s);
        if sun_elevation_rad(site, jd) > 0.0 {
            lit += 1;
        }
    }
    lit as f64 / n as f64
}

/// Whether a satellite at TEME position `r_km` is sunlit at `jd`
/// (cylindrical Earth-shadow model — adequate for LEO power budgets).
pub fn is_sunlit(r_km: Vec3, jd: JulianDate) -> bool {
    let sun = sun_position_km(jd).normalized().expect("sun is far away");
    // Component of r along the sun direction.
    let along = r_km.dot(sun);
    if along >= 0.0 {
        return true; // Day side.
    }
    // Perpendicular distance from the shadow axis.
    let perp = (r_km - sun * along).norm();
    perp > crate::sgp4::EARTH_RADIUS_KM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_distance_is_one_au() {
        for (y, m, d) in [(2024, 1, 3), (2024, 7, 4), (2025, 3, 20)] {
            let jd = JulianDate::from_calendar(y, m, d, 0, 0, 0.0);
            let r = sun_position_km(jd).norm();
            // Perihelion 0.983 AU, aphelion 1.017 AU.
            assert!((0.98..1.02).contains(&(r / AU_KM)), "{y}-{m}-{d}: {r}");
        }
        // January is perihelion, July aphelion.
        let jan = sun_position_km(JulianDate::from_calendar(2024, 1, 3, 0, 0, 0.0)).norm();
        let jul = sun_position_km(JulianDate::from_calendar(2024, 7, 4, 0, 0, 0.0)).norm();
        assert!(jan < jul);
    }

    #[test]
    fn solstice_declination_is_23_4_degrees() {
        // June solstice 2024: June 20 ~20:51 UTC.
        let jd = JulianDate::from_calendar(2024, 6, 20, 21, 0, 0.0);
        let sun = sun_position_km(jd);
        let dec = (sun.z / sun.norm()).asin().to_degrees();
        assert!((dec - 23.44).abs() < 0.05, "declination {dec}");
        // December solstice.
        let jd = JulianDate::from_calendar(2024, 12, 21, 9, 0, 0.0);
        let sun = sun_position_km(jd);
        let dec = (sun.z / sun.norm()).asin().to_degrees();
        assert!((dec + 23.44).abs() < 0.05, "declination {dec}");
    }

    #[test]
    fn equinox_sun_crosses_the_equator() {
        // March equinox 2025: March 20 ~09:01 UTC.
        let jd = JulianDate::from_calendar(2025, 3, 20, 9, 0, 0.0);
        let sun = sun_position_km(jd);
        let dec = (sun.z / sun.norm()).asin().to_degrees();
        assert!(dec.abs() < 0.1, "declination {dec}");
    }

    #[test]
    fn tropical_day_fraction_is_about_half() {
        let farm = Geodetic::from_degrees(22.78, 100.98, 1.3);
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let frac = daylight_fraction(farm, start, 10.0);
        assert!((frac - 0.5).abs() < 0.04, "day fraction {frac}");
    }

    #[test]
    fn polar_night_and_midnight_sun() {
        let arctic = Geodetic::from_degrees(78.0, 16.0, 0.0);
        let winter = daylight_fraction(
            arctic,
            JulianDate::from_calendar(2024, 12, 10, 0, 0, 0.0),
            5.0,
        );
        let summer = daylight_fraction(
            arctic,
            JulianDate::from_calendar(2024, 6, 10, 0, 0, 0.0),
            5.0,
        );
        assert!(winter < 0.02, "polar night {winter}");
        assert!(summer > 0.98, "midnight sun {summer}");
    }

    #[test]
    fn leo_satellite_spends_about_a_third_in_eclipse() {
        use crate::elements::Elements;
        let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
        let mut sunlit = 0;
        let n = 2_000;
        for i in 0..n {
            let t = i as f64 * 1.0; // One sample per minute, ~21 orbits.
            let s = sgp4.propagate(t).unwrap();
            if is_sunlit(s.position_km, epoch.plus_minutes(t)) {
                sunlit += 1;
            }
        }
        let frac = sunlit as f64 / n as f64;
        // LEO eclipse fraction ranges ~0 (dawn-dusk SSO) to ~0.4.
        assert!((0.55..1.0).contains(&frac), "sunlit fraction {frac}");
    }

    #[test]
    fn day_side_points_are_always_sunlit() {
        let jd = JulianDate::from_calendar(2025, 3, 1, 12, 0, 0.0);
        let sun_dir = sun_position_km(jd).normalized().unwrap();
        assert!(is_sunlit(sun_dir * 7_000.0, jd));
        // Directly behind the Earth, on the axis: eclipsed.
        assert!(!is_sunlit(sun_dir * -7_000.0, jd));
    }
}
