//! Property-based tests for the orbit crate: random element sets, sites,
//! and time offsets must never violate orbital-mechanics invariants.

use proptest::prelude::*;
use satiot_orbit::elements::Elements;
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::PassPredictor;
use satiot_orbit::sgp4::{EARTH_RADIUS_KM, MU_KM3_S2};
use satiot_orbit::time::JulianDate;
use satiot_orbit::tle::{checksum, Tle};

fn epoch() -> JulianDate {
    JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0)
}

proptest! {
    /// Vis-viva holds (to J2 scale) at every time for every LEO orbit.
    #[test]
    fn vis_viva_everywhere(
        alt in 350.0_f64..1_200.0,
        incl in 0.0_f64..120.0,
        t in -720.0_f64..7_200.0,
    ) {
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let s = sgp4.propagate(t).unwrap();
        let r = s.position_km.norm();
        let v2 = s.velocity_km_s.norm_sq();
        let a = EARTH_RADIUS_KM + alt;
        let expected = MU_KM3_S2 * (2.0 / r - 1.0 / a);
        prop_assert!(((v2 - expected) / expected).abs() < 0.01);
    }

    /// Angular-momentum direction precesses only slowly (J2), never jumps.
    #[test]
    fn angular_momentum_is_stable_within_an_orbit(
        alt in 400.0_f64..1_000.0,
        incl in 5.0_f64..115.0,
        phase in 0.0_f64..1.0,
    ) {
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let period = sgp4.period_min();
        let t0 = phase * period;
        let s0 = sgp4.propagate(t0).unwrap();
        let s1 = sgp4.propagate(t0 + period / 4.0).unwrap();
        let h0 = s0.position_km.cross(s0.velocity_km_s).normalized().unwrap();
        let h1 = s1.position_km.cross(s1.velocity_km_s).normalized().unwrap();
        prop_assert!(h0.dot(h1) > 0.9995, "h drift {}", h0.dot(h1));
    }

    /// The TLE text form always carries valid checksums and re-parses to
    /// the same orbit.
    #[test]
    fn formatted_tles_are_always_valid(
        alt in 300.0_f64..1_500.0,
        incl in 0.0_f64..179.0,
        raan in 0.0_f64..6.2,
        argp in 0.0_f64..6.2,
        ma in 0.0_f64..6.2,
        ecc in 0.0_f64..0.02,
        norad in 1u32..99_999,
    ) {
        let mut e = Elements::circular(alt, incl, epoch());
        e.raan_rad = raan;
        e.arg_perigee_rad = argp;
        e.mean_anomaly_rad = ma;
        e.eccentricity = ecc;
        let tle = e.to_tle(norad, "PROP").unwrap();
        let (l1, l2) = tle.format_lines();
        prop_assert_eq!(l1.len(), 69);
        prop_assert_eq!(l2.len(), 69);
        // Checksums embedded in column 69 match the body.
        prop_assert_eq!(l1.as_bytes()[68] - b'0', checksum(&l1[..68]));
        prop_assert_eq!(l2.as_bytes()[68] - b'0', checksum(&l2[..68]));
        let parsed = Tle::parse_lines(&l1, &l2).unwrap();
        prop_assert_eq!(parsed.norad_id, norad);
        prop_assert!((parsed.eccentricity - ecc).abs() < 1e-6);
    }

    /// Passes are well-formed for arbitrary sites: ordered boundaries,
    /// culmination inside, boundary elevation at the mask.
    #[test]
    fn passes_are_well_formed(
        alt in 450.0_f64..900.0,
        incl in 45.0_f64..105.0,
        lat in -60.0_f64..60.0,
        lon in -180.0_f64..180.0,
        mask_deg in 0.0_f64..15.0,
    ) {
        let e = Elements::circular(alt, incl, epoch());
        let predictor = PassPredictor::new(
            e.to_sgp4().unwrap(),
            Geodetic::from_degrees(lat, lon, 0.0),
            mask_deg.to_radians(),
        );
        let start = epoch();
        let end = start + 1.0;
        let passes = predictor.passes(start, end);
        for p in &passes {
            prop_assert!(p.aos <= p.tca && p.tca <= p.los);
            prop_assert!(p.duration_min() < 20.0);
            prop_assert!(p.max_elevation_rad.to_degrees() >= mask_deg - 0.2);
            // A pass already in progress at the interval start (or still
            // in progress at its end) is truncated, so its boundary is
            // not a mask crossing.
            if p.aos > start && p.los < end {
                let el_aos = predictor.elevation_at(p.aos).to_degrees();
                prop_assert!((el_aos - mask_deg).abs() < 0.5, "AOS el {el_aos}");
            }
        }
        // Chronological and disjoint.
        for w in passes.windows(2) {
            prop_assert!(w[1].aos >= w[0].los);
        }
    }

    /// GMST stays in [0, 2π) and advances monotonically modulo wrap.
    #[test]
    fn gmst_is_bounded(jd_offset in 0.0_f64..10_000.0) {
        let jd = JulianDate(2_451_545.0 + jd_offset);
        let g = jd.gmst_rad();
        prop_assert!((0.0..core::f64::consts::TAU).contains(&g));
    }

    /// Hostile (far-out-of-range, negative) angles survive the TLE
    /// round trip: `to_tle` normalises into [0, 2π) before field
    /// formatting, and the reparsed angles match the wrapped originals
    /// to the format's 1e-4-degree resolution. Walker phasing and the
    /// catalog's golden-angle offsets push raw angles well past τ, so
    /// this must hold by construction, not luck.
    #[test]
    fn hostile_angles_round_trip_through_tle(
        alt in 300.0_f64..1_500.0,
        incl in 0.0_f64..179.0,
        raan in -50.0_f64..50.0,
        argp in -50.0_f64..50.0,
        ma in -50.0_f64..50.0,
    ) {
        use satiot_orbit::elements::wrap_tau;
        let mut e = Elements::circular(alt, incl, epoch());
        e.raan_rad = raan;
        e.arg_perigee_rad = argp;
        e.mean_anomaly_rad = ma;
        let tle = e.to_tle(42_424, "HOSTILE").unwrap();
        // The formatted fields are already in degrees of [0, 360).
        let (l1, l2) = tle.format_lines();
        let parsed = Tle::parse_lines(&l1, &l2).unwrap();
        // 1e-4° field resolution ≈ 1.75e-6 rad, plus rounding slack.
        let tol = 5e-6;
        for (got, raw) in [
            (parsed.raan_rad, raan),
            (parsed.arg_perigee_rad, argp),
            (parsed.mean_anomaly_rad, ma),
        ] {
            let want = wrap_tau(raw);
            // Compare on the circle: 0 and 2π−ε are the same angle.
            let diff = wrap_tau(got - want).min(wrap_tau(want - got));
            prop_assert!(diff < tol, "angle {got} vs wrapped {want} (raw {raw})");
        }
    }

    /// The latitude-band cull is conservative: whenever it fires, the
    /// full predictor (direct SGP4, no grid) finds zero passes over a
    /// two-day window — equivalently, it never fires for a pair with a
    /// nonzero-duration pass.
    #[test]
    fn lat_band_cull_is_conservative(
        alt in 400.0_f64..1_200.0,
        incl in 5.0_f64..130.0,
        lat in -85.0_f64..85.0,
        lon in -180.0_f64..180.0,
        mask_deg in 0.0_f64..15.0,
    ) {
        use satiot_orbit::cull;
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let site = Geodetic::from_degrees(lat, lon, 0.0);
        let mask = mask_deg.to_radians();
        if cull::never_in_latitude_band(site, sgp4.inclination_rad(), sgp4.apogee_radius_km(), mask) {
            let passes = PassPredictor::new(sgp4, site, mask).passes(epoch(), epoch() + 2.0);
            prop_assert!(
                passes.is_empty(),
                "lat-band cull dropped a pair with {} passes (alt {alt}, incl {incl}, lat {lat})",
                passes.len()
            );
        }
    }

    /// The footprint-cone grid scan is conservative: whenever it clears
    /// a window, both the direct and the grid-backed predictors find
    /// zero passes in that window.
    #[test]
    fn cone_cull_is_conservative(
        alt in 400.0_f64..1_200.0,
        incl in 5.0_f64..130.0,
        lat in -85.0_f64..85.0,
        lon in -180.0_f64..180.0,
        mask_deg in 0.0_f64..15.0,
    ) {
        use satiot_orbit::cull;
        use satiot_orbit::ephemeris::EphemerisGrid;
        use std::sync::Arc;
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let site = Geodetic::from_degrees(lat, lon, 0.0);
        let mask = mask_deg.to_radians();
        let (start, end) = (epoch(), epoch() + 0.5);
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
        if cull::cone_clears_grid(&grid, site, mask, start, end) {
            let direct = PassPredictor::new(sgp4.clone(), site, mask).passes(start, end);
            prop_assert!(
                direct.is_empty(),
                "cone cull dropped a pair with {} direct passes (alt {alt}, incl {incl}, lat {lat}, lon {lon})",
                direct.len()
            );
            let gridded = PassPredictor::new(sgp4, site, mask)
                .with_ephemeris(grid)
                .passes(start, end);
            prop_assert!(gridded.is_empty(), "cone cull dropped {} gridded passes", gridded.len());
        }
    }
}

proptest! {
    /// The ephemeris grid honours its elevation contract for arbitrary
    /// LEO orbits and observers: everywhere in the scan window —
    /// interior, both edges, and exactly-on-sample instants included —
    /// interpolated elevation stays within `MAX_ELEVATION_ERROR_DEG`
    /// of direct SGP4.
    #[test]
    fn grid_elevation_stays_within_contract(
        alt in 400.0_f64..1_200.0,
        incl in 0.0_f64..98.0,
        lat in -65.0_f64..65.0,
        lon in -180.0_f64..180.0,
        alt_site_km in 0.0_f64..2.0,
        probe in 0.0_f64..1.0,
    ) {
        use satiot_orbit::ephemeris::{EphemerisGrid, MAX_ELEVATION_ERROR_DEG};
        use std::sync::Arc;
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let site = Geodetic::from_degrees(lat, lon, alt_site_km);
        let (start, end) = (epoch(), epoch() + 0.5);
        let grid = Arc::new(EphemerisGrid::build(&sgp4, start, end));
        let direct = PassPredictor::new(sgp4.clone(), site, 0.0);
        let gridded = PassPredictor::new(sgp4, site, 0.0).with_ephemeris(Arc::clone(&grid));
        let span_s = end.seconds_since(start);
        // A random interior instant, the window edges, and a handful of
        // exactly-on-sample lattice points near the probe.
        let mut instants = vec![
            start.plus_seconds(probe * span_s),
            start,
            end,
        ];
        let k = ((probe * span_s) / grid.step_s()) as usize;
        for j in k.saturating_sub(1)..=(k + 1).min(grid.len().saturating_sub(1)) {
            instants.push(grid.sample_time(j));
        }
        for t in instants {
            let err = (direct.elevation_at(t) - gridded.elevation_at(t)).to_degrees().abs();
            prop_assert!(
                err < MAX_ELEVATION_ERROR_DEG,
                "elevation error {err}° at {t:?} (alt {alt}, incl {incl}, site {lat},{lon})"
            );
        }
    }

    /// The analytic range-rate equals the numerical derivative of range
    /// for arbitrary geometries — the quantity Doppler hangs off.
    #[test]
    fn range_rate_is_the_range_derivative(
        alt in 400.0_f64..1_000.0,
        incl in 30.0_f64..100.0,
        lat in -55.0_f64..55.0,
        lon in -180.0_f64..180.0,
        t_min in 0.0_f64..1_440.0,
    ) {
        use satiot_orbit::topo::Observer;
        use satiot_orbit::frames::teme_to_ecef;
        let e = Elements::circular(alt, incl, epoch());
        let sgp4 = e.to_sgp4().unwrap();
        let observer = Observer::new(Geodetic::from_degrees(lat, lon, 0.0));
        let when = epoch().plus_minutes(t_min);
        let la = {
            let s = sgp4.propagate_at(when).unwrap();
            observer.look_at(&s, when)
        };
        // Numerical derivative over ±0.5 s using Earth-fixed ranges.
        let range_at = |w| {
            let s = sgp4.propagate_at(w).unwrap();
            (teme_to_ecef(&s, w).position_km - observer.position_ecef()).norm()
        };
        let dt = 0.5;
        let numeric = (range_at(when.plus_seconds(dt)) - range_at(when.plus_seconds(-dt)))
            / (2.0 * dt);
        prop_assert!(
            (la.range_rate_km_s - numeric).abs() < 5e-3,
            "analytic {} vs numeric {numeric}",
            la.range_rate_km_s
        );
    }
}
