//! # satiot-econ
//!
//! Cost model for terrestrial vs. satellite IoT deployments.
//!
//! Encodes the paper's Table 2 price points as defaults and generalises
//! them into a small model that supports the sweeps the paper could not
//! run (fleet size, reporting rate, amortisation horizon, gateway
//! density). Costs are in USD throughout.
//!
//! Pricing structure (from the paper §3.2 "Cost Assessment"):
//!
//! * **Satellite IoT (Tianqi):** $220 per node, no gateway, per-packet
//!   billing at $16.5 per 1 000 packets (≤ 120 B per packet). 48 packets
//!   per sensor-day → $23.76 per sensor-month.
//! * **Terrestrial IoT:** $35 per end node + $219 per LoRaWAN gateway,
//!   plus one LTE backhaul plan at $4.9 per month (42 Mbps, effectively
//!   unmetered at IoT data volumes) per gateway.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

/// Days per billing month used by the paper's arithmetic (30).
pub const DAYS_PER_MONTH: f64 = 30.0;

/// Price points for a satellite IoT service (Tianqi-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatellitePricing {
    /// Cost of one IoT node, USD.
    pub node_usd: f64,
    /// Data charge per 1 000 packets, USD.
    pub usd_per_kpacket: f64,
    /// Maximum payload per billed packet, bytes.
    pub max_packet_bytes: usize,
}

impl Default for SatellitePricing {
    fn default() -> Self {
        SatellitePricing {
            node_usd: 220.0,
            usd_per_kpacket: 16.5,
            max_packet_bytes: 120,
        }
    }
}

/// Price points for a terrestrial LoRaWAN + LTE deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerrestrialPricing {
    /// Cost of one end node, USD.
    pub node_usd: f64,
    /// Cost of one gateway, USD.
    pub gateway_usd: f64,
    /// Monthly LTE backhaul plan per gateway, USD.
    pub lte_plan_usd_month: f64,
}

impl Default for TerrestrialPricing {
    fn default() -> Self {
        TerrestrialPricing {
            node_usd: 35.0,
            gateway_usd: 219.0,
            lte_plan_usd_month: 4.9,
        }
    }
}

/// A deployment to be costed.
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    /// Number of sensor nodes.
    pub nodes: usize,
    /// Gateways required to cover the site (terrestrial only).
    pub gateways: usize,
    /// Application packets generated per node per day.
    pub packets_per_node_day: f64,
    /// Payload size per application packet, bytes.
    pub payload_bytes: usize,
}

impl Deployment {
    /// The paper's coffee-plantation deployment: 20 B every 30 min
    /// (48 packets/day), 3 nodes, 3 gateways for the terrestrial twin.
    pub fn paper_farm() -> Deployment {
        Deployment {
            nodes: 3,
            gateways: 3,
            packets_per_node_day: 48.0,
            payload_bytes: 20,
        }
    }
}

/// Cost breakdown for one option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// One-off device cost, USD.
    pub device_usd: f64,
    /// One-off infrastructure (gateway) cost, USD.
    pub infrastructure_usd: f64,
    /// Recurring cost per month, USD.
    pub monthly_usd: f64,
}

impl CostBreakdown {
    /// Total cost of ownership over `months`, USD.
    pub fn total_usd(&self, months: f64) -> f64 {
        self.device_usd + self.infrastructure_usd + self.monthly_usd * months
    }
}

/// Billed packets per application packet: payloads above the billing cap
/// split into multiple billed packets.
pub fn billed_packets_per_message(payload_bytes: usize, max_packet_bytes: usize) -> f64 {
    if payload_bytes == 0 {
        return 1.0;
    }
    payload_bytes.div_ceil(max_packet_bytes.max(1)) as f64
}

/// Cost the satellite option for a deployment.
pub fn satellite_cost(pricing: &SatellitePricing, d: &Deployment) -> CostBreakdown {
    let billed = billed_packets_per_message(d.payload_bytes, pricing.max_packet_bytes);
    let packets_month = d.nodes as f64 * d.packets_per_node_day * billed * DAYS_PER_MONTH;
    CostBreakdown {
        device_usd: pricing.node_usd * d.nodes as f64,
        infrastructure_usd: 0.0,
        monthly_usd: packets_month / 1_000.0 * pricing.usd_per_kpacket,
    }
}

/// Cost the terrestrial option for a deployment.
pub fn terrestrial_cost(pricing: &TerrestrialPricing, d: &Deployment) -> CostBreakdown {
    CostBreakdown {
        device_usd: pricing.node_usd * d.nodes as f64,
        infrastructure_usd: pricing.gateway_usd * d.gateways as f64,
        monthly_usd: pricing.lte_plan_usd_month * d.gateways as f64,
    }
}

/// The amortisation horizon (months) beyond which the terrestrial option
/// becomes cheaper in total cost of ownership; `None` if it is cheaper
/// from month zero or never catches up.
pub fn crossover_month(sat: &CostBreakdown, terr: &CostBreakdown) -> Option<f64> {
    let upfront_gap =
        (terr.device_usd + terr.infrastructure_usd) - (sat.device_usd + sat.infrastructure_usd);
    let monthly_gap = sat.monthly_usd - terr.monthly_usd;
    if upfront_gap <= 0.0 {
        return None; // Terrestrial is cheaper up front already.
    }
    if monthly_gap <= 0.0 {
        return None; // Satellite never pays back its cheaper opex (or has none).
    }
    Some(upfront_gap / monthly_gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_monthly_satellite_cost_is_23_76_per_sensor() {
        // 48 packets/day · 30 days = 1 440 packets → ×$16.5/k = $23.76.
        let d = Deployment {
            nodes: 1,
            ..Deployment::paper_farm()
        };
        let c = satellite_cost(&SatellitePricing::default(), &d);
        assert!(
            (c.monthly_usd - 23.76).abs() < 1e-9,
            "monthly {}",
            c.monthly_usd
        );
        assert_eq!(c.device_usd, 220.0);
        assert_eq!(c.infrastructure_usd, 0.0);
    }

    #[test]
    fn paper_terrestrial_costs() {
        let d = Deployment::paper_farm();
        let c = terrestrial_cost(&TerrestrialPricing::default(), &d);
        assert_eq!(c.device_usd, 105.0); // 3 × $35.
        assert_eq!(c.infrastructure_usd, 657.0); // 3 × $219.
        assert!((c.monthly_usd - 14.7).abs() < 1e-9); // 3 × $4.9.
    }

    #[test]
    fn oversized_payloads_bill_multiple_packets() {
        assert_eq!(billed_packets_per_message(20, 120), 1.0);
        assert_eq!(billed_packets_per_message(120, 120), 1.0);
        assert_eq!(billed_packets_per_message(121, 120), 2.0);
        assert_eq!(billed_packets_per_message(360, 120), 3.0);
        assert_eq!(billed_packets_per_message(0, 120), 1.0);
    }

    #[test]
    fn total_cost_of_ownership() {
        let c = CostBreakdown {
            device_usd: 100.0,
            infrastructure_usd: 50.0,
            monthly_usd: 10.0,
        };
        assert_eq!(c.total_usd(0.0), 150.0);
        assert_eq!(c.total_usd(12.0), 270.0);
    }

    #[test]
    fn crossover_for_the_paper_farm() {
        let d = Deployment::paper_farm();
        let sat = satellite_cost(&SatellitePricing::default(), &d);
        let terr = terrestrial_cost(&TerrestrialPricing::default(), &d);
        // Satellite: $660 up front, $71.28/mo. Terrestrial: $762 up front,
        // $14.7/mo. Crossover at (762−660)/(71.28−14.7) ≈ 1.8 months:
        // terrestrial wins quickly at this density — matching the paper's
        // conclusion that satellite IoT pays off only where terrestrial
        // coverage is impossible, not on cost.
        let m = crossover_month(&sat, &terr).expect("should cross");
        assert!((1.0..3.0).contains(&m), "crossover {m}");
        assert!(sat.total_usd(12.0) > terr.total_usd(12.0));
    }

    #[test]
    fn sparse_deployments_favor_satellite_longer() {
        // One node needing one dedicated gateway (very remote site).
        let d = Deployment {
            nodes: 1,
            gateways: 1,
            packets_per_node_day: 48.0,
            payload_bytes: 20,
        };
        let sat = satellite_cost(&SatellitePricing::default(), &d);
        let terr = terrestrial_cost(&TerrestrialPricing::default(), &d);
        let m = crossover_month(&sat, &terr).expect("should cross");
        // $254 vs $220 up front; $23.76 vs $4.9 monthly → ~1.8 months.
        assert!(m > 1.0);
        // Fewer daily packets stretch the crossover…
        let d_slow = Deployment {
            packets_per_node_day: 12.0,
            ..d
        };
        let sat_slow = satellite_cost(&SatellitePricing::default(), &d_slow);
        let m_slow = crossover_month(&sat_slow, &terr).expect("should cross");
        assert!(m_slow > 5.0 * m, "slow {m_slow} vs {m}");
        // …and at very low rates the satellite opex undercuts the LTE plan
        // and terrestrial never catches up on TCO.
        let d_tiny = Deployment {
            packets_per_node_day: 4.0,
            ..d
        };
        let sat_tiny = satellite_cost(&SatellitePricing::default(), &d_tiny);
        assert!(sat_tiny.monthly_usd < terr.monthly_usd);
        assert_eq!(crossover_month(&sat_tiny, &terr), None);
    }

    #[test]
    fn no_crossover_when_terrestrial_cheaper_everywhere() {
        let sat = CostBreakdown {
            device_usd: 220.0,
            infrastructure_usd: 0.0,
            monthly_usd: 23.76,
        };
        let terr = CostBreakdown {
            device_usd: 35.0,
            infrastructure_usd: 0.0, // Gateway already exists on site.
            monthly_usd: 0.0,
        };
        assert_eq!(crossover_month(&sat, &terr), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// At the crossover month the two options cost exactly the same,
        /// and the ordering flips around it.
        #[test]
        fn crossover_is_the_tco_equality_point(
            nodes in 1usize..50,
            gateways in 1usize..5,
            rate in 1.0_f64..200.0,
            payload in 1usize..240,
        ) {
            let d = Deployment {
                nodes,
                gateways,
                packets_per_node_day: rate,
                payload_bytes: payload,
            };
            let sat = satellite_cost(&SatellitePricing::default(), &d);
            let terr = terrestrial_cost(&TerrestrialPricing::default(), &d);
            if let Some(m) = crossover_month(&sat, &terr) {
                prop_assert!(m > 0.0);
                prop_assert!((sat.total_usd(m) - terr.total_usd(m)).abs() < 1e-6);
                prop_assert!(sat.total_usd(m + 1.0) > terr.total_usd(m + 1.0));
                if m > 1.0 {
                    prop_assert!(sat.total_usd(m - 1.0) < terr.total_usd(m - 1.0));
                }
            }
            // Costs are monotone in time and non-negative.
            prop_assert!(sat.total_usd(0.0) >= 0.0);
            prop_assert!(sat.total_usd(10.0) >= sat.total_usd(5.0));
            prop_assert!(terr.total_usd(10.0) >= terr.total_usd(5.0));
        }

        /// Billing always charges at least one packet and scales with the
        /// billing cap.
        #[test]
        fn billed_packets_behave(payload in 0usize..2_000, cap in 1usize..240) {
            let b = billed_packets_per_message(payload, cap);
            prop_assert!(b >= 1.0);
            prop_assert!(b <= (payload.max(1) as f64 / cap as f64).ceil() + 1.0);
            // More payload never bills fewer packets.
            prop_assert!(billed_packets_per_message(payload + cap, cap) >= b);
        }
    }
}
