//! Process-global metrics: counters, gauges, fixed-bucket histograms,
//! and span timers.
//!
//! Instrumented call sites declare `static` handles:
//!
//! ```
//! use satiot_obs::metrics::{Counter, Histogram};
//!
//! static EVENTS: Counter = Counter::new("sim.engine.events_processed");
//! static SNR: Histogram =
//!     Histogram::new("channel.snr_db", &[-20.0, -10.0, 0.0, 10.0]);
//!
//! satiot_obs::metrics::set_enabled(true);
//! EVENTS.inc();
//! SNR.record(-3.5);
//! assert!(satiot_obs::metrics::report().contains("events_processed"));
//! ```
//!
//! Each handle lazily registers itself in the global registry on first
//! use; recording is relaxed atomics. When metrics are disabled (the
//! default) every record call returns after one atomic load. Recording
//! is enabled with [`set_enabled`]; the `SATIOT_METRICS=1` environment
//! knob reaches it through `satiot_core::RunOptions::from_env().apply()`
//! — this module never reads the environment itself.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on (off until [`set_enabled`] turns it
/// on — typed campaign options install the `SATIOT_METRICS` environment
/// knob here via `satiot_core::RunOptions::from_env().apply()`).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Force metric recording on or off (tests, programmatic use).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramInner>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Reset every registered metric to zero (tests and repeated campaign
/// runs in one process). Handles stay valid: they point at the same
/// atomics, which are cleared in place.
pub fn reset() {
    let r = registry();
    for c in r
        .counters
        .lock()
        .expect("metrics registry mutex poisoned")
        .values()
    {
        c.store(0, Relaxed);
    }
    for g in r
        .gauges
        .lock()
        .expect("metrics registry mutex poisoned")
        .values()
    {
        g.store(0, Relaxed);
    }
    for h in r
        .histograms
        .lock()
        .expect("metrics registry mutex poisoned")
        .values()
    {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    slot: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Declare a counter; it registers itself on first use.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicU64 {
        self.slot.get_or_init(|| {
            Arc::clone(
                registry()
                    .counters
                    .lock()
                    .expect("metrics registry mutex poisoned")
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.slot().fetch_add(n, Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 until first use or while disabled).
    pub fn value(&self) -> u64 {
        self.slot().load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time level (queue depth, pending events). Records the
/// latest set value plus the high-water mark.
pub struct Gauge {
    name: &'static str,
    slot: OnceLock<Arc<AtomicI64>>,
    high: OnceLock<Arc<AtomicI64>>,
}

impl Gauge {
    /// Declare a gauge; it registers itself on first use.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            slot: OnceLock::new(),
            high: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicI64 {
        self.slot.get_or_init(|| {
            Arc::clone(
                registry()
                    .gauges
                    .lock()
                    .expect("metrics registry mutex poisoned")
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    fn high(&self) -> &AtomicI64 {
        // The high-water mark is itself a gauge, named alongside its
        // parent so the report sorts them together.
        self.high.get_or_init(|| {
            let name: &'static str =
                Box::leak(format!("{}.high_water", self.name).into_boxed_str());
            Arc::clone(
                registry()
                    .gauges
                    .lock()
                    .expect("metrics registry mutex poisoned")
                    .entry(name)
                    .or_default(),
            )
        })
    }

    /// Record the current level.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.slot().store(v, Relaxed);
            self.high().fetch_max(v, Relaxed);
        }
    }

    /// Latest recorded level.
    pub fn value(&self) -> i64 {
        self.slot().load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

struct HistogramInner {
    /// Upper bounds of the finite buckets; one overflow bucket follows.
    bounds: &'static [f64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as f64 bits and updated with a CAS loop.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Non-finite samples rejected by [`record`](Self::record) — a NaN
    /// would otherwise poison the CAS'd sum and land in a bucket via
    /// `partition_point`. Surfaced per histogram and as a data-quality
    /// total by [`report`].
    dropped: AtomicU64,
}

impl HistogramInner {
    fn with_bounds(bounds: &'static [f64]) -> Self {
        HistogramInner {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            dropped: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_bits.store(0f64.to_bits(), Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Relaxed);
        self.dropped.store(0, Relaxed);
    }

    fn record(&self, v: f64) {
        if !crate::invariants::flag_non_finite("metrics::Histogram::record", v) {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        fold_extreme(&self.min_bits, v, f64::min);
        fold_extreme(&self.max_bits, v, f64::max);
    }
}

fn fold_extreme(cell: &AtomicU64, v: f64, pick: fn(f64, f64) -> f64) {
    let mut cur = cell.load(Relaxed);
    loop {
        let folded = pick(f64::from_bits(cur), v);
        if folded.to_bits() == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, folded.to_bits(), Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A fixed-bucket distribution. Bucket `i` counts samples `<= bounds[i]`
/// (and above the previous bound); an implicit overflow bucket catches
/// the rest.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [f64],
    slot: OnceLock<Arc<HistogramInner>>,
}

impl Histogram {
    /// Declare a histogram with ascending bucket bounds.
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        Histogram {
            name,
            bounds,
            slot: OnceLock::new(),
        }
    }

    fn slot(&self) -> &HistogramInner {
        self.slot.get_or_init(|| {
            Arc::clone(
                registry()
                    .histograms
                    .lock()
                    .expect("metrics registry mutex poisoned")
                    .entry(self.name)
                    .or_insert_with(|| Arc::new(HistogramInner::with_bounds(self.bounds))),
            )
        })
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        if enabled() {
            self.slot().record(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.slot().count.load(Relaxed)
    }

    /// Mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| f64::from_bits(self.slot().sum_bits.load(Relaxed)) / n as f64)
    }

    /// Non-finite samples rejected instead of recorded.
    pub fn dropped(&self) -> u64 {
        self.slot().dropped.load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

/// A span timer: [`Timer::start`] returns a guard that records the
/// elapsed wall-clock seconds into the backing histogram when dropped.
pub struct Timer {
    hist: Histogram,
}

/// Default second-scale buckets for [`Timer`]s.
pub const TIMER_BOUNDS_S: &[f64] = &[0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

impl Timer {
    /// Declare a timer recording into `name` with [`TIMER_BOUNDS_S`].
    pub const fn new(name: &'static str) -> Self {
        Timer {
            hist: Histogram::new(name, TIMER_BOUNDS_S),
        }
    }

    /// Start a span; elapsed seconds are recorded when the guard drops.
    /// While metrics are disabled the guard is inert.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            target: enabled().then(|| (&self.hist, Instant::now())),
        }
    }

    /// Number of completed spans.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }
}

/// Guard returned by [`Timer::start`].
pub struct SpanGuard<'a> {
    target: Option<(&'a Histogram, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record(start.elapsed().as_secs_f64());
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Render every registered metric as a sorted, human-readable block.
pub fn report() -> String {
    use std::fmt::Write;

    let r = registry();
    let mut out = String::from("== satiot metrics ==\n");

    let counters = r.counters.lock().expect("metrics registry mutex poisoned");
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, c) in counters.iter() {
            writeln!(out, "{:<44} {}", name, c.load(Relaxed))
                .expect("String writes are infallible");
        }
    }
    drop(counters);

    let gauges = r.gauges.lock().expect("metrics registry mutex poisoned");
    if !gauges.is_empty() {
        out.push_str("-- gauges --\n");
        for (name, g) in gauges.iter() {
            writeln!(out, "{:<44} {}", name, g.load(Relaxed))
                .expect("String writes are infallible");
        }
    }
    drop(gauges);

    let histograms = r
        .histograms
        .lock()
        .expect("metrics registry mutex poisoned");
    let mut total_dropped = 0u64;
    let mut dropped_names: Vec<&'static str> = Vec::new();
    if !histograms.is_empty() {
        out.push_str("-- histograms --\n");
        for (name, h) in histograms.iter() {
            let count = h.count.load(Relaxed);
            let dropped = h.dropped.load(Relaxed);
            if dropped > 0 {
                total_dropped += dropped;
                dropped_names.push(name);
            }
            if count == 0 {
                if dropped > 0 {
                    writeln!(out, "{name:<44} (empty) dropped={dropped}")
                        .expect("String writes are infallible");
                } else {
                    writeln!(out, "{name:<44} (empty)").expect("String writes are infallible");
                }
                continue;
            }
            let mean = f64::from_bits(h.sum_bits.load(Relaxed)) / count as f64;
            let min = f64::from_bits(h.min_bits.load(Relaxed));
            let max = f64::from_bits(h.max_bits.load(Relaxed));
            if dropped > 0 {
                writeln!(
                    out,
                    "{name:<44} count={count} mean={mean:.4} min={min:.4} max={max:.4} \
                     dropped={dropped}"
                )
                .expect("String writes are infallible");
            } else {
                writeln!(
                    out,
                    "{name:<44} count={count} mean={mean:.4} min={min:.4} max={max:.4}"
                )
                .expect("String writes are infallible");
            }
            for (i, bucket) in h.buckets.iter().enumerate() {
                let n = bucket.load(Relaxed);
                if n == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(b) => {
                        writeln!(out, "    <= {b:<12} {n}").expect("String writes are infallible")
                    }
                    None => writeln!(out, "    >  {:<12} {n}", h.bounds[i - 1])
                        .expect("String writes are infallible"),
                }
            }
        }
    }
    drop(histograms);

    // Silent data drops must not stay silent: one summary block lists
    // every histogram that rejected non-finite samples.
    if total_dropped > 0 {
        out.push_str("-- data quality --\n");
        writeln!(
            out,
            "non_finite_samples_dropped                   {total_dropped} ({})",
            dropped_names.join(", ")
        )
        .expect("String writes are infallible");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and enable flag are process-global, so exercise all
    // behaviour from one test to avoid cross-test interference.
    #[test]
    fn end_to_end() {
        static HITS: Counter = Counter::new("test.hits");
        static DEPTH: Gauge = Gauge::new("test.depth");
        static DIST: Histogram = Histogram::new("test.dist", &[1.0, 2.0, 4.0]);
        static SPAN: Timer = Timer::new("test.span_s");

        // Disabled: nothing records.
        set_enabled(false);
        HITS.inc();
        DIST.record(1.5);
        assert_eq!(HITS.value(), 0);
        assert_eq!(DIST.count(), 0);

        set_enabled(true);
        HITS.inc();
        HITS.add(4);
        assert_eq!(HITS.value(), 5);

        DEPTH.set(3);
        DEPTH.set(9);
        DEPTH.set(2);
        assert_eq!(DEPTH.value(), 2);

        for v in [0.5, 1.5, 3.0, 100.0] {
            DIST.record(v);
        }
        assert_eq!(DIST.count(), 4);
        assert!((DIST.mean().unwrap() - 26.25).abs() < 1e-12);

        // Non-finite samples are rejected, counted, and surfaced —
        // never folded into the sum or a bucket.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            DIST.record(v);
        }
        assert_eq!(DIST.count(), 4, "non-finite samples must not count");
        assert_eq!(DIST.dropped(), 3);
        assert!((DIST.mean().unwrap() - 26.25).abs() < 1e-12);
        {
            let _g = SPAN.start();
        }
        assert_eq!(SPAN.count(), 1);

        let text = report();
        assert!(text.contains("test.hits"), "{text}");
        assert!(text.contains("test.depth.high_water"), "{text}");
        assert!(text.contains("count=4"), "{text}");
        assert!(text.contains("dropped=3"), "{text}");
        assert!(text.contains("-- data quality --"), "{text}");
        assert!(text.contains("non_finite_samples_dropped"), "{text}");

        // High-water mark survived the later, lower set.
        assert!(text.contains("9"), "{text}");

        reset();
        assert_eq!(HITS.value(), 0);
        assert_eq!(DIST.count(), 0);
        assert_eq!(DIST.dropped(), 0);
        set_enabled(false);
    }

    #[test]
    fn bucket_edges() {
        let h = HistogramInner::with_bounds(&[1.0, 2.0]);
        h.record(1.0); // on the bound: first bucket
        h.record(1.0001); // second bucket
        h.record(7.0); // overflow
        assert_eq!(h.buckets[0].load(Relaxed), 1);
        assert_eq!(h.buckets[1].load(Relaxed), 1);
        assert_eq!(h.buckets[2].load(Relaxed), 1);
    }
}
