//! Dependency-free observability and invariant checking for the satiot
//! workspace.
//!
//! Two concerns live here:
//!
//! - [`metrics`] — a process-global registry of counters, gauges,
//!   fixed-bucket histograms, and span timers. Recording is a handful of
//!   relaxed atomic operations and is gated on a single flag (the
//!   `SATIOT_METRICS` environment variable, or [`metrics::set_enabled`]),
//!   so instrumented hot paths cost two atomic loads when metrics are
//!   off.
//! - [`invariants`] — debug-assertion helpers for the physical
//!   quantities the simulator passes between crates (elevations,
//!   probabilities, durations). They compile to nothing in release
//!   builds.
//!
//! The crate is std-only by design: the build environment has no
//! crates.io access, and the instrumented crates sit at the bottom of
//! the dependency graph where pulling in an external metrics stack
//! would be disproportionate.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod invariants;
pub mod metrics;

pub use metrics::{Counter, Gauge, Histogram, Timer};
