//! Debug-assertion checks for the physical quantities the simulator
//! passes between crates.
//!
//! Each helper is an `#[inline]` call that expands to a `debug_assert!`
//! — active in `cargo test` and debug builds, compiled out entirely in
//! release builds, so hot paths can call them unconditionally.

/// Assert an elevation angle is a plausible radian value in
/// [−90°, +90°].
#[inline]
pub fn check_elevation_rad(context: &str, el: f64) {
    debug_assert!(
        el.is_finite()
            && (-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&el),
        "{context}: elevation {el} rad outside [-pi/2, pi/2]"
    );
}

/// Assert a probability lies in [0, 1].
#[inline]
pub fn check_probability(context: &str, p: f64) {
    debug_assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "{context}: probability {p} outside [0, 1]"
    );
}

/// Assert a duration / airtime / distance style quantity is finite and
/// non-negative.
#[inline]
pub fn check_non_negative(context: &str, v: f64) {
    debug_assert!(
        v.is_finite() && v >= 0.0,
        "{context}: value {v} negative or non-finite"
    );
}

/// Assert a value is finite (no NaN/inf escaped a computation).
#[inline]
pub fn check_finite(context: &str, v: f64) {
    debug_assert!(v.is_finite(), "{context}: value {v} is not finite");
}

/// Non-finite values flagged by [`flag_non_finite`] (metrics).
static NON_FINITE_FLAGGED: crate::metrics::Counter =
    crate::metrics::Counter::new("obs.invariants.non_finite_flagged");

/// Non-panicking sibling of [`check_finite`] for call sites that must
/// *tolerate* a stray NaN/inf (e.g. statistics sinks dropping the value)
/// but still want it surfaced: returns whether `v` is finite, and counts
/// every non-finite observation into the
/// `obs.invariants.non_finite_flagged` metric.
#[inline]
pub fn flag_non_finite(_context: &str, v: f64) -> bool {
    let finite = v.is_finite();
    if !finite {
        NON_FINITE_FLAGGED.inc();
    }
    finite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass() {
        check_elevation_rad("t", 0.3);
        check_elevation_rad("t", -std::f64::consts::FRAC_PI_2);
        check_probability("t", 0.0);
        check_probability("t", 1.0);
        check_non_negative("t", 0.0);
        check_finite("t", -5.0);
    }

    #[test]
    fn flag_non_finite_reports_without_panicking() {
        assert!(flag_non_finite("t", 1.0));
        assert!(flag_non_finite("t", -1e300));
        assert!(!flag_non_finite("t", f64::NAN));
        assert!(!flag_non_finite("t", f64::INFINITY));
        assert!(!flag_non_finite("t", f64::NEG_INFINITY));
    }

    #[test]
    #[should_panic(expected = "elevation")]
    #[cfg(debug_assertions)]
    fn out_of_range_elevation_panics() {
        check_elevation_rad("t", 2.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    #[cfg(debug_assertions)]
    fn out_of_range_probability_panics() {
        check_probability("t", 1.5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    #[cfg(debug_assertions)]
    fn nan_duration_panics() {
        check_non_negative("t", f64::NAN);
    }
}
