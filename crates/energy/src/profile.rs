//! Operating modes and measured per-mode power draws.
//!
//! Power numbers are taken from the paper:
//!
//! * Terrestrial LoRaWAN node (Figure 10): Tx 1 630 mW, Rx 265 mW,
//!   Standby 146 mW, Sleep 19.1 mW.
//! * Satellite (Tianqi-class) node (Figure 6a): DtS transmit draws
//!   2.2× the terrestrial Tx power (≈ 3 586 mW) because closing a
//!   500–3 500 km uplink needs the PA at full tilt; listen mode is close
//!   to the terrestrial Rx draw; sleep keeps only the MCU alive.
//!
//! The satellite node has **no Standby** mode — that asymmetry is the
//! paper's point: waiting for a fast-moving satellite forces the radio to
//! stay in Rx, which is where the 14.9× battery-life gap comes from.

use core::hash::Hash;

/// Operating modes of the satellite IoT node (Tianqi-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatNodeMode {
    /// MCU-only sleep.
    Sleep,
    /// Radio listening for beacons / ACKs (MCU+Rx).
    McuRx,
    /// DtS transmission (MCU+Tx).
    McuTx,
}

impl SatNodeMode {
    /// All modes.
    pub const ALL: [SatNodeMode; 3] = [SatNodeMode::Sleep, SatNodeMode::McuRx, SatNodeMode::McuTx];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SatNodeMode::Sleep => "sleep",
            SatNodeMode::McuRx => "mcu+rx",
            SatNodeMode::McuTx => "mcu+tx",
        }
    }
}

/// Operating modes of the terrestrial LoRaWAN node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerrestrialMode {
    /// Deep sleep.
    Sleep,
    /// MCU awake, radio idle.
    Standby,
    /// Receive windows (LoRaWAN RX1/RX2).
    Rx,
    /// Uplink transmission.
    Tx,
}

impl TerrestrialMode {
    /// All modes.
    pub const ALL: [TerrestrialMode; 4] = [
        TerrestrialMode::Sleep,
        TerrestrialMode::Standby,
        TerrestrialMode::Rx,
        TerrestrialMode::Tx,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TerrestrialMode::Sleep => "sleep",
            TerrestrialMode::Standby => "standby",
            TerrestrialMode::Rx => "rx",
            TerrestrialMode::Tx => "tx",
        }
    }
}

/// Maps a mode to its power draw in milliwatts.
pub trait PowerProfile<M: Copy + Eq + Hash> {
    /// Power draw of `mode`, mW.
    fn power_mw(&self, mode: M) -> f64;
}

/// The terrestrial node's measured profile (paper Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct TerrestrialProfile;

impl PowerProfile<TerrestrialMode> for TerrestrialProfile {
    fn power_mw(&self, mode: TerrestrialMode) -> f64 {
        match mode {
            TerrestrialMode::Sleep => 19.1,
            TerrestrialMode::Standby => 146.0,
            TerrestrialMode::Rx => 265.0,
            TerrestrialMode::Tx => 1_630.0,
        }
    }
}

/// The satellite node's profile (paper Figure 6a; Tx = 2.2 × terrestrial).
#[derive(Debug, Clone, Copy)]
pub struct SatNodeProfile;

impl PowerProfile<SatNodeMode> for SatNodeProfile {
    fn power_mw(&self, mode: SatNodeMode) -> f64 {
        match mode {
            SatNodeMode::Sleep => 19.1,
            SatNodeMode::McuRx => 290.0,
            SatNodeMode::McuTx => 3_586.0,
        }
    }
}

/// Datasheet-grade sleep current used for *lifetime projection*
/// (Figure 6d), mW.
///
/// The paper's Figure 10 "sleep" draw (19.1 mW) is a bench measurement of
/// the whole dev board — regulators and LEDs included — and is mutually
/// inconsistent with the same paper's 718-day lifetime projection
/// (19.1 mW alone would drain the 5 Ah pack in 40 days). Deployment
/// firmware sleeps the radio SoC at ~100 µA; Figure 6d only coheres under
/// such a draw, so the lifetime projection uses these deployment
/// profiles while the residency/power figures keep the bench numbers.
pub const DEPLOYMENT_SLEEP_MW: f64 = 0.55;

/// Deployment-grade satellite-node profile (lifetime projection).
#[derive(Debug, Clone, Copy)]
pub struct SatNodeDeploymentProfile;

impl PowerProfile<SatNodeMode> for SatNodeDeploymentProfile {
    fn power_mw(&self, mode: SatNodeMode) -> f64 {
        match mode {
            SatNodeMode::Sleep => DEPLOYMENT_SLEEP_MW,
            other => SatNodeProfile.power_mw(other),
        }
    }
}

/// Deployment-grade terrestrial-node profile (lifetime projection).
#[derive(Debug, Clone, Copy)]
pub struct TerrestrialDeploymentProfile;

impl PowerProfile<TerrestrialMode> for TerrestrialDeploymentProfile {
    fn power_mw(&self, mode: TerrestrialMode) -> f64 {
        match mode {
            TerrestrialMode::Sleep => DEPLOYMENT_SLEEP_MW,
            other => TerrestrialProfile.power_mw(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terrestrial_matches_figure_10() {
        let p = TerrestrialProfile;
        assert_eq!(p.power_mw(TerrestrialMode::Tx), 1_630.0);
        assert_eq!(p.power_mw(TerrestrialMode::Rx), 265.0);
        assert_eq!(p.power_mw(TerrestrialMode::Standby), 146.0);
        assert_eq!(p.power_mw(TerrestrialMode::Sleep), 19.1);
    }

    #[test]
    fn satellite_tx_is_2_2x_terrestrial() {
        let ratio = SatNodeProfile.power_mw(SatNodeMode::McuTx)
            / TerrestrialProfile.power_mw(TerrestrialMode::Tx);
        assert!((ratio - 2.2).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn mode_orderings_make_sense() {
        let t = TerrestrialProfile;
        assert!(t.power_mw(TerrestrialMode::Sleep) < t.power_mw(TerrestrialMode::Standby));
        assert!(t.power_mw(TerrestrialMode::Standby) < t.power_mw(TerrestrialMode::Rx));
        assert!(t.power_mw(TerrestrialMode::Rx) < t.power_mw(TerrestrialMode::Tx));
        let s = SatNodeProfile;
        assert!(s.power_mw(SatNodeMode::Sleep) < s.power_mw(SatNodeMode::McuRx));
        assert!(s.power_mw(SatNodeMode::McuRx) < s.power_mw(SatNodeMode::McuTx));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SatNodeMode::McuRx.label(), "mcu+rx");
        assert_eq!(TerrestrialMode::Standby.label(), "standby");
        assert_eq!(SatNodeMode::ALL.len(), 3);
        assert_eq!(TerrestrialMode::ALL.len(), 4);
    }
}
