//! # satiot-energy
//!
//! Power-state machines, energy accounting, and battery-lifetime
//! projection for IoT nodes.
//!
//! The paper measures node power with a bench meter (Figures 6 and 10);
//! this crate encodes those published per-mode power draws and integrates
//! them over the radio activity a campaign simulation produces:
//!
//! * [`profile`] — operating modes and per-mode power for the satellite
//!   (Tianqi-class) node and the terrestrial LoRaWAN node.
//! * [`accounting`] — residency/energy bookkeeping per mode.
//! * [`battery`] — capacity → lifetime projection.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod accounting;
pub mod battery;
pub mod profile;
pub mod solar;

pub use accounting::EnergyAccount;
pub use battery::Battery;
pub use profile::{PowerProfile, SatNodeMode, TerrestrialMode};
pub use solar::SolarPanel;
