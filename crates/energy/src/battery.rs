//! Battery-lifetime projection.

/// A battery pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Rated capacity, mAh.
    pub capacity_mah: f64,
    /// Nominal cell voltage, V.
    pub voltage_v: f64,
    /// Usable fraction of rated capacity (cut-off voltage, ageing).
    pub usable_fraction: f64,
}

impl Battery {
    /// The 5 000 mAh pack the paper's lifetime estimate (Figure 6d) uses,
    /// at a Li-ion nominal 3.7 V, fully usable.
    pub fn paper_5ah() -> Battery {
        Battery {
            capacity_mah: 5_000.0,
            voltage_v: 3.7,
            usable_fraction: 1.0,
        }
    }

    /// Usable energy, mWh.
    pub fn usable_energy_mwh(&self) -> f64 {
        self.capacity_mah * self.voltage_v * self.usable_fraction
    }

    /// Days of operation at a constant average draw of `avg_power_mw`.
    /// Returns `f64::INFINITY` for a non-positive draw.
    pub fn lifetime_days(&self, avg_power_mw: f64) -> f64 {
        if avg_power_mw <= 0.0 {
            return f64::INFINITY;
        }
        self.usable_energy_mwh() / avg_power_mw / 24.0
    }

    /// Fraction of the battery consumed after `days` at `avg_power_mw`.
    pub fn drained_fraction(&self, avg_power_mw: f64, days: f64) -> f64 {
        (avg_power_mw * days * 24.0 / self.usable_energy_mwh()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pack_energy() {
        let b = Battery::paper_5ah();
        assert!((b.usable_energy_mwh() - 18_500.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_scales_inversely_with_power() {
        let b = Battery::paper_5ah();
        let d1 = b.lifetime_days(10.0);
        let d2 = b.lifetime_days(20.0);
        assert!((d1 / d2 - 2.0).abs() < 1e-12);
        // 18.5 Wh at 16 mW ≈ 48 days (the paper's satellite-node figure).
        assert!((b.lifetime_days(16.06) - 48.0).abs() < 0.2);
    }

    #[test]
    fn zero_power_lives_forever() {
        assert_eq!(Battery::paper_5ah().lifetime_days(0.0), f64::INFINITY);
        assert_eq!(Battery::paper_5ah().lifetime_days(-5.0), f64::INFINITY);
    }

    #[test]
    fn drain_fraction_caps_at_one() {
        let b = Battery::paper_5ah();
        assert!((b.drained_fraction(18_500.0 / 24.0, 1.0) - 1.0).abs() < 1e-9);
        assert_eq!(b.drained_fraction(1e9, 10.0), 1.0);
        let half = b.drained_fraction(18_500.0 / 24.0 / 2.0, 1.0);
        assert!((half - 0.5).abs() < 1e-9);
    }

    #[test]
    fn usable_fraction_derates() {
        let full = Battery::paper_5ah();
        let derated = Battery {
            usable_fraction: 0.8,
            ..full
        };
        assert!((derated.lifetime_days(10.0) / full.lifetime_days(10.0) - 0.8).abs() < 1e-12);
    }
}
