//! Residency and energy bookkeeping per operating mode.

use crate::profile::PowerProfile;
use std::collections::HashMap;
use std::hash::Hash;

/// Accumulates time and energy per mode for one node.
///
/// ```
/// use satiot_energy::accounting::EnergyAccount;
/// use satiot_energy::profile::{SatNodeMode, SatNodeProfile};
///
/// let mut acc = EnergyAccount::new();
/// acc.record(&SatNodeProfile, SatNodeMode::Sleep, 3_000.0);
/// acc.record(&SatNodeProfile, SatNodeMode::McuTx, 10.0);
/// // Ten seconds of DtS transmit out-consumes fifty minutes of sleep.
/// assert!(acc.energy_mj(SatNodeMode::McuTx) < acc.energy_mj(SatNodeMode::Sleep));
/// assert!(acc.energy_fraction(SatNodeMode::McuTx) > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAccount<M: Copy + Eq + Hash> {
    /// Per-mode (seconds, millijoules).
    ledger: HashMap<M, (f64, f64)>,
}

impl<M: Copy + Eq + Hash> Default for EnergyAccount<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Copy + Eq + Hash> EnergyAccount<M> {
    /// An empty account.
    pub fn new() -> Self {
        EnergyAccount {
            ledger: HashMap::new(),
        }
    }

    /// Record `duration_s` seconds spent in `mode` under `profile`.
    pub fn record<P: PowerProfile<M>>(&mut self, profile: &P, mode: M, duration_s: f64) {
        debug_assert!(duration_s >= 0.0, "negative duration");
        let entry = self.ledger.entry(mode).or_insert((0.0, 0.0));
        entry.0 += duration_s;
        entry.1 += profile.power_mw(mode) * duration_s; // mW·s = mJ.
    }

    /// Seconds spent in `mode`.
    pub fn time_s(&self, mode: M) -> f64 {
        self.ledger.get(&mode).map(|e| e.0).unwrap_or(0.0)
    }

    /// Energy consumed in `mode`, millijoules.
    pub fn energy_mj(&self, mode: M) -> f64 {
        self.ledger.get(&mode).map(|e| e.1).unwrap_or(0.0)
    }

    /// Total recorded time, seconds.
    pub fn total_time_s(&self) -> f64 {
        self.ledger.values().map(|e| e.0).sum()
    }

    /// Total energy, millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.ledger.values().map(|e| e.1).sum()
    }

    /// Total energy, milliwatt-hours.
    pub fn total_energy_mwh(&self) -> f64 {
        self.total_energy_mj() / 3_600.0
    }

    /// Fraction of total time spent in `mode` (0 if nothing recorded).
    pub fn time_fraction(&self, mode: M) -> f64 {
        let total = self.total_time_s();
        if total <= 0.0 {
            0.0
        } else {
            self.time_s(mode) / total
        }
    }

    /// Fraction of total energy consumed in `mode`.
    pub fn energy_fraction(&self, mode: M) -> f64 {
        let total = self.total_energy_mj();
        if total <= 0.0 {
            0.0
        } else {
            self.energy_mj(mode) / total
        }
    }

    /// Average power over all recorded time, milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        let t = self.total_time_s();
        if t <= 0.0 {
            0.0
        } else {
            self.total_energy_mj() / t
        }
    }

    /// Re-cost the same residencies under a different power profile
    /// (e.g. the deployment-grade profile for lifetime projection).
    pub fn re_profile<P: PowerProfile<M>>(&self, profile: &P) -> EnergyAccount<M> {
        let mut out = EnergyAccount::new();
        for (&mode, &(time_s, _)) in &self.ledger {
            out.record(profile, mode, time_s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{SatNodeMode, SatNodeProfile, TerrestrialMode, TerrestrialProfile};

    #[test]
    fn records_accumulate() {
        let mut acc = EnergyAccount::new();
        let p = TerrestrialProfile;
        acc.record(&p, TerrestrialMode::Sleep, 100.0);
        acc.record(&p, TerrestrialMode::Sleep, 50.0);
        acc.record(&p, TerrestrialMode::Tx, 2.0);
        assert_eq!(acc.time_s(TerrestrialMode::Sleep), 150.0);
        assert!((acc.energy_mj(TerrestrialMode::Sleep) - 19.1 * 150.0).abs() < 1e-9);
        assert!((acc.energy_mj(TerrestrialMode::Tx) - 3_260.0).abs() < 1e-9);
        assert_eq!(acc.time_s(TerrestrialMode::Rx), 0.0);
        assert_eq!(acc.total_time_s(), 152.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut acc = EnergyAccount::new();
        let p = SatNodeProfile;
        acc.record(&p, SatNodeMode::Sleep, 3_000.0);
        acc.record(&p, SatNodeMode::McuRx, 500.0);
        acc.record(&p, SatNodeMode::McuTx, 10.0);
        let tf: f64 = SatNodeMode::ALL.iter().map(|m| acc.time_fraction(*m)).sum();
        let ef: f64 = SatNodeMode::ALL
            .iter()
            .map(|m| acc.energy_fraction(*m))
            .sum();
        assert!((tf - 1.0).abs() < 1e-12);
        assert!((ef - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tx_dominates_energy_despite_tiny_residency() {
        // The paper's Figure 11 pattern: ≥ 70 % of energy goes to Tx+Rx
        // even though ≥ 95 % of time is Sleep/Standby.
        let mut acc = EnergyAccount::new();
        let p = TerrestrialProfile;
        acc.record(&p, TerrestrialMode::Sleep, 86_000.0);
        acc.record(&p, TerrestrialMode::Standby, 1_000.0);
        acc.record(&p, TerrestrialMode::Rx, 2_000.0);
        acc.record(&p, TerrestrialMode::Tx, 500.0);
        let sleepish =
            acc.time_fraction(TerrestrialMode::Sleep) + acc.time_fraction(TerrestrialMode::Standby);
        let radio_energy =
            acc.energy_fraction(TerrestrialMode::Rx) + acc.energy_fraction(TerrestrialMode::Tx);
        assert!(sleepish > 0.95, "sleepish {sleepish}");
        assert!(radio_energy > 0.4, "radio energy {radio_energy}");
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let mut acc = EnergyAccount::new();
        let p = SatNodeProfile;
        acc.record(&p, SatNodeMode::Sleep, 50.0);
        acc.record(&p, SatNodeMode::McuRx, 50.0);
        let expected = (19.1 * 50.0 + 290.0 * 50.0) / 100.0;
        assert!((acc.average_power_mw() - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_account_is_all_zero() {
        let acc: EnergyAccount<SatNodeMode> = EnergyAccount::new();
        assert_eq!(acc.total_time_s(), 0.0);
        assert_eq!(acc.total_energy_mj(), 0.0);
        assert_eq!(acc.average_power_mw(), 0.0);
        assert_eq!(acc.time_fraction(SatNodeMode::Sleep), 0.0);
    }

    #[test]
    fn mwh_conversion() {
        let mut acc = EnergyAccount::new();
        let p = TerrestrialProfile;
        // 1630 mW for one hour = 1630 mWh.
        acc.record(&p, TerrestrialMode::Tx, 3_600.0);
        assert!((acc.total_energy_mwh() - 1_630.0).abs() < 1e-9);
    }
}
