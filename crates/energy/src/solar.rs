//! Solar energy harvesting — the obvious escape from the paper's
//! 48-day battery verdict.
//!
//! The paper concludes that DtS power draw makes large-scale satellite
//! IoT impractical on primary batteries. This module answers the
//! follow-up question an adopter asks next: *how much photovoltaic panel
//! makes the node energy-neutral?* The model is deliberately simple —
//! daily insolation, panel efficiency, harvesting losses — because panel
//! sizing is dominated by those first-order terms.

use crate::battery::Battery;

/// A small photovoltaic harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarPanel {
    /// Panel area, cm².
    pub area_cm2: f64,
    /// Cell efficiency (mono-Si ≈ 0.20).
    pub efficiency: f64,
    /// Harvesting-chain efficiency (MPPT, charge controller, ≈ 0.75).
    pub harvest_efficiency: f64,
    /// Site peak-sun-hours per day (kWh/m²/day; tropical highland ≈ 4.5).
    pub peak_sun_hours: f64,
}

impl SolarPanel {
    /// A credit-card-size panel (~60 cm²) at Yunnan-plateau insolation.
    pub fn credit_card() -> SolarPanel {
        SolarPanel {
            area_cm2: 60.0,
            efficiency: 0.20,
            harvest_efficiency: 0.75,
            peak_sun_hours: 4.5,
        }
    }

    /// Mean harvested energy per day, mWh.
    ///
    /// `E = 1000 W/m² · PSH · area · η_cell · η_harvest`
    pub fn daily_yield_mwh(&self) -> f64 {
        // 1000 W/m² = 0.1 mW/cm² per... : 1000 W/m² = 100 mW/cm².
        100.0 * self.area_cm2 * self.peak_sun_hours * self.efficiency * self.harvest_efficiency
    }

    /// Equivalent continuous power, mW.
    pub fn mean_power_mw(&self) -> f64 {
        self.daily_yield_mwh() / 24.0
    }

    /// The panel area (cm²) needed to sustain a node drawing
    /// `avg_power_mw` indefinitely.
    pub fn area_for_neutrality_cm2(avg_power_mw: f64, template: &SolarPanel) -> f64 {
        let yield_per_cm2 = template.daily_yield_mwh() / template.area_cm2; // mWh/day/cm².
        avg_power_mw * 24.0 / yield_per_cm2
    }
}

/// Battery lifetime (days) with harvesting: infinite when the panel
/// covers the average draw, otherwise the battery bridges the deficit.
pub fn lifetime_with_solar_days(battery: &Battery, avg_power_mw: f64, panel: &SolarPanel) -> f64 {
    let net = avg_power_mw - panel.mean_power_mw();
    battery.lifetime_days(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_card_panel_yield_is_plausible() {
        // 60 cm² · 100 mW/cm² · 4.5 h · 0.20 · 0.75 = 4 050 mWh/day.
        let p = SolarPanel::credit_card();
        assert!((p.daily_yield_mwh() - 4_050.0).abs() < 1.0);
        assert!((p.mean_power_mw() - 168.75).abs() < 0.1);
    }

    #[test]
    fn small_panel_rescues_the_satellite_node() {
        // The simulated Tianqi node draws ~25-60 mW (deployment profile);
        // even the credit-card panel's ~169 mW mean covers it.
        let p = SolarPanel::credit_card();
        let b = Battery::paper_5ah();
        assert_eq!(lifetime_with_solar_days(&b, 40.0, &p), f64::INFINITY);
        // An undersized panel still multiplies lifetime.
        let tiny = SolarPanel {
            area_cm2: 10.0,
            ..p
        };
        let boosted = lifetime_with_solar_days(&b, 40.0, &tiny);
        let bare = b.lifetime_days(40.0);
        assert!(boosted > 2.0 * bare, "boosted {boosted} vs bare {bare}");
        assert!(boosted.is_finite());
    }

    #[test]
    fn neutrality_area_scales_linearly() {
        let template = SolarPanel::credit_card();
        let a40 = SolarPanel::area_for_neutrality_cm2(40.0, &template);
        let a80 = SolarPanel::area_for_neutrality_cm2(80.0, &template);
        assert!((a80 / a40 - 2.0).abs() < 1e-9);
        // 40 mW needs ~14 cm² at these parameters — a postage stamp.
        assert!((10.0..20.0).contains(&a40), "area {a40}");
    }

    #[test]
    fn sunless_panel_changes_nothing() {
        let dead = SolarPanel {
            peak_sun_hours: 0.0,
            ..SolarPanel::credit_card()
        };
        let b = Battery::paper_5ah();
        assert_eq!(
            lifetime_with_solar_days(&b, 40.0, &dead),
            b.lifetime_days(40.0)
        );
    }
}
