//! Store-and-forward buffering.
//!
//! The paper (§3.1) observes that intermittent contact windows force a
//! store-and-forward paradigm at both ends of the DtS link: nodes buffer
//! sensor data while waiting for a pass; satellites buffer uplinks while
//! waiting for a ground station. This buffer records drop statistics so
//! the buffer-sizing ablation (`exp_ablation_buffer`) can quantify the
//! paper's sizing guidance.

use std::collections::VecDeque;

/// What to do when a full buffer receives another packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the incoming packet (tail drop).
    DropNewest,
    /// Evict the oldest buffered packet to make room.
    DropOldest,
}

/// A bounded FIFO with drop accounting.
///
/// ```
/// use satiot_core::buffer::{DropPolicy, StoreAndForward};
///
/// let mut buf = StoreAndForward::new(2, DropPolicy::DropOldest);
/// buf.push("a");
/// buf.push("b");
/// assert_eq!(buf.push("c"), Some("a")); // Oldest evicted.
/// assert_eq!(buf.pop(), Some("b"));
/// assert_eq!(buf.dropped, 1);
/// ```
#[derive(Debug, Clone)]
pub struct StoreAndForward<T> {
    queue: VecDeque<T>,
    capacity: usize,
    policy: DropPolicy,
    /// Packets ever offered.
    pub offered: u64,
    /// Packets dropped due to overflow.
    pub dropped: u64,
    /// High-water mark of queue depth.
    pub peak_depth: usize,
}

impl<T> StoreAndForward<T> {
    /// A buffer holding at most `capacity` packets. A zero-capacity
    /// buffer is honoured, not clamped: it stores nothing and drops
    /// every offered packet (under either policy), so degraded configs
    /// show up in the drop accounting instead of silently gaining a
    /// slot.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        StoreAndForward {
            queue: VecDeque::with_capacity(capacity.min(1_024)),
            capacity,
            policy,
            offered: 0,
            dropped: 0,
            peak_depth: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a packet; returns the evicted packet if one was dropped.
    pub fn push(&mut self, item: T) -> Option<T> {
        self.offered += 1;
        // Capacity 0 stores nothing under either policy: DropOldest has
        // no resident packet to evict, so the incoming packet itself is
        // the drop.
        if self.capacity == 0 {
            self.dropped += 1;
            return Some(item);
        }
        let evicted = if self.queue.len() >= self.capacity {
            self.dropped += 1;
            match self.policy {
                DropPolicy::DropNewest => return Some(item),
                DropPolicy::DropOldest => self.queue.pop_front(),
            }
        } else {
            None
        };
        self.queue.push_back(item);
        self.peak_depth = self.peak_depth.max(self.queue.len());
        evicted
    }

    /// Oldest packet, without removing it.
    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Mutable access to the oldest packet (attempt bookkeeping).
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.queue.front_mut()
    }

    /// Remove and return the oldest packet.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drain every buffered packet (e.g. at a ground-station contact).
    pub fn drain_all(&mut self) -> Vec<T> {
        self.queue.drain(..).collect()
    }

    /// Fraction of offered packets that were dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Iterate over buffered packets, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut b = StoreAndForward::new(10, DropPolicy::DropNewest);
        for i in 0..5 {
            assert!(b.push(i).is_none());
        }
        assert_eq!(b.front(), Some(&0));
        assert_eq!(b.pop(), Some(0));
        assert_eq!(b.pop(), Some(1));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn drop_newest_rejects_incoming() {
        let mut b = StoreAndForward::new(2, DropPolicy::DropNewest);
        b.push('a');
        b.push('b');
        let evicted = b.push('c');
        assert_eq!(evicted, Some('c'));
        assert_eq!(b.drain_all(), vec!['a', 'b']);
        assert_eq!(b.dropped, 1);
        assert_eq!(b.offered, 3);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let mut b = StoreAndForward::new(2, DropPolicy::DropOldest);
        b.push('a');
        b.push('b');
        let evicted = b.push('c');
        assert_eq!(evicted, Some('a'));
        assert_eq!(b.drain_all(), vec!['b', 'c']);
    }

    #[test]
    fn stats_track_peak_and_ratio() {
        let mut b = StoreAndForward::new(3, DropPolicy::DropNewest);
        for i in 0..6 {
            b.push(i);
        }
        assert_eq!(b.peak_depth, 3);
        assert!((b.drop_ratio() - 0.5).abs() < 1e-12);
        b.pop();
        b.push(9);
        assert_eq!(b.peak_depth, 3);
    }

    #[test]
    fn zero_capacity_drops_everything_drop_newest() {
        let mut b = StoreAndForward::new(0, DropPolicy::DropNewest);
        assert_eq!(b.capacity(), 0);
        assert_eq!(b.push(1), Some(1));
        assert_eq!(b.push(2), Some(2));
        assert!(b.is_empty());
        assert_eq!(b.pop(), None);
        assert_eq!(b.offered, 2);
        assert_eq!(b.dropped, 2);
        assert_eq!(b.peak_depth, 0);
        assert_eq!(b.drop_ratio(), 1.0);
    }

    #[test]
    fn zero_capacity_drops_everything_drop_oldest() {
        // With nothing resident to evict, DropOldest must still bounce
        // the incoming packet rather than exceed capacity.
        let mut b = StoreAndForward::new(0, DropPolicy::DropOldest);
        assert_eq!(b.push('x'), Some('x'));
        assert_eq!(b.push('y'), Some('y'));
        assert!(b.is_empty());
        assert!(b.drain_all().is_empty());
        assert_eq!(b.offered, 2);
        assert_eq!(b.dropped, 2);
        assert_eq!(b.peak_depth, 0);
    }

    #[test]
    fn interleaved_push_pop_accounting() {
        // peak_depth tracks the high-water mark, not the final depth,
        // and offered/dropped stay consistent under interleaving.
        let mut b = StoreAndForward::new(2, DropPolicy::DropOldest);
        b.push(1);
        b.push(2);
        assert_eq!(b.peak_depth, 2);
        assert_eq!(b.pop(), Some(1));
        b.push(3);
        assert_eq!(b.peak_depth, 2);
        assert_eq!(b.push(4), Some(2)); // Evicts the oldest resident.
        assert_eq!(b.offered, 4);
        assert_eq!(b.dropped, 1);
        assert_eq!(b.pop(), Some(3));
        assert_eq!(b.pop(), Some(4));
        assert_eq!(b.pop(), None);
        assert_eq!(b.peak_depth, 2);
        assert!((b.drop_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_drop_ratio_is_zero() {
        let b: StoreAndForward<u8> = StoreAndForward::new(4, DropPolicy::DropNewest);
        assert_eq!(b.drop_ratio(), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut b = StoreAndForward::new(5, DropPolicy::DropNewest);
        for i in [3, 1, 4] {
            b.push(i);
        }
        let seen: Vec<i32> = b.iter().copied().collect();
        assert_eq!(seen, vec![3, 1, 4]);
    }
}
